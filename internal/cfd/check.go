package cfd

import "repro/internal/relation"

// Violation identifies a CFD violation. For a constant CFD, T2 is -1 and T1
// is the index of the single violating tuple. For a variable CFD, tuples T1
// and T2 agree on the (pattern-matched) LHS but differ on the RHS.
type Violation struct {
	CFD    *CFD
	T1, T2 int
}

// Satisfies reports whether D |= c.
func Satisfies(d *relation.Relation, c *CFD) bool {
	if c.IsConstant() {
		for _, t := range d.Tuples {
			if c.MatchLHS(t) && t.Values[c.RHS] != c.RHSPattern {
				return false
			}
		}
		return true
	}
	groups := make(map[string]string)
	for _, t := range d.Tuples {
		if !c.MatchLHS(t) {
			continue
		}
		v := t.Values[c.RHS]
		key := t.Key(c.LHS)
		if prev, ok := groups[key]; ok {
			if prev != v {
				return false
			}
		} else {
			groups[key] = v
		}
	}
	return true
}

// SatisfiesAll reports whether D |= Σ.
func SatisfiesAll(d *relation.Relation, sigma []*CFD) bool {
	for _, c := range sigma {
		if !Satisfies(d, c) {
			return false
		}
	}
	return true
}

// Violations returns all violations of c in D. For variable CFDs, each
// LHS-equal group with k distinct RHS values yields pairwise violations
// between the first tuple of each differing value and the group's first
// tuple, which suffices for violation detection and repair scheduling.
func Violations(d *relation.Relation, c *CFD) []Violation {
	var out []Violation
	if c.IsConstant() {
		for i, t := range d.Tuples {
			if c.MatchLHS(t) && t.Values[c.RHS] != c.RHSPattern {
				out = append(out, Violation{CFD: c, T1: i, T2: -1})
			}
		}
		return out
	}
	first := make(map[string]int) // LHS key -> first tuple index
	for i, t := range d.Tuples {
		if !c.MatchLHS(t) {
			continue
		}
		key := t.Key(c.LHS)
		j, ok := first[key]
		if !ok {
			first[key] = i
			continue
		}
		if d.Tuples[j].Values[c.RHS] != t.Values[c.RHS] {
			out = append(out, Violation{CFD: c, T1: j, T2: i})
		}
	}
	return out
}
