package cfd

import (
	"fmt"

	"repro/internal/relation"
)

// Violation identifies a CFD violation. For a constant CFD, T2 is -1 and T1
// is the index of the single violating tuple. For a variable CFD, tuples T1
// and T2 agree on the (pattern-matched) LHS but differ on the RHS.
//
// Attr, Expected and Got describe the violation for reports and repair
// scheduling: Attr is the RHS attribute position; for a constant CFD,
// Expected is the required pattern constant and Got the tuple's value; for a
// variable CFD, Expected is T1's RHS value and Got is T2's.
type Violation struct {
	CFD      *CFD
	T1, T2   int
	Attr     int
	Expected string
	Got      string
}

// String renders the violation for diagnostics.
func (v Violation) String() string {
	attr := v.CFD.Schema.Attrs[v.Attr]
	if v.T2 < 0 {
		return fmt.Sprintf("%s: t%d[%s] = %q, pattern requires %q",
			v.CFD.Name, v.T1, attr, v.Got, v.Expected)
	}
	return fmt.Sprintf("%s: t%d[%s] = %q but t%d[%s] = %q on the same LHS",
		v.CFD.Name, v.T1, attr, v.Expected, v.T2, attr, v.Got)
}

// Satisfies reports whether D |= c.
func Satisfies(d *relation.Relation, c *CFD) bool {
	if c.IsConstant() {
		for _, t := range d.Tuples {
			if c.MatchLHS(t) && t.Values[c.RHS] != c.RHSPattern {
				return false
			}
		}
		return true
	}
	groups := make(map[string]string)
	for _, t := range d.Tuples {
		if !c.MatchLHS(t) {
			continue
		}
		v := t.Values[c.RHS]
		key := t.Key(c.LHS)
		if prev, ok := groups[key]; ok {
			if prev != v {
				return false
			}
		} else {
			groups[key] = v
		}
	}
	return true
}

// SatisfiesAll reports whether D |= Σ.
func SatisfiesAll(d *relation.Relation, sigma []*CFD) bool {
	for _, c := range sigma {
		if !Satisfies(d, c) {
			return false
		}
	}
	return true
}

// Violations returns all violations of c in D. For variable CFDs, each
// LHS-equal group with k distinct RHS values yields pairwise violations
// between the first tuple of each differing value and the group's first
// tuple, which suffices for violation detection and repair scheduling.
func Violations(d *relation.Relation, c *CFD) []Violation {
	var out []Violation
	if c.IsConstant() {
		for i, t := range d.Tuples {
			if c.MatchLHS(t) && t.Values[c.RHS] != c.RHSPattern {
				out = append(out, Violation{
					CFD: c, T1: i, T2: -1, Attr: c.RHS,
					Expected: c.RHSPattern, Got: t.Values[c.RHS],
				})
			}
		}
		return out
	}
	first := make(map[string]int) // LHS key -> first tuple index
	for i, t := range d.Tuples {
		if !c.MatchLHS(t) {
			continue
		}
		key := t.Key(c.LHS)
		j, ok := first[key]
		if !ok {
			first[key] = i
			continue
		}
		if d.Tuples[j].Values[c.RHS] != t.Values[c.RHS] {
			out = append(out, Violation{
				CFD: c, T1: j, T2: i, Attr: c.RHS,
				Expected: d.Tuples[j].Values[c.RHS], Got: t.Values[c.RHS],
			})
		}
	}
	return out
}

// Group is one LHS-equal group of a variable CFD: the tuples that pattern-
// match the LHS and agree on its key. Members are tuple indexes in relation
// order. It is the grouping unit shared by cRepair, eRepair, hRepair and
// the Checker.
type Group struct {
	CFD     *CFD
	Key     string
	Members []int
}

// Groups returns the LHS-equal groups of a variable CFD, ordered by first
// member. Constant CFDs have no groups.
func Groups(d *relation.Relation, c *CFD) []Group {
	if c.IsConstant() {
		return nil
	}
	byKey := make(map[string]*Group)
	var order []string
	for i, t := range d.Tuples {
		if !c.MatchLHS(t) {
			continue
		}
		key := t.Key(c.LHS)
		g, ok := byKey[key]
		if !ok {
			g = &Group{CFD: c, Key: key}
			byKey[key] = g
			order = append(order, key)
		}
		g.Members = append(g.Members, i)
	}
	out := make([]Group, 0, len(order))
	for _, key := range order {
		out = append(out, *byKey[key])
	}
	return out
}

// Conflicted reports whether the group's members hold more than one
// distinct RHS value (null counts as a value, consistent with Satisfies).
func (g *Group) Conflicted(d *relation.Relation) bool {
	first := d.Tuples[g.Members[0]].Values[g.CFD.RHS]
	for _, i := range g.Members[1:] {
		if d.Tuples[i].Values[g.CFD.RHS] != first {
			return true
		}
	}
	return false
}

// ViolatingGroups returns the LHS-equal groups of a variable CFD with more
// than one distinct RHS value, ordered by first member. Constant CFDs have
// no groups; use Violations for them.
func ViolatingGroups(d *relation.Relation, c *CFD) []Group {
	var out []Group
	for _, g := range Groups(d, c) {
		if g.Conflicted(d) {
			out = append(out, g)
		}
	}
	return out
}
