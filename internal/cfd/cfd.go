// Package cfd implements conditional functional dependencies (CFDs) as
// defined in Section 2.1 of the paper: an embedded functional dependency
// X -> Y together with a pattern tuple of constants and unnamed variables.
//
// CFDs here are normalized (single RHS attribute); Normalize converts the
// general multi-attribute form. Following Section 7, a pattern tuple never
// matches a null value: CFDs only apply to tuples that precisely match a
// pattern tuple, and pattern tuples do not contain null.
package cfd

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Wildcard is the unnamed variable '_' of pattern tuples: it matches any
// non-null constant of the attribute domain.
const Wildcard = "_"

// CFD is a normalized conditional functional dependency
// R(X -> A, tp) with |RHS| = 1.
type CFD struct {
	// Name labels the CFD for diagnostics (e.g. "phi1").
	Name string
	// Schema is the relation schema the CFD is defined on.
	Schema *relation.Schema
	// LHS lists the attribute positions of X.
	LHS []int
	// RHS is the attribute position of A.
	RHS int
	// LHSPattern holds tp[X]: one constant or Wildcard per LHS attribute.
	LHSPattern []string
	// RHSPattern holds tp[A]: a constant or Wildcard.
	RHSPattern string
}

// New builds a normalized CFD over schema from attribute names and pattern
// values. It panics on unknown attributes or arity mismatches, since rules
// are static program data; use Parse for user input.
func New(name string, schema *relation.Schema, lhs []string, lhsPattern []string, rhs, rhsPattern string) *CFD {
	if len(lhs) != len(lhsPattern) {
		panic(fmt.Sprintf("cfd %s: %d LHS attrs but %d patterns", name, len(lhs), len(lhsPattern)))
	}
	return &CFD{
		Name:       name,
		Schema:     schema,
		LHS:        schema.MustIndexAll(lhs...),
		RHS:        schema.MustIndex(rhs),
		LHSPattern: append([]string(nil), lhsPattern...),
		RHSPattern: rhsPattern,
	}
}

// FD builds a traditional functional dependency (a CFD whose pattern tuple
// consists of wildcards only).
func FD(name string, schema *relation.Schema, lhs []string, rhs string) *CFD {
	pat := make([]string, len(lhs))
	for i := range pat {
		pat[i] = Wildcard
	}
	return New(name, schema, lhs, pat, rhs, Wildcard)
}

// IsConstant reports whether the CFD is a constant CFD (tp[A] is a
// constant). Constant CFDs are enforced per tuple; variable CFDs relate
// pairs of tuples.
func (c *CFD) IsConstant() bool { return c.RHSPattern != Wildcard }

// IsVariable reports whether tp[A] is the unnamed variable.
func (c *CFD) IsVariable() bool { return !c.IsConstant() }

// matchPattern implements v ≍ p for a single cell: a constant matches
// itself; the wildcard matches any non-null value; null matches nothing.
func matchPattern(v, p string) bool {
	if relation.IsNull(v) {
		return false
	}
	return p == Wildcard || v == p
}

// MatchLHS reports whether t[X] ≍ tp[X].
func (c *CFD) MatchLHS(t *relation.Tuple) bool {
	for i, a := range c.LHS {
		if !matchPattern(t.Values[a], c.LHSPattern[i]) {
			return false
		}
	}
	return true
}

// MatchRHS reports whether t[A] ≍ tp[A].
func (c *CFD) MatchRHS(t *relation.Tuple) bool {
	return matchPattern(t.Values[c.RHS], c.RHSPattern)
}

// String renders the CFD in the paper's R(X -> A, tp) notation.
func (c *CFD) String() string {
	var lhs, pat []string
	for i, a := range c.LHS {
		lhs = append(lhs, c.Schema.Attrs[a])
		pat = append(pat, c.LHSPattern[i])
	}
	return fmt.Sprintf("%s([%s] -> [%s], (%s || %s))", c.Schema.Name,
		strings.Join(lhs, ","), c.Schema.Attrs[c.RHS],
		strings.Join(pat, ","), c.RHSPattern)
}

// Raw is a not-necessarily-normalized CFD with multiple RHS attributes, the
// general form R(X -> Y, tp) of the paper.
type Raw struct {
	Name       string
	Schema     *relation.Schema
	LHS        []string
	LHSPattern []string
	RHS        []string
	RHSPattern []string
}

// Normalize converts r into the equivalent set of normalized CFDs, one per
// RHS attribute (Section 2.2, "Normalized CFDs and MDs").
func (r Raw) Normalize() []*CFD {
	if len(r.RHS) != len(r.RHSPattern) {
		panic(fmt.Sprintf("cfd %s: %d RHS attrs but %d patterns", r.Name, len(r.RHS), len(r.RHSPattern)))
	}
	out := make([]*CFD, len(r.RHS))
	for i := range r.RHS {
		name := r.Name
		if len(r.RHS) > 1 {
			name = fmt.Sprintf("%s.%d", r.Name, i+1)
		}
		out[i] = New(name, r.Schema, r.LHS, r.LHSPattern, r.RHS[i], r.RHSPattern[i])
	}
	return out
}
