package cfd

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

// tranSchema mirrors the tran schema of Fig. 1(b) in the paper.
func tranSchema() *relation.Schema {
	return relation.NewSchema("tran",
		"FN", "LN", "St", "city", "AC", "post", "phn", "gd", "item", "when", "where")
}

// fig1Data builds the instance D of Fig. 1(b).
func fig1Data() *relation.Relation {
	d := relation.New(tranSchema())
	d.Append("M.", "Smith", "10 Oak St", "Ldn", "131", "EH8 9LE", "9999999", "Male", "watch, 350 GBP", "11am 28/08/10", "UK")
	d.Append("Max", "Smith", "Po Box 25", "Edi", "131", "EH8 9AB", "3256778", "Male", "DVD, 800 INR", "8pm 28/09/10", "India")
	d.Append("Bob", "Brady", "5 Wren St", "Edi", "020", "WC1H 9SE", "3887834", "Male", "iPhone, 599 GBP", "6pm 06/11/09", "UK")
	d.Append("Robert", "Brady", relation.Null, "Ldn", "020", "WC1E 7HX", "3887644", "Male", "ring, 2,100 USD", "1pm 06/11/09", "USA")
	return d
}

// phi1: tran([AC] -> [city], (131 || Edi))
func phi1(s *relation.Schema) *CFD {
	return New("phi1", s, []string{"AC"}, []string{"131"}, "city", "Edi")
}

// phi3: tran([city,phn] -> [St,AC,post]) normalized; here the St component.
func phi3St(s *relation.Schema) *CFD {
	return FD("phi3.St", s, []string{"city", "phn"}, "St")
}

// phi4: tran([FN] -> [FN], (Bob || Robert))
func phi4(s *relation.Schema) *CFD {
	return New("phi4", s, []string{"FN"}, []string{"Bob"}, "FN", "Robert")
}

func TestExample22PaperSemantics(t *testing.T) {
	// Example 2.2: D |/= phi1 (t1 violates), D |/= phi4 (t3 violates),
	// D |= phi3.
	d := fig1Data()
	s := d.Schema
	if Satisfies(d, phi1(s)) {
		t.Error("D must violate phi1 (t1 has AC=131, city=Ldn)")
	}
	if Satisfies(d, phi4(s)) {
		t.Error("D must violate phi4 (t3 has FN=Bob)")
	}
	if !Satisfies(d, phi3St(s)) {
		t.Error("D must satisfy phi3 (no two tuples agree on city,phn)")
	}
}

func TestConstantViolationDetails(t *testing.T) {
	d := fig1Data()
	vs := Violations(d, phi1(d.Schema))
	if len(vs) != 1 || vs[0].T1 != 0 || vs[0].T2 != -1 {
		t.Errorf("Violations(phi1) = %+v, want single violation on t1", vs)
	}
	vs = Violations(d, phi4(d.Schema))
	if len(vs) != 1 || vs[0].T1 != 2 {
		t.Errorf("Violations(phi4) = %+v, want single violation on t3", vs)
	}
}

func TestVariableCFDViolation(t *testing.T) {
	s := relation.NewSchema("r", "A", "B")
	d := relation.New(s)
	d.Append("x", "1")
	d.Append("x", "2")
	d.Append("y", "3")
	c := FD("fd", s, []string{"A"}, "B")
	if Satisfies(d, c) {
		t.Error("FD A->B must be violated")
	}
	vs := Violations(d, c)
	if len(vs) != 1 || vs[0].T1 != 0 || vs[0].T2 != 1 {
		t.Errorf("Violations = %+v", vs)
	}
}

func TestVariableCFDWithConstantLHS(t *testing.T) {
	s := relation.NewSchema("r", "A", "B", "C")
	d := relation.New(s)
	d.Append("k", "x", "1")
	d.Append("k", "x", "2") // violates only if A matches pattern k
	d.Append("z", "x", "9")
	d.Append("z", "x", "8") // A=z does not match pattern, no violation
	c := New("c", s, []string{"A", "B"}, []string{"k", Wildcard}, "C", Wildcard)
	vs := Violations(d, c)
	if len(vs) != 1 || vs[0].T1 != 0 || vs[0].T2 != 1 {
		t.Errorf("Violations = %+v", vs)
	}
}

func TestNullNeverMatchesPattern(t *testing.T) {
	s := relation.NewSchema("r", "A", "B")
	d := relation.New(s)
	d.Append(relation.Null, "1")
	d.Append(relation.Null, "2")
	c := FD("fd", s, []string{"A"}, "B")
	// Section 7: CFDs only apply to tuples precisely matching a pattern,
	// which never contains null. So null LHS values trigger nothing.
	if !Satisfies(d, c) {
		t.Error("null LHS must not participate in CFD checking")
	}
	// A constant CFD must not fire on null either.
	cc := New("cc", s, []string{"A"}, []string{"k"}, "B", "v")
	if !Satisfies(d, cc) {
		t.Error("null must not match constant pattern")
	}
}

func TestSatisfiesAll(t *testing.T) {
	d := fig1Data()
	s := d.Schema
	if SatisfiesAll(d, []*CFD{phi3St(s), phi1(s)}) {
		t.Error("SatisfiesAll must be false when any CFD is violated")
	}
	if !SatisfiesAll(d, []*CFD{phi3St(s)}) {
		t.Error("SatisfiesAll must be true for satisfied set")
	}
	if !SatisfiesAll(d, nil) {
		t.Error("empty set is vacuously satisfied")
	}
}

func TestNormalize(t *testing.T) {
	s := tranSchema()
	raw := Raw{
		Name:       "phi3",
		Schema:     s,
		LHS:        []string{"city", "phn"},
		LHSPattern: []string{Wildcard, Wildcard},
		RHS:        []string{"St", "AC", "post"},
		RHSPattern: []string{Wildcard, Wildcard, Wildcard},
	}
	got := raw.Normalize()
	if len(got) != 3 {
		t.Fatalf("Normalize produced %d CFDs", len(got))
	}
	wantRHS := []string{"St", "AC", "post"}
	for i, c := range got {
		if s.Attrs[c.RHS] != wantRHS[i] {
			t.Errorf("CFD %d RHS = %s, want %s", i, s.Attrs[c.RHS], wantRHS[i])
		}
		if len(c.LHS) != 2 {
			t.Errorf("CFD %d LHS arity = %d", i, len(c.LHS))
		}
		if !strings.Contains(c.Name, "phi3.") {
			t.Errorf("CFD %d name = %q", i, c.Name)
		}
	}
	single := Raw{Name: "one", Schema: s, LHS: []string{"AC"}, LHSPattern: []string{"131"},
		RHS: []string{"city"}, RHSPattern: []string{"Edi"}}
	if got := single.Normalize(); len(got) != 1 || got[0].Name != "one" {
		t.Errorf("single-RHS Normalize = %+v", got)
	}
}

func TestIsConstantIsVariable(t *testing.T) {
	s := tranSchema()
	if c := phi1(s); !c.IsConstant() || c.IsVariable() {
		t.Error("phi1 must be constant")
	}
	if c := phi3St(s); c.IsConstant() || !c.IsVariable() {
		t.Error("phi3 must be variable")
	}
}

func TestStringRendering(t *testing.T) {
	s := tranSchema()
	got := phi1(s).String()
	want := "tran([AC] -> [city], (131 || Edi))"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestMatchRHS(t *testing.T) {
	d := fig1Data()
	c := phi1(d.Schema)
	if c.MatchRHS(d.Tuples[0]) {
		t.Error("t1 city=Ldn must not match pattern Edi")
	}
	if !c.MatchRHS(d.Tuples[1]) {
		t.Error("t2 city=Edi must match pattern Edi")
	}
}

func TestNewPanicsOnArityMismatch(t *testing.T) {
	s := tranSchema()
	defer func() {
		if recover() == nil {
			t.Fatal("New with mismatched pattern arity did not panic")
		}
	}()
	New("bad", s, []string{"AC", "city"}, []string{"131"}, "city", "Edi")
}
