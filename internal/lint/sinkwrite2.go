package lint

import (
	"go/ast"
)

// SinkWrite (v2) flags writes to engine/matcher shared state — the Engine
// and its Result/Report, the Checker, the scheduler with its group indexes,
// dirty sets and symtabs, the pool — from worker-scoped code. Such a write
// escapes the propose/commit sink: it races the other workers and injects
// scheduling order into state the identity guarantee says is deterministic.
// Writes to item-owned cells go through a local tuple binding
// (t := ap.e.data.Tuples[i]) — writing through the engine chain directly is
// flagged on purpose, since the binding is what makes item ownership
// visible.
//
// v2 is alias-aware where v1 was lexical. On top of the selector-chain
// check it tracks, per enclosing function, the locals that alias shared
// state — through plain assignments, struct-field loads, index loads, and
// closure captures — and flags writes through those aliases too, closing
// the documented laundering gap:
//
//	s := ap.e.apply[ri] // *ApplyStats: a non-shared intermediate type
//	s.CTuples++         // v1 missed this; v2 reports it
//
// Worker-scope discovery is also dataflow-extended: beyond *applier
// methods, `go` statement bodies and literal arguments to the pool entry
// points (runParallel/fanOut/applyTuples/applyGroups), a literal bound to a
// local and then handed to a pool call, and a literal invoked from a
// worker-scoped body, are worker-scoped as well.
//
// The taint stops at the sanctioned boundaries (see dataflow.go): call
// results — ap.stat(ri) and friends hand out shared pointers on purpose —
// owned tuple bindings, and non-reference value copies.
var SinkWrite = &Analyzer{
	Name:      "sinkwrite",
	Doc:       "write to shared engine state from worker-scoped code (alias-aware)",
	AppliesTo: func(path string) bool { return path == "repro/internal/clean" },
	Run: func(p *Pass) {
		for _, f := range p.Files {
			// Package-level scope: methods and functions with no local
			// literal bindings still contribute go-stmt and literal-arg
			// worker bodies through their own declaration walk below.
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				sc := analyzeFunc(p, fd.Body)
				var bodies []*ast.BlockStmt
				if fd.Recv != nil && receiverName(fd) == "applier" {
					bodies = append(bodies, fd.Body)
				}
				bodies = append(bodies, workerBodies(p, fd.Body, sc.lits)...)
				for _, body := range pruneNested(bodies) {
					checkSinkWritesV2(p, sc, body)
				}
			}
		}
	},
}

// checkSinkWritesV2 reports every assignment or inc/dec inside body whose
// target chain passes through a shared-typed value, directly or through a
// tainted local alias.
func checkSinkWritesV2(p *Pass, sc *funcScope, body *ast.BlockStmt) {
	report := func(target ast.Expr) {
		name, viaAlias := sharedWriteBase(p, sc.taint, target)
		if name == "" {
			return
		}
		if viaAlias {
			p.Reportf(target.Pos(),
				"write through a local alias of shared %s from worker-scoped code escapes the propose/commit sink; record the effect through the applier (assert/fix/hfix/conflictf/spend, ap.stat) or annotate //det:ok sinkwrite <reason>",
				name)
			return
		}
		p.Reportf(target.Pos(),
			"write through shared %s from worker-scoped code escapes the propose/commit sink; record the effect through the applier (assert/fix/hfix/conflictf/spend, ap.stat) or annotate //det:ok sinkwrite <reason>",
			name)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(x.X)
		}
		return true
	})
}
