package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow mechanizes the round-granular cancellation contract: every loop
// in the engine package that can run unbounded work must reach a
// cancellation check on some path per iteration boundary. Two loop shapes
// are candidates:
//
//   - unbounded loops — `for {` and `for cond {` (no init, no post): the
//     fixpoint loops of the repair phases and the pool claim loops;
//   - rule worklist loops — `for ... := range rules` over a []Rule — when
//     the body drives pool work (calls one of the pool entry points,
//     directly or transitively): one rule application can visit every
//     tuple, so a cancellation must be observable between rules.
//
// A loop passes when its condition or body reaches a check: a call to
// interrupted()/exhausted(), ctx.Err() on a context.Context, Load() on a
// sync/atomic abort flag — or a call to a same-package function that
// transitively contains one (fanOut and runParallel check per claimed item,
// so a loop driving them observes cancellation through them). Rule-range
// loops that only do bounded setup or merge bookkeeping (no pool work) are
// out of scope. Test files are exempt: tests may busy-wait on purpose.
var CtxFlow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "pipeline loop that never reaches a cancellation check",
	AppliesTo: func(path string) bool { return path == "repro/internal/clean" },
	Run:       runCtxFlow,
}

// ctxCheckNames are the engine's cancellation predicates: a call to either
// is a direct check wherever it appears (the fixpoint closure also treats
// any function whose body contains one as checking).
var ctxCheckNames = map[string]bool{
	"interrupted": true,
	"exhausted":   true,
}

// ctxFacts holds the package-level call-graph closure: which functions
// contain a cancellation check and which drive pool work.
type ctxFacts struct {
	p        *Pass
	decls    map[*types.Func]*ast.FuncDecl
	checking map[*types.Func]bool
	working  map[*types.Func]bool
}

func runCtxFlow(p *Pass) {
	facts := buildCtxFacts(p)
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch loop := n.(type) {
			case *ast.ForStmt:
				if loop.Init != nil || loop.Post != nil {
					return true
				}
				if facts.reachesCheck(loop.Cond) || facts.reachesCheck(loop.Body) {
					return true
				}
				p.Reportf(loop.Pos(),
					"unbounded loop reaches no cancellation check (interrupted/exhausted/ctx.Err/abort flag) on any path per iteration; check e.interrupted() at the iteration boundary or annotate //det:ok ctxflow <reason>")
			case *ast.RangeStmt:
				if !rulesRange(p, loop) || !facts.drivesWork(loop.Body) {
					return true
				}
				if facts.reachesCheck(loop.Body) {
					return true
				}
				p.Reportf(loop.Pos(),
					"rule worklist loop drives pool work but reaches no cancellation check (interrupted/exhausted/ctx.Err/abort flag) per iteration; check e.interrupted() between rules or annotate //det:ok ctxflow <reason>")
			}
			return true
		})
	}
}

// buildCtxFacts computes, to a fixpoint over the same-package call graph,
// which functions contain a cancellation check and which drive pool work.
func buildCtxFacts(p *Pass) *ctxFacts {
	facts := &ctxFacts{
		p:        p,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		checking: make(map[*types.Func]bool),
		working:  make(map[*types.Func]bool),
	}
	calls := make(map[*types.Func][]*types.Func)
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			facts.decls[fn] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if directCheck(p, call) {
					facts.checking[fn] = true
				}
				if workerScopeCalls[calleeName(call)] {
					facts.working[fn] = true
				}
				if callee := calleeFunc(p, call); callee != nil {
					calls[fn] = append(calls[fn], callee)
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			for _, callee := range callees {
				if facts.checking[callee] && !facts.checking[fn] {
					facts.checking[fn] = true
					changed = true
				}
				if facts.working[callee] && !facts.working[fn] {
					facts.working[fn] = true
					changed = true
				}
			}
		}
	}
	return facts
}

// reachesCheck reports whether the node contains a direct cancellation
// check or a call to a same-package function that transitively does.
func (facts *ctxFacts) reachesCheck(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if directCheck(facts.p, call) {
			found = true
			return false
		}
		if callee := calleeFunc(facts.p, call); callee != nil && facts.checking[callee] {
			found = true
			return false
		}
		return true
	})
	return found
}

// drivesWork reports whether the loop body calls a pool entry point,
// directly or through a same-package function.
func (facts *ctxFacts) drivesWork(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if workerScopeCalls[calleeName(call)] {
			found = true
			return false
		}
		if callee := calleeFunc(facts.p, call); callee != nil && facts.working[callee] {
			found = true
			return false
		}
		return true
	})
	return found
}

// directCheck reports whether the call is itself a cancellation check.
func directCheck(p *Pass, call *ast.CallExpr) bool {
	if ctxCheckNames[calleeName(call)] {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Err":
		return namedFromPkg(p.TypeOf(sel.X), "context", "Context")
	case "Load":
		t := p.TypeOf(sel.X)
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
		}
	}
	return false
}

// rulesRange reports whether the range statement iterates a slice or array
// of Rule values (matched by element type name, so fixtures can declare a
// double).
func rulesRange(p *Pass, rng *ast.RangeStmt) bool {
	t := p.TypeOf(rng.X)
	if t == nil {
		return false
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	if ptr, ok := elem.Underlying().(*types.Pointer); ok {
		elem = ptr.Elem()
	}
	named, ok := elem.(*types.Named)
	return ok && named.Obj().Name() == "Rule"
}

// calleeFunc resolves a call to the *types.Func it invokes, or nil (local
// function values, builtins, interface dynamic calls).
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// namedFromPkg reports whether t is the named type pkgPath.name.
func namedFromPkg(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(p *Pass, f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}
