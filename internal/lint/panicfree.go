package lint

import (
	"go/ast"
	"go/types"
)

// inputReachablePkgs are the packages that parse untrusted input — CSV data
// and confidence files, rule texts — where a panic is a denial of service an
// attacker (or a typo) can trigger: malformed input must come back as a
// structured error with file/line context, never tear down the process.
// Internal-invariant panics (static schemas, arity checks behind validated
// callers) stay, each carrying a //det:ok panicfree justification.
var inputReachablePkgs = map[string]bool{
	"repro/internal/relation": true,
	"repro/internal/rule":     true,
}

func inInputReachablePkgs(path string) bool { return inputReachablePkgs[path] }

// PanicFree flags calls to the builtin panic in the input-reachable
// packages. The robustness contract of the malformed-input hardening is that
// ReadCSV, ReadConfCSV, NewSchemaChecked and ParseRules reject bad input
// with errors (pinned by FuzzReadCSV/FuzzParseRules); this analyzer keeps
// the property from regressing one convenient panic at a time. A panic that
// genuinely guards an internal invariant — unreachable from input by
// construction — must say so: //det:ok panicfree <reason>.
var PanicFree = &Analyzer{
	Name:      "panicfree",
	Doc:       "panic call in a package that parses untrusted input",
	AppliesTo: inInputReachablePkgs,
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				// Only the builtin counts: a shadowing local identifier
				// named panic (however ill-advised) is not a crash.
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				p.Reportf(call.Pos(),
					"panic in an input-reachable package crashes on malformed input; return an error or annotate //det:ok panicfree <reason>")
				return true
			})
		}
	},
}
