// Package sinkwrite is the golden fixture of the sinkwrite analyzer. It
// declares miniature doubles of the engine's shared structures (the
// analyzer matches shared types by name within the analyzed package) and
// exercises each worker scope: applier methods, `go` statement bodies, and
// function literals handed to the pool entry points.
package sinkwrite

type Result struct {
	Asserts int
	Fixes   []string
}

type Engine struct {
	res  *Result
	data []tuple
}

type tuple struct {
	values []string
	conf   []float64
}

type applier struct {
	e       *Engine
	buf     []string
	scratch int
}

func runParallel(items []int, fn func(*applier, int)) {
	for _, i := range items {
		fn(nil, i)
	}
}

func fanOut(workers, tasks int, fn func(int)) {
	for task := 0; task < tasks; task++ {
		fn(task)
	}
}

// Worker-scoped method: writes through the engine chain escape the sink.
func (ap *applier) bad(i int) {
	ap.e.res.Asserts++                           // want "write through shared Result"
	ap.e.res.Fixes = append(ap.e.res.Fixes, "x") // want "write through shared Result"
	e := ap.e
	e.res.Asserts += 2 // want "write through shared Result"
}

// Applier-owned state and item-owned cells are the sanctioned writes.
func (ap *applier) good(i int) {
	ap.buf = append(ap.buf, "x")
	ap.scratch++
	t := ap.e.data[i]
	t.values[0] = "owned"
	t.conf[0] = 1
}

func (ap *applier) suppressed() {
	ap.e.res.Asserts++ //det:ok sinkwrite direct-commit mode: the caller holds the pool barrier
}

// Task-slot fan-out: the seeding/certification entry points hand fanOut a
// literal whose only writes land in the worker's own slot of a local task
// slice of an unshared type. That is precomputation feeding the sequential
// merge, not a sink bypass — no finding.
type seedTask struct {
	entropy  float64
	distinct int
}

func seedFanOut(e *Engine, n int) []seedTask {
	tasks := make([]seedTask, n)
	fanOut(2, len(tasks), func(ti int) {
		t := &tasks[ti]
		t.entropy, t.distinct = 1.5, 2
	})
	return tasks
}

func launch(e *Engine, items []int) {
	var shared Result
	runParallel(items, func(ap *applier, i int) {
		ap.e.res.Asserts++ // want "write through shared Result"
		shared.Asserts++   // want "write through shared Result"
	})
	fanOut(2, len(items), func(task int) {
		e.res.Fixes = append(e.res.Fixes, "y") // want "write through shared Result"
	})
	go func() {
		e.res.Asserts++ // want "write through shared Result"
	}()
	// Outside worker scope the same write is the commit path: no finding.
	e.res.Asserts++
}
