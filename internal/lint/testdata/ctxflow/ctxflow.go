// Package ctxflow is the golden fixture of the ctxflow analyzer: unbounded
// loops and rule-worklist loops must reach a cancellation check per
// iteration. The doubles mirror the engine's shapes: an interrupted()
// predicate over a context, an atomic abort flag, pool entry points.
package ctxflow

import (
	"context"
	"sync/atomic"
)

type Rule struct{ Name string }

type Engine struct {
	rules []Rule
	ctx   context.Context
	fail  error
}

func (e *Engine) interrupted() bool {
	return e.fail != nil || e.ctx.Err() != nil
}

func applyTuples(ids []int, fn func(int)) {
	for _, i := range ids {
		fn(i)
	}
}

// The fixpoint shape: an unbounded loop with a check on a path passes.
func (e *Engine) goodFixpoint() {
	for {
		if e.interrupted() {
			return
		}
		break
	}
}

// An unbounded loop with no check on any path is a finding even when it
// terminates in practice: the analyzer cannot see the bound, and neither
// can a canceled caller.
func (e *Engine) badFixpoint() int {
	n := 0
	for n < 10 { // want "unbounded loop reaches no cancellation check"
		n++
	}
	return n
}

// ctx.Err on a context and Load on an atomic abort flag are checks.
func (e *Engine) goodClaim(aborted *atomic.Bool) {
	for {
		if aborted.Load() || e.ctx.Err() != nil {
			return
		}
	}
}

// A call to a same-package function that transitively checks counts: the
// check is reached through the callee each iteration.
func (e *Engine) goodViaCallee() {
	for {
		if e.step() {
			return
		}
	}
}

func (e *Engine) step() bool { return e.interrupted() }

// A rule worklist loop that drives pool work must observe cancellation
// between rules.
func (e *Engine) goodRules() {
	for range e.rules {
		if e.interrupted() {
			return
		}
		applyTuples(nil, nil)
	}
}

func (e *Engine) badRules() {
	for _, r := range e.rules { // want "rule worklist loop drives pool work"
		_ = r.Name
		applyTuples(nil, nil)
	}
}

// Work reached through a same-package helper still makes the loop a
// worklist loop.
func (e *Engine) badRulesIndirect() {
	for range e.rules { // want "rule worklist loop drives pool work"
		e.applyOne()
	}
}

func (e *Engine) applyOne() { applyTuples(nil, nil) }

// Bounded setup over the rules — no pool work — is out of scope.
func (e *Engine) setupRules() map[string]bool {
	seen := make(map[string]bool)
	for _, r := range e.rules {
		seen[r.Name] = true
	}
	return seen
}

// A true-but-intended unbounded loop is suppressible with a written reason.
func drain(queue []int) int {
	total := 0
	for len(queue) > 0 { //det:ok ctxflow bounded merge of precomputed lists, shrinks every pass
		total += queue[0]
		queue = queue[1:]
	}
	return total
}
