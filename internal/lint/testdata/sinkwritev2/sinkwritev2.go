// Package sinkwritev2 is the golden fixture of the alias-aware sinkwrite
// v2 analyzer. It reproduces the exact laundering escape the v1 docs
// admitted to missing — s := ap.e.apply[ri]; s.CTuples++ — plus the
// dataflow-extended worker scopes (a literal bound to a local and handed to
// the pool, a literal invoked from a worker body, a closure capture). The
// companion test TestSinkWriteV1MissesLaundering runs the lexical v1
// analyzer over this same fixture and asserts it reports none of these:
// the fixture pins the closed gap in both directions.
package sinkwritev2

type ApplyStats struct{ CTuples int }

type Result struct{ Asserts int }

type Engine struct {
	res   *Result
	apply []*ApplyStats
	data  []tuple
	seen  map[int]bool
}

type tuple struct{ values []string }

type applier struct {
	e   *Engine
	buf []string
}

// stat is the sanctioned counter route: a call result is trusted.
func (ap *applier) stat(ri int) *ApplyStats { return ap.e.apply[ri] }

func runParallel(items []int, fn func(*applier, int)) {
	for _, i := range items {
		fn(nil, i)
	}
}

func fanOut(workers, tasks int, fn func(int)) {
	for t := 0; t < tasks; t++ {
		fn(t)
	}
}

// The docs/determinism.md escape verbatim: the shared pointer is laundered
// into a local of a non-shared intermediate type (*ApplyStats), so the
// lexical chain walk of v1 never meets a shared type on the write path.
func (ap *applier) launder(ri int) {
	s := ap.e.apply[ri]
	s.CTuples++ // want "local alias of shared Engine"
	s = nil     // rebinding the alias itself mutates nothing: no finding
	_ = s
}

// Two-step laundering through an intermediate local.
func (ap *applier) launderChain(ri int) {
	e := ap.e
	s := e.apply[ri]
	s.CTuples++ // want "local alias of shared Engine"
}

// Ranging over a shared container aliases its elements.
func (ap *applier) launderRange() {
	for _, s := range ap.e.apply {
		s.CTuples++ // want "local alias of shared Engine"
	}
}

// A closure captures an alias bound in its enclosing function: the binding
// is outside the worker scope, the write inside it.
func capture(e *Engine, items []int) {
	s := e.apply[0]
	runParallel(items, func(ap *applier, i int) {
		s.CTuples++ // want "local alias of shared Engine"
	})
}

// A literal bound to a local and handed to a pool entry point by name is
// worker-scoped (the certification harness does exactly this).
func certify(c *Engine, tasks int) {
	run := func(ti int) {
		c.res.Asserts++ // want "write through shared Result"
	}
	fanOut(2, tasks, run)
}

// A literal invoked from a worker body runs on the worker too.
func pooled(e *Engine, items []int) {
	runItem := func(i int) {
		e.seen[i] = true // want "write through shared Engine"
	}
	runParallel(items, func(ap *applier, i int) {
		runItem(i)
	})
}

// The sanctioned routes stay silent: the applier sink hands out shared
// pointers on purpose, an owned tuple binding is the ownership idiom, a
// value copy cannot mutate the structure it was read from, and applier
// state is worker-private.
func (ap *applier) sanctioned(ri, i int) {
	ap.stat(ri).CTuples++
	t := ap.e.data[i]
	t.values[0] = "owned"
	n := ap.e.apply[ri].CTuples
	n++
	_ = n
	ap.buf = append(ap.buf, "x")
}

// An alias finding is suppressible like any other.
func (ap *applier) suppressed(ri int) {
	s := ap.e.apply[ri]
	s.CTuples++ //det:ok sinkwrite fixture: proves alias findings are suppressible
}

// Outside any worker scope the same laundering is the commit path: silent.
func commit(e *Engine, ri int) {
	s := e.apply[ri]
	s.CTuples++
}
