// The undo-pairing half of the errcontract fixture. This file is named
// stream.go on purpose: the check keys on the filename, mirroring the real
// streaming engine. A function that mutates staging state (the base
// instance, the tombstone set, mutator calls on base-derived aliases) must
// carry an undo-closure result, and every return after the first mutation
// must return a non-nil closure.
package errcontract

type Relation struct{ Tuples []*Tup }

type Tup struct{ vals []string }

func (r *Relation) Append(vals ...string) *Tup {
	t := &Tup{vals: vals}
	r.Tuples = append(r.Tuples, t)
	return t
}

func (t *Tup) Set(i int, v string) { t.vals[i] = v }

type SEngine struct {
	base    *Relation
	deleted map[int]bool
}

// The sanctioned shape: validate first (an early nil-closure return before
// any mutation is fine), then mutate, then return the closure that reverts
// every staged write. The closure's own writes are the revert — exempt.
func (e *SEngine) goodStage(id int, vals ...string) (func(), error) {
	if id < 0 {
		return nil, ErrStopped
	}
	e.base.Append(vals...)
	wasDeleted := e.deleted[id]
	delete(e.deleted, id)
	return func() {
		e.base.Tuples = e.base.Tuples[:len(e.base.Tuples)-1]
		if wasDeleted {
			e.deleted[id] = true
		}
	}, nil
}

// A mutator call on a base-derived alias is a staged mutation too: the
// taint survives the Tuples index load into the local.
func (e *SEngine) goodAliasStage(id int) (func(), error) {
	if id >= len(e.base.Tuples) {
		return nil, ErrStopped
	}
	t := e.base.Tuples[id]
	saved := t.vals[0]
	t.Set(0, "tombstone")
	return func() { t.Set(0, saved) }, nil
}

// Staged mutation in a function whose signature has no undo-closure result:
// nothing can revert the write.
func (e *SEngine) badStageNoUndo(id int) error {
	e.deleted[id] = true // want "no undo-closure result"
	return nil
}

// A post-mutation path that returns a nil closure: accepted staging that
// cannot be reverted.
func (e *SEngine) badStageNilUndo(id int) (func(), error) {
	e.deleted[id] = true
	return nil, nil // want "staged mutation is not paired with an undo registration"
}

// Rebinding the staging fields themselves is construction, not staging.
func (e *SEngine) rebase(next *Relation) {
	e.base = next
	e.deleted = make(map[int]bool)
}
