// Package errcontract is the golden fixture of the typed-error half of the
// errcontract analyzer: every error that can cross the package API must be
// a package sentinel (Err*), a package-declared error type, or a fmt.Errorf
// wrap carrying one. The doubles mirror the engine's shapes: a sentinel, a
// *WorkerError with a constructor, a fail poison field, a deferred closure
// writing a named error result (the panic containment path).
package errcontract

import (
	"errors"
	"fmt"
	"strconv"
)

var ErrStopped = errors.New("errcontract: stopped")

type WorkerError struct{ Value any }

func (e *WorkerError) Error() string { return "contained" }

func newWE(v any) *WorkerError { return &WorkerError{Value: v} }

type Eng struct{ fail error }

// The sanctioned shapes: nil, a sentinel, a %w wrap of a sentinel, the
// package error type (literal and constructor), a traced local, a forwarded
// clean callee, and a named result assigned by a deferred closure.
func ok1() error        { return nil }
func ok2() error        { return ErrStopped }
func ok3() error        { return fmt.Errorf("phase 3: %w", ErrStopped) }
func ok4() (int, error) { return 0, &WorkerError{Value: "x"} }
func ok5() error        { return newWE("y") }

func ok6(deep bool) error {
	err := ErrStopped
	if deep {
		err = fmt.Errorf("deep: %w", ErrStopped)
	}
	return err
}

func ok7() (int, error) { return ok4() }

func contained() (res int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &WorkerError{Value: r}
		}
	}()
	return 1, nil
}

// The violations: a raw errors.New, a wrap that carries no typed error, an
// out-of-package error returned verbatim, and a parameter laundered through
// (untraceable, so it could be anything).
func bad1() error { return errors.New("raw") } // want "untyped error crosses the clean API"

func bad2() error { return fmt.Errorf("no sentinel %d", 7) } // want "untyped error crosses the clean API"

func bad3(s string) error {
	_, err := strconv.Atoi(s)
	return err // want "untyped error crosses the clean API"
}

func launder(err error) error { return err } // want "untyped error crosses the clean API"

// A deferred closure that poisons a named error result is a return site too.
func badNamed() (err error) {
	defer func() { err = errors.New("late") }() // want "untyped error crosses the clean API"
	return nil
}

// Forwarding a dirty in-package callee is NOT re-reported: the finding
// lands once, at bad1's own return.
func forward() error { return bad1() }

// The fail poison field: whatever is stored there crosses the API verbatim,
// so its assignments are audited; reading it back is sanctioned.
func (e *Eng) poison() {
	e.fail = errors.New("boom") // want "untyped error poisons the fail field"
}

func (e *Eng) poisonOK() {
	e.fail = ErrStopped
}

func (e *Eng) surface() error { return e.fail }

// A contract finding is suppressible like any other.
func external(s string) error {
	_, err := strconv.Atoi(s)
	return err //det:ok errcontract fixture: proves contract findings are suppressible
}
