// Package panicfree is the golden fixture for the panicfree analyzer: naked
// builtin panics are flagged, //det:ok-annotated invariant panics and
// shadowed identifiers are not.
package panicfree

import "errors"

func parse(line string) error {
	if line == "" {
		panic("empty line") // want "panic in an input-reachable package"
	}
	return errors.New("bad line")
}

func parseValue(v string) (int, error) {
	if v == "boom" {
		panic(v) // want "return an error or annotate"
	}
	return len(v), nil
}

func invariant(ok bool) {
	if !ok {
		panic("broken invariant") //det:ok panicfree fixture stand-in for a panic unreachable from input by construction
	}
}

func shadowed() {
	panic := func(string) {}
	panic("a local identifier, not the builtin crash")
}
