// Package maporder is the golden fixture of the maporder analyzer: loops
// marked `// want` must be flagged, everything else must stay silent.
package maporder

import "sort"

type set map[int]bool

func sumInMapOrder(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want "iteration over map"
		s += v
	}
	return s
}

func keysInMapOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want "iteration over map"
		keys = append(keys, k)
	}
	return keys
}

func namedMapType(s set) int {
	n := 0
	for k := range s { // want "iteration over map"
		n += k
	}
	return n
}

func sliceIterationIsFine(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

func channelIterationIsFine(ch chan int) int {
	n := 0
	for x := range ch {
		n += x
	}
	return n
}

func suppressedWithReason(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //det:ok maporder keys are sorted below before anything reads them
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func suppressedLineAbove(m map[string]int) int {
	n := 0
	//det:ok maporder integer sum is order-independent
	for _, v := range m {
		n += v
	}
	return n
}
