// Package detok is the fixture of the suppression-grammar check
// (CheckSuppressions): annotations must name a known analyzer and carry a
// written reason. Expectations live in TestSuppressionGrammar, not in
// `// want` comments — the findings sit on the annotation lines themselves.
package detok

var m = map[int]int{}

func noAnalyzer() {
	//det:ok
	for k := range m {
		_ = k
	}
}

func unknownAnalyzer() {
	for k := range m { //det:ok nosuchcheck because reasons
		_ = k
	}
}

func noReason() {
	for k := range m { //det:ok maporder
		_ = k
	}
}

func valid() {
	for k := range m { //det:ok maporder summed into an int, order-independent
		_ = k
	}
}
