// Package poolonly is the golden fixture of the poolonly analyzer. This
// file plays the role of the engine's parallel.go: the one place goroutines
// may be spawned.
package poolonly

import "sync"

func pooled(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// stealing mirrors the work-stealing worker loop: goroutines that claim
// from their own shard and steal from peers are still spawned here, and
// only here.
func stealing(queues []chan int, fn func(int)) {
	var wg sync.WaitGroup
	for w := range queues {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range queues[w] {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}
