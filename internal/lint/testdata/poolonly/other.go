package poolonly

func adhoc(fn func()) {
	go fn() // want "outside parallel.go"
}

func adhocLiteral(done chan struct{}) {
	go func() { // want "outside parallel.go"
		close(done)
	}()
}

func suppressed(done chan struct{}) {
	//det:ok poolonly shutdown watcher: writes nothing any engine output reads
	go func() {
		<-done
	}()
}
