// Package detokstale is the golden fixture of the stale-suppression audit:
// a //det:ok annotation whose line no longer produces the suppressed
// finding is itself a finding. The fixture uses poolonly (the one analyzer
// that applies to every package, so it runs under RunAll here): a live
// suppression over a real go statement, a stale one over plain code, and a
// stale one excused by a //det:ok detokstale annotation — the escape hatch
// for annotations kept on purpose.
package detokstale

import "sync"

// A used suppression: the go statement is a real poolonly finding, so the
// annotation suppresses it and is not stale.
func live(wg *sync.WaitGroup) {
	wg.Add(1)
	go wg.Done() //det:ok poolonly fixture: proves a used suppression is not stale
}

// A stale suppression: the go statement this line once carried was removed,
// and the leftover annotation now suppresses nothing.
func stale() int {
	n := 1 //det:ok poolonly the go statement here was removed in a refactor
	return n
}

// A stale suppression that is itself suppressed: detokstale findings obey
// the same annotation grammar as every other analyzer's.
func excused() int {
	//det:ok detokstale fixture: proves stale findings are suppressible
	//det:ok poolonly kept deliberately to exercise the escape hatch
	return 2
}
