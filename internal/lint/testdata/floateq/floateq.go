// Package floateq is the golden fixture of the floateq analyzer.
package floateq

const eps = 1e-9

// quantConf is the quantization helper: the one function allowed raw float
// identity.
func quantConf(x float64) int64 {
	if x == 0 {
		return 0
	}
	return int64(x / eps)
}

func bad(a, b float64) bool {
	return a == b // want "floating-point"
}

func badNeq(a, b float32) bool {
	return a != b // want "floating-point"
}

func badConst(conf float64) bool {
	return conf == 0.8 // want "floating-point"
}

func good(a, b float64) bool {
	return quantConf(a) == quantConf(b)
}

func ordering(a, b float64) bool {
	return a < b // ordering comparisons are fine: only identity is dust-sensitive
}

func ints(a, b int) bool {
	return a == b
}

func suppressed(conf float64) bool {
	return conf == 0 //det:ok floateq sentinel zero is assigned verbatim, never computed
}
