// Package lint is a stdlib-only static-analysis framework that mechanizes
// the repo's determinism and concurrency invariants: the guarantees that the
// rescan, sequential-incremental and parallel engines produce byte-identical
// Fixes and Reports are encoded as analyzers that fail CI instead of relying
// on reviewer vigilance.
//
// The framework deliberately does not depend on golang.org/x/tools: packages
// are parsed with go/parser and type-checked with go/types using the source
// importer, so `go run ./cmd/unilint ./...` works with nothing but the
// toolchain the repo already requires.
//
// Findings can be suppressed in the source with an annotation comment
//
//	//det:ok <analyzer> <reason>
//
// placed at the end of the offending line or alone on the line directly
// above it. The reason is mandatory: a suppression without one is itself a
// finding (see CheckSuppressions), so every silenced diagnostic carries a
// written justification next to the code it excuses.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //det:ok annotations.
	Name string
	// Doc is a one-line description printed by `unilint -list`.
	Doc string
	// AppliesTo reports whether the analyzer runs on the package with the
	// given import path. Nil means it runs on every package. The driver
	// consults it; fixture tests bypass it and run the analyzer directly.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Finding is one diagnostic produced by an analyzer, already past the
// suppression filter.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding as "file:line:col: analyzer: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	sup      *suppressions
	findings *[]Finding
}

// Reportf records a finding at pos unless a //det:ok annotation for this
// analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.sup.covers(p.Analyzer.Name, position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the type checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// detPrefix introduces a suppression annotation. The annotation grammar is
//
//	//det:ok <analyzer> <reason>
//
// with no space between "//" and "det:ok" (a gofmt-style machine comment,
// like //go:build or //nolint).
const detPrefix = "det:ok"

// suppression is one parsed //det:ok annotation.
type suppression struct {
	pos      token.Position
	analyzer string // "" when the annotation names no analyzer
	reason   string // "" when no justification was written
	used     bool   // set by covers when the annotation suppressed a finding
}

// suppressions indexes the //det:ok annotations of one package by file and
// line. An annotation on line L covers findings on L (trailing form) and on
// L+1 (line-above form).
type suppressions struct {
	byLine map[string]map[int][]*suppression
	all    []*suppression
}

// parseAnnotation splits a comment's text into its //det:ok fields. ok is
// false when the comment is not a det:ok annotation at all: the prefix must
// be followed by a space, a tab, or the end of the comment, so //det:okay
// is prose, not a suppression of an analyzer named "ay". When ok, analyzer
// and reason are the first whitespace-separated field and the rest.
func parseAnnotation(text string) (analyzer, reason string, ok bool) {
	rest, ok := strings.CutPrefix(text, "//"+detPrefix)
	if !ok {
		return "", "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) > 0 {
		analyzer = fields[0]
	}
	if len(fields) > 1 {
		reason = strings.Join(fields[1:], " ")
	}
	return analyzer, reason, true
}

// parseSuppressions collects every //det:ok annotation in the files.
func parseSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]*suppression)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				analyzer, reason, ok := parseAnnotation(c.Text)
				if !ok {
					continue
				}
				sup := &suppression{pos: fset.Position(c.Pos()), analyzer: analyzer, reason: reason}
				lines := s.byLine[sup.pos.Filename]
				if lines == nil {
					lines = make(map[int][]*suppression)
					s.byLine[sup.pos.Filename] = lines
				}
				lines[sup.pos.Line] = append(lines[sup.pos.Line], sup)
				s.all = append(s.all, sup)
			}
		}
	}
	return s
}

// covers reports whether an annotation for the analyzer covers the position.
// Matching annotations are marked used: the detokstale audit reports the
// ones that survive a whole package run without ever suppressing anything.
func (s *suppressions) covers(analyzer string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, sup := range lines[line] {
			if sup.analyzer == analyzer {
				sup.used = true
				hit = true
			}
		}
	}
	return hit
}

// SuppressionsAnalyzer is the name under which annotation-grammar findings
// are reported.
const SuppressionsAnalyzer = "detok"

// CheckSuppressions validates every //det:ok annotation in the files: the
// named analyzer must exist in known, and a non-empty reason is mandatory.
// Violations come back as findings, so a suppression that silences a
// diagnostic without justifying it fails the build exactly like the
// diagnostic would have.
func CheckSuppressions(fset *token.FileSet, files []*ast.File, known []*Analyzer) []Finding {
	names := make(map[string]bool, len(known))
	for _, a := range known {
		names[a.Name] = true
	}
	var out []Finding
	for _, sup := range parseSuppressions(fset, files).all {
		switch {
		case sup.analyzer == "":
			out = append(out, Finding{Pos: sup.pos, Analyzer: SuppressionsAnalyzer,
				Message: "suppression names no analyzer; write //det:ok <analyzer> <reason>"})
		case !names[sup.analyzer]:
			out = append(out, Finding{Pos: sup.pos, Analyzer: SuppressionsAnalyzer,
				Message: fmt.Sprintf("suppression names unknown analyzer %q", sup.analyzer)})
		case sup.reason == "":
			out = append(out, Finding{Pos: sup.pos, Analyzer: SuppressionsAnalyzer,
				Message: fmt.Sprintf("suppression of %q carries no reason; a written justification is mandatory", sup.analyzer)})
		}
	}
	return out
}

// Run applies one analyzer to one loaded package and returns its
// unsuppressed findings. The AppliesTo filter is not consulted here — the
// driver decides which packages an analyzer sees; fixture tests call Run
// directly.
func Run(a *Analyzer, pkg *Package) []Finding {
	return runWith(a, pkg, parseSuppressions(pkg.Fset, pkg.Files))
}

// runWith runs one analyzer against a shared suppression table, so the
// usage marks of one package's whole run accumulate in one place.
func runWith(a *Analyzer, pkg *Package, sup *suppressions) []Finding {
	var findings []Finding
	a.Run(&Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		sup:      sup,
		findings: &findings,
	})
	return findings
}

// RunAll applies every applicable analyzer plus the suppression-grammar
// check and the stale-suppression audit to the loaded packages and returns
// all findings sorted by position. The suppression table is parsed once per
// package and shared across the analyzers, so by the time the audit runs it
// knows exactly which annotations suppressed a finding and which are dead.
func RunAll(analyzers []*Analyzer, pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		sup := parseSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			findings = append(findings, runWith(a, pkg, sup)...)
		}
		findings = append(findings, CheckSuppressions(pkg.Fset, pkg.Files, analyzers)...)
		findings = append(findings, staleSuppressions(sup, analyzers)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}
