package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path, e.g. "repro/internal/clean"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by file name
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks the module packages matching the patterns,
// rooted at the directory holding go.mod at or above dir, including each
// package's in-package test files. Patterns follow the go tool's shape:
// "./..." matches every package under the root, "./internal/clean" one
// directory, "./internal/..." a subtree.
//
// Type-checking uses the toolchain's source importer, so the only external
// requirement is the go toolchain itself (no x/tools, no prebuilt export
// data). Type errors in a dependency are reported; analysis proceeds only
// over packages that check cleanly.
func Load(dir string, patterns []string) ([]*Package, error) {
	return load(dir, patterns, true)
}

// LoadProduction is Load without test files: the view `go build` compiles.
func LoadProduction(dir string, patterns []string) ([]*Package, error) {
	return load(dir, patterns, false)
}

func load(dir string, patterns []string, tests bool) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := matchDirs(root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := checkDir(fset, imp, root, modPath, d, tests)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// ModuleRoot returns the root directory of the module at or above dir —
// the directory findings are relativized against in machine-readable
// output.
func ModuleRoot(dir string) (string, error) {
	root, _, err := findModule(dir)
	return root, err
}

// findModule walks up from dir to the directory containing go.mod and
// returns it together with the declared module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found at or above %s", abs)
		}
	}
}

// matchDirs expands the patterns into the sorted set of directories under
// root that contain non-test Go files.
func matchDirs(root string, patterns []string) ([]string, error) {
	set := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "." || pat == "" {
			pat = root
		} else {
			pat = filepath.Join(root, strings.TrimPrefix(pat, "./"))
		}
		if !recursive {
			if hasGoFiles(pat) {
				set[pat] = true
			}
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				set[p] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(set))
	for d := range set {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name(), false) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether name is a Go file the loader reads; test
// files count only when tests is set (a package always needs at least one
// non-test file to be loaded at all — see hasGoFiles).
func isSourceFile(name string, tests bool) bool {
	if !strings.HasSuffix(name, ".go") ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return false
	}
	return tests || !strings.HasSuffix(name, "_test.go")
}

// checkDir parses and type-checks the package in dir, optionally with its
// in-package test files (external _test packages are not loaded — this repo
// has none, and they would form a second package per directory). It returns
// nil when the directory holds no non-test Go files.
func checkDir(fset *token.FileSet, imp types.Importer, root, modPath, dir string, tests bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name(), tests) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !strings.HasSuffix(e.Name(), "_test.go") && pkgName == "" {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	if pkgName == "" {
		return nil, nil
	}
	// Drop external-test-package files (package foo_test): they cannot be
	// type-checked together with package foo.
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == pkgName {
			kept = append(kept, f)
		}
	}
	files = kept

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: srcDirImporter{imp: imp, dir: dir}}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// srcDirImporter adapts the source importer's ImportFrom to the plain
// Importer interface types.Config wants, pinning the source directory so
// module-relative import paths resolve from the package being checked.
type srcDirImporter struct {
	imp types.Importer
	dir string
}

func (s srcDirImporter) Import(path string) (*types.Package, error) {
	if from, ok := s.imp.(types.ImporterFrom); ok {
		return from.ImportFrom(path, s.dir, 0)
	}
	return s.imp.Import(path)
}
