package lint

import "fmt"

// DetOkStale is the suppression audit: a //det:ok annotation that no longer
// suppresses anything is itself a finding, so suppressions cannot outlive
// their reason. The analyzer shell exists for -list, for AppliesTo-style
// uniformity, and so that //det:ok detokstale is a known name; the actual
// audit is driver-level (staleSuppressions, called by RunAll) because it
// needs to observe a whole package run of every other analyzer first.
var DetOkStale = &Analyzer{
	Name: "detokstale",
	Doc:  "suppression whose line no longer produces the suppressed finding",
	Run:  func(*Pass) {},
}

// staleSuppressions reports every well-formed suppression that survived the
// package run without suppressing a finding. Malformed annotations (no
// analyzer, unknown analyzer) are excluded — those are already grammar
// findings — and so are suppressions of the pseudo-analyzers themselves,
// whose targets are annotations rather than code. A stale finding is in
// turn suppressible with //det:ok detokstale <reason> on the line above the
// dead annotation, for the rare case where an annotation guards a line that
// only fires under a build configuration the linter does not see.
func staleSuppressions(sup *suppressions, known []*Analyzer) []Finding {
	names := make(map[string]bool, len(known))
	for _, a := range known {
		names[a.Name] = true
	}
	var out []Finding
	for _, s := range sup.all {
		if s.used || !names[s.analyzer] {
			continue
		}
		if s.analyzer == SuppressionsAnalyzer || s.analyzer == DetOkStale.Name {
			continue
		}
		if sup.covers(DetOkStale.Name, s.pos) {
			continue
		}
		out = append(out, Finding{Pos: s.pos, Analyzer: DetOkStale.Name,
			Message: fmt.Sprintf("suppression of %q suppresses nothing: the annotated line no longer produces that finding — delete the annotation (suppressions must not outlive their reason)", s.analyzer)})
	}
	return out
}
