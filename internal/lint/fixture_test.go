package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture parses and type-checks testdata/<name> as one package. The
// fixture's import path is synthetic ("fix/<name>"), which is also what lets
// fixtures exercise analyzers whose AppliesTo filter would exclude them —
// tests call Run directly, bypassing the driver's filter.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s holds no Go files", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("fix/"+name, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", name, err)
	}
	return &Package{Path: "fix/" + name, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}
}

// expectation is one `// want "regex"` comment in a fixture: a finding is
// expected on that file:line with a message matching the regex.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantQuoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants collects the `// want "re" ["re" ...]` expectations of a
// loaded fixture.
func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantQuoted.FindAllStringSubmatch(rest, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, q := range quoted {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regex: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// checkFindings is the shared expectation checker: every finding must match
// an unmatched want on its line, and every want must end up matched. It
// fails the fixture in both directions — a missing finding means the
// analyzer lost a case, an unexpected one means a false positive.
func checkFindings(t *testing.T, wants []*expectation, findings []Finding) {
	t.Helper()
	for _, f := range findings {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// runFixture runs one analyzer over its golden fixture. The suppression
// grammar check runs alongside, so a fixture with a malformed //det:ok
// annotation fails loudly instead of silently suppressing a case.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg := loadFixture(t, name)
	findings := append(Run(a, pkg), CheckSuppressions(pkg.Fset, pkg.Files, All())...)
	checkFindings(t, parseWants(t, pkg), findings)
}

func TestMapOrderFixture(t *testing.T)    { runFixture(t, MapOrder, "maporder") }
func TestPoolOnlyFixture(t *testing.T)    { runFixture(t, PoolOnly, "poolonly") }
func TestSinkWriteFixture(t *testing.T)   { runFixture(t, SinkWrite, "sinkwrite") }
func TestFloatEqFixture(t *testing.T)     { runFixture(t, FloatEq, "floateq") }
func TestPanicFreeFixture(t *testing.T)   { runFixture(t, PanicFree, "panicfree") }
func TestCtxFlowFixture(t *testing.T)     { runFixture(t, CtxFlow, "ctxflow") }
func TestErrContractFixture(t *testing.T) { runFixture(t, ErrContract, "errcontract") }

// The v1 fixture under v1: the lexical analyzer still earns its keep as the
// regression baseline, and v2 (TestSinkWriteFixture above) reproduces every
// one of its findings on the same fixture — the upgrade lost nothing.
func TestSinkWriteLexicalFixture(t *testing.T) { runFixture(t, SinkWriteLexical, "sinkwrite") }

// The laundering fixture under v2: the alias-aware analyzer catches the
// exact escape docs/determinism.md used to admit to missing.
func TestSinkWriteV2Fixture(t *testing.T) { runFixture(t, SinkWrite, "sinkwritev2") }

// TestSinkWriteV1MissesLaundering pins the closed gap from the other side:
// the lexical v1 analyzer reports NOTHING on the laundering fixture. If v1
// ever starts seeing these, the fixture no longer demonstrates the gap and
// the v1/v2 split has lost its meaning.
func TestSinkWriteV1MissesLaundering(t *testing.T) {
	pkg := loadFixture(t, "sinkwritev2")
	for _, f := range Run(SinkWriteLexical, pkg) {
		t.Errorf("lexical v1 unexpectedly caught a laundered write: %s", f)
	}
}

// TestDetOkStale runs the full driver over the stale-suppression fixture:
// the used annotation and the excused one produce nothing, the dead one is
// the package's single finding.
func TestDetOkStale(t *testing.T) {
	pkg := loadFixture(t, "detokstale")
	findings := RunAll(All(), []*Package{pkg})
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1:\n%v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != DetOkStale.Name || !strings.Contains(f.Message, `suppression of "poolonly" suppresses nothing`) {
		t.Errorf("finding = %s, want a stale poolonly suppression", f)
	}
	if want := findFixtureLine(t, pkg, "//det:ok poolonly the go statement here was removed"); f.Pos.Line != want {
		t.Errorf("finding on line %d, want line %d (the dead annotation)", f.Pos.Line, want)
	}
}

// TestSuppressionGrammar pins the mandatory-reason rule: an annotation that
// names no analyzer, names an unknown one, or carries no reason is itself a
// finding; a well-formed one is not.
func TestSuppressionGrammar(t *testing.T) {
	pkg := loadFixture(t, "detok")
	findings := CheckSuppressions(pkg.Fset, pkg.Files, All())
	wantMsgs := []string{
		"names no analyzer",
		`unknown analyzer "nosuchcheck"`,
		"carries no reason",
	}
	if len(findings) != len(wantMsgs) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(wantMsgs), findings)
	}
	for i, want := range wantMsgs {
		if f := findings[i]; f.Analyzer != SuppressionsAnalyzer || !strings.Contains(f.Message, want) {
			t.Errorf("finding %d = %s, want analyzer %q and message containing %q", i, f, SuppressionsAnalyzer, want)
		}
	}
}

// TestReasonlessSuppressionStillSuppresses documents the division of labor:
// covers() silences the target diagnostic even when the reason is missing —
// the grammar check is what keeps the build red until a reason is written,
// so the two findings can never double-report one line.
func TestReasonlessSuppressionStillSuppresses(t *testing.T) {
	pkg := loadFixture(t, "detok")
	for _, f := range Run(MapOrder, pkg) {
		if f.Pos.Line == findFixtureLine(t, pkg, "//det:ok maporder\n") {
			t.Errorf("maporder reported through a (reasonless) suppression: %s", f)
		}
	}
	if n := len(CheckSuppressions(pkg.Fset, pkg.Files, All())); n == 0 {
		t.Error("grammar check found nothing: a reasonless suppression would silence a diagnostic for free")
	}
}

func findFixtureLine(t *testing.T, pkg *Package, needle string) int {
	t.Helper()
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if strings.Contains(line+"\n", needle) {
				return i + 1
			}
		}
	}
	t.Fatalf("fixture line %q not found", needle)
	return 0
}

// TestAppliesToFilter pins the driver-side scoping: maporder and floateq
// guard the deterministic-output packages, sinkwrite the engine package,
// poolonly everything.
func TestAppliesToFilter(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		path string
		want bool
	}{
		{MapOrder, "repro/internal/clean", true},
		{MapOrder, "repro/internal/cfd", true},
		{MapOrder, "repro/internal/md", true},
		{MapOrder, "repro/internal/rule", true},
		{MapOrder, "repro/internal/gen", false},
		{MapOrder, "repro/cmd/uniclean", false},
		{FloatEq, "repro/internal/clean", true},
		{FloatEq, "repro/internal/suffixtree", false},
		{SinkWrite, "repro/internal/clean", true},
		{SinkWrite, "repro/internal/md", false},
		{PanicFree, "repro/internal/relation", true},
		{PanicFree, "repro/internal/rule", true},
		{PanicFree, "repro/internal/clean", false},
		{PanicFree, "repro/cmd/uniclean", false},
		{CtxFlow, "repro/internal/clean", true},
		{CtxFlow, "repro/internal/rule", false},
		{ErrContract, "repro/internal/clean", true},
		{ErrContract, "repro/internal/relation", false},
		{SinkWriteLexical, "repro/internal/clean", true},
		{SinkWriteLexical, "repro/internal/md", false},
	}
	for _, c := range cases {
		if got := c.a.AppliesTo(c.path); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
	if PoolOnly.AppliesTo != nil {
		t.Error("poolonly must apply to every package")
	}
	if DetOkStale.AppliesTo != nil {
		t.Error("detokstale must apply to every package: stale suppressions rot anywhere")
	}
}

// TestFindingString pins the file:line:col format the driver prints and CI
// greps.
func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "maporder",
		Message:  "boom",
	}
	if got, want := f.String(), "x.go:3:7: maporder: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestRunAllSortsFindings checks the driver-level ordering contract:
// findings arrive sorted by file, line, column, analyzer regardless of
// package or analyzer iteration order. A test analyzer reports every
// function declaration in reverse source order to force the sort to work.
func TestRunAllSortsFindings(t *testing.T) {
	backwards := &Analyzer{
		Name: "backwards",
		Doc:  "reports every func decl, last first",
		Run: func(p *Pass) {
			for i := len(p.Files) - 1; i >= 0; i-- {
				var decls []*ast.FuncDecl
				for _, d := range p.Files[i].Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						decls = append(decls, fd)
					}
				}
				for j := len(decls) - 1; j >= 0; j-- {
					p.Reportf(decls[j].Pos(), "func %s", decls[j].Name.Name)
				}
			}
		},
	}
	pkg := loadFixture(t, "maporder")
	findings := RunAll([]*Analyzer{backwards}, []*Package{pkg})
	if len(findings) < 2 {
		t.Fatalf("want at least 2 findings, got %d", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("findings out of order: %s before %s", a, b)
		}
	}
}

// TestRunAllRespectsAppliesTo: a package outside an analyzer's scope yields
// none of its findings even when violations are present.
func TestRunAllRespectsAppliesTo(t *testing.T) {
	pkg := loadFixture(t, "maporder") // path "fix/maporder": outside maporder's scope
	for _, f := range RunAll(All(), []*Package{pkg}) {
		if f.Analyzer == MapOrder.Name {
			t.Errorf("maporder ran outside its package scope: %s", f)
		}
	}
}
