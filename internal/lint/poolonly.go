package lint

import (
	"go/ast"
	"path/filepath"
)

// poolFile is the one file allowed to spawn goroutines: the bounded worker
// pool with its propose/commit merge (runParallel) and the read-only
// fan-out (fanOut) live there, and everything concurrent in the engine is
// required to go through them.
const poolFile = "parallel.go"

// PoolOnly flags `go` statements outside parallel.go. The engine's whole
// determinism argument rests on concurrency being funneled through the
// bounded pool: workers write only item-owned cells, record everything else
// as ops, and a single deterministic merge replays them — an ad-hoc
// goroutine bypasses the propose/commit sink and reintroduces scheduling
// order into the output. New concurrency either goes through
// runParallel/fanOut or justifies itself: //det:ok poolonly <reason>.
var PoolOnly = &Analyzer{
	Name: "poolonly",
	Doc:  "goroutine spawned outside the bounded pool (parallel.go)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if filepath.Base(p.Fset.Position(f.Pos()).Filename) == poolFile {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf(g.Go,
						"go statement outside %s bypasses the bounded pool's propose/commit merge; use runParallel/fanOut or annotate //det:ok poolonly <reason>",
						poolFile)
				}
				return true
			})
		}
	},
}
