package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// quantHelper is the one function allowed to look at raw float identity: the
// quantization helper that all confidence tie-breaks must go through.
const quantHelper = "quantConf"

// FloatEq flags == and != on floating-point operands in the
// deterministic-output packages, outside the quantization helper. Summed
// confidences differ in the last ulp depending on addition order (0.1+0.2 vs
// 0.3), so raw float equality makes tie-breaks — and through them the fix
// sequence — depend on evaluation order. Comparisons must quantize first
// (quantConf(a) == quantConf(b), an int64 comparison); a raw comparison that
// is genuinely safe must say why: //det:ok floateq <reason>.
var FloatEq = &Analyzer{
	Name:      "floateq",
	Doc:       "== or != on floats outside the quantization helper",
	AppliesTo: inDeterministicPkgs,
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Name.Name == quantHelper {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					bin, ok := n.(*ast.BinaryExpr)
					if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
						return true
					}
					if isFloat(p.TypeOf(bin.X)) || isFloat(p.TypeOf(bin.Y)) {
						p.Reportf(bin.OpPos,
							"%s on floating-point values is order-of-evaluation sensitive in the last ulp; compare through %s or annotate //det:ok floateq <reason>",
							bin.Op, quantHelper)
					}
					return true
				})
			}
		}
	},
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
