package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// ErrContract mechanizes two halves of the failure and streaming contracts
// of repro/internal/clean:
//
// Typed errors only. Every error that can cross the package's API must be
// one of the typed errors: a package sentinel (ErrCanceled, ErrDeadline,
// ErrNotStreaming, ErrBadUpdate — any package-level Err* variable), a
// package-declared error type (*WorkerError), or a fmt.Errorf wrap that
// carries a sentinel (the %w idiom). The check classifies every error
// return of every function — local error variables are traced through
// their assignments (def-use), in-package calls through a fixpoint of
// per-function summaries, and the e.fail poison field through a
// package-wide audit of its assignments. A function that forwards a dirty
// in-package callee's error is not re-reported: the finding lands once, at
// the return (or assignment) that introduces the untyped error.
//
// Staged mutation pairs with undo. In stream.go, a function whose body
// mutates staging state — writes through the base instance or the
// tombstone set, delete() on the tombstone map, Append/Set calls on
// base-derived values (tracked through local aliases) — must return an
// undo closure, and every return after the first mutation must return a
// non-nil closure: an accepted staging path that cannot be reverted breaks
// the bit-unchanged failure contract. Rebinding the fields themselves
// (e.base = clone — construction) is not a staged mutation, and function
// literals are exempt: the undo closures revert base by writing to it.
//
// Test files are exempt from both halves: tests fabricate errors freely.
var ErrContract = &Analyzer{
	Name:      "errcontract",
	Doc:       "untyped error crossing the clean API, or staged mutation without undo",
	AppliesTo: func(path string) bool { return path == "repro/internal/clean" },
	Run: func(p *Pass) {
		ec := newErrFacts(p)
		ec.solve()
		ec.report()
		for _, f := range p.Files {
			name := filepath.Base(p.Fset.Position(f.Pos()).Filename)
			if name == "stream.go" || strings.HasSuffix(name, "_stream.go") {
				checkUndoPairing(p, f)
			}
		}
	},
}

// errStatus classifies an error expression.
type errStatus int

const (
	errOK        errStatus = iota // nil, sentinel, typed, or clean-callee
	errViaCallee                  // dirty only because an in-package callee is
	errIntrinsic                  // introduces an untyped error right here
)

func worseErr(a, b errStatus) errStatus {
	if b > a {
		return b
	}
	return a
}

// errFacts is the per-package state of the typed-error check: function
// summaries driven to a fixpoint over the same-package call graph.
type errFacts struct {
	p        *Pass
	errIface *types.Interface
	decls    map[*types.Func]*ast.FuncDecl
	clean    map[*types.Func]bool
	bindings map[*types.Func]map[types.Object][]ast.Expr
}

func newErrFacts(p *Pass) *errFacts {
	ec := &errFacts{
		p:        p,
		errIface: types.Universe.Lookup("error").Type().Underlying().(*types.Interface),
		decls:    make(map[*types.Func]*ast.FuncDecl),
		clean:    make(map[*types.Func]bool),
		bindings: make(map[*types.Func]map[types.Object][]ast.Expr),
	}
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ec.decls[fn] = fd
			ec.clean[fn] = true
			ec.bindings[fn] = collectBindings(p, fd.Body)
		}
	}
	return ec
}

// collectBindings maps every local object of the function to the
// expressions assigned to it, including assignments inside nested literals
// (a deferred closure writing a named result is how the panic containment
// path returns its *WorkerError).
func collectBindings(p *Pass, body ast.Node) map[types.Object][]ast.Expr {
	bind := make(map[types.Object][]ast.Expr)
	add := func(lhs, rhs ast.Expr) {
		if obj := identObj(p, lhs); obj != nil {
			bind[obj] = append(bind[obj], rhs)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					add(x.Lhs[i], x.Rhs[i])
				}
			} else if len(x.Rhs) == 1 {
				for _, lhs := range x.Lhs {
					add(lhs, x.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i := range x.Names {
					add(x.Names[i], x.Values[i])
				}
			} else if len(x.Values) == 1 {
				for _, name := range x.Names {
					add(name, x.Values[0])
				}
			}
		}
		return true
	})
	return bind
}

// solve drives the per-function summaries to a fixpoint: clean only goes
// true -> false, so this terminates.
func (ec *errFacts) solve() {
	for changed := true; changed; {
		changed = false
		for fn, fd := range ec.decls {
			if !ec.clean[fn] {
				continue
			}
			if ec.declStatus(fn, fd) != errOK {
				ec.clean[fn] = false
				changed = true
			}
		}
	}
}

// declStatus combines the classification of every error return site of the
// function: explicit returns, single-call forwards, and bindings of named
// error results (which bare returns and deferred writes flow through).
func (ec *errFacts) declStatus(fn *types.Func, fd *ast.FuncDecl) errStatus {
	status := errOK
	ec.visitErrReturns(fn, fd, func(e ast.Expr, _ token.Pos) {
		status = worseErr(status, ec.classify(fn, e, nil))
	})
	return status
}

// visitErrReturns calls visit for every expression whose value can leave fn
// as an error result: return-site expressions in the error result slots,
// and every assignment to a named error result.
func (ec *errFacts) visitErrReturns(fn *types.Func, fd *ast.FuncDecl, visit func(e ast.Expr, at token.Pos)) {
	sig := fn.Type().(*types.Signature)
	results := sig.Results()
	var errIdx []int
	for i := 0; i < results.Len(); i++ {
		if types.Implements(results.At(i).Type(), ec.errIface) {
			errIdx = append(errIdx, i)
		}
	}
	if len(errIdx) == 0 {
		return
	}
	// Returns of fn itself: do not descend into nested literals, whose
	// returns are their own.
	inspectSkipLits(fd.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		switch {
		case len(ret.Results) == results.Len():
			for _, i := range errIdx {
				visit(ret.Results[i], ret.Pos())
			}
		case len(ret.Results) == 1 && results.Len() > 1:
			// return f() forwarding a multi-result call.
			visit(ret.Results[0], ret.Pos())
		}
	})
	// Named error results: deferred closures assign them after the fact.
	if fd.Type.Results != nil {
		bind := ec.bindings[fn]
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				obj := ec.p.Info.Defs[name]
				if obj == nil || !types.Implements(obj.Type(), ec.errIface) {
					continue
				}
				for _, rhs := range bind[obj] {
					visit(rhs, rhs.Pos())
				}
			}
		}
	}
}

// classify determines how an expression relates to the typed-error
// contract. fn is the enclosing function (for local def-use); visiting
// guards self-referential assignment cycles (optimistically OK — some
// other binding in the cycle must introduce the value).
func (ec *errFacts) classify(fn *types.Func, e ast.Expr, visiting map[types.Object]bool) errStatus {
	p := ec.p
	switch x := e.(type) {
	case *ast.ParenExpr:
		return ec.classify(fn, x.X, visiting)
	case *ast.Ident:
		obj := identObj(p, x)
		if obj == nil {
			return errIntrinsic
		}
		if _, isNil := obj.(*types.Nil); isNil {
			return errOK
		}
		if ec.typedError(obj.Type()) {
			return errOK
		}
		if v, ok := obj.(*types.Var); ok {
			// Package-level Err* sentinel.
			if v.Parent() == p.Pkg.Scope() && strings.HasPrefix(v.Name(), "Err") {
				return errOK
			}
			// Local: classify everything ever assigned to it.
			if visiting[obj] {
				return errOK
			}
			if visiting == nil {
				visiting = make(map[types.Object]bool)
			}
			visiting[obj] = true
			defer delete(visiting, obj)
			binds := ec.bindings[fn][obj]
			if len(binds) == 0 {
				return errIntrinsic // parameter or untraceable: launders anything
			}
			status := errOK
			for _, rhs := range binds {
				status = worseErr(status, ec.classify(fn, rhs, visiting))
			}
			return status
		}
		return errIntrinsic
	case *ast.SelectorExpr:
		if ec.typedError(p.TypeOf(x)) {
			return errOK
		}
		if x.Sel.Name == "fail" {
			return errOK // the poison field: its assignments are audited below
		}
		return errIntrinsic
	case *ast.CallExpr:
		return ec.classifyCall(fn, x, visiting)
	case *ast.UnaryExpr:
		// &WorkerError{...} composite literals land here.
		if ec.typedError(p.TypeOf(x)) {
			return errOK
		}
		return errIntrinsic
	default:
		if ec.typedError(p.TypeOf(e)) {
			return errOK
		}
		return errIntrinsic
	}
}

func (ec *errFacts) classifyCall(fn *types.Func, call *ast.CallExpr, visiting map[types.Object]bool) errStatus {
	p := ec.p
	if ec.typedError(p.TypeOf(call)) {
		return errOK // e.g. newWorkerError: returns the concrete typed error
	}
	callee := calleeFunc(p, call)
	if callee == nil {
		return errIntrinsic // func-value or builtin call: untraceable
	}
	if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" && callee.Name() == "Errorf" {
		// The %w idiom: a wrap is typed iff it carries a typed error.
		status := errIntrinsic
		for _, arg := range call.Args {
			status = bestErr(status, ec.classify(fn, arg, visiting))
		}
		return status
	}
	if callee.Pkg() == p.Pkg {
		if _, known := ec.decls[callee]; known {
			if ec.clean[callee] {
				return errOK
			}
			return errViaCallee
		}
		return errIntrinsic
	}
	return errIntrinsic
}

func bestErr(a, b errStatus) errStatus {
	if b < a {
		return b
	}
	return a
}

// typedError reports whether t is (or points to) an error type declared in
// the analyzed package — the package's own typed errors.
func (ec *errFacts) typedError(t types.Type) bool {
	if t == nil || !types.Implements(t, ec.errIface) {
		return false
	}
	base := t
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		base = ptr.Elem()
	}
	named, ok := base.(*types.Named)
	return ok && named.Obj().Pkg() == ec.p.Pkg
}

// report walks every function once more with the final summaries and
// reports the intrinsic violations: return sites and named-result
// assignments that introduce an untyped error, plus any assignment that
// poisons the fail field with one.
func (ec *errFacts) report() {
	for fn, fd := range ec.decls {
		ec.visitErrReturns(fn, fd, func(e ast.Expr, at token.Pos) {
			if ec.classify(fn, e, nil) == errIntrinsic {
				ec.p.Reportf(at,
					"untyped error crosses the clean API here; return a package sentinel, a *WorkerError, or a fmt.Errorf(...%%w, Err...) wrap — or annotate //det:ok errcontract <reason>")
			}
		})
		// The poison field: anything assigned to .fail surfaces at the API.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "fail" {
					continue
				}
				if ec.classify(fn, as.Rhs[i], nil) == errIntrinsic {
					ec.p.Reportf(as.Rhs[i].Pos(),
						"untyped error poisons the fail field; it will cross the clean API verbatim — store a sentinel, a *WorkerError, or a typed wrap, or annotate //det:ok errcontract <reason>")
				}
			}
			return true
		})
	}
}

// inspectSkipLits walks n without descending into function literals.
func inspectSkipLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}

// --- staged-mutation / undo pairing (stream.go) ---

// stageFields are the staging state of a streaming engine: the raw base
// instance and the tombstone set.
var stageFields = map[string]bool{
	"base":    true,
	"deleted": true,
}

// stageMutators are the methods that mutate a relation in place.
var stageMutators = map[string]bool{
	"Append": true,
	"Set":    true,
}

// checkUndoPairing enforces: in stream.go, a function that mutates staging
// state must carry an undo-closure result, and every return after the
// first mutation must return a non-nil closure.
func checkUndoPairing(p *Pass, f *ast.File) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		taint := stageTaint(p, fd.Body)
		first := firstStageMutation(p, taint, fd.Body)
		if first == token.NoPos {
			continue
		}
		fn, _ := p.Info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		sig := fn.Type().(*types.Signature)
		undoIdx := -1
		for i := 0; i < sig.Results().Len(); i++ {
			if _, ok := sig.Results().At(i).Type().Underlying().(*types.Signature); ok {
				undoIdx = i
				break
			}
		}
		if undoIdx < 0 {
			p.Reportf(first,
				"staged mutation of the base instance in a function with no undo-closure result; return a func() that reverts the write (failure contract: bit-unchanged on error) or annotate //det:ok errcontract <reason>")
			continue
		}
		inspectSkipLits(fd.Body, func(n ast.Node) {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || ret.Pos() < first || len(ret.Results) != sig.Results().Len() {
				return
			}
			if id, ok := ret.Results[undoIdx].(*ast.Ident); ok && id.Name == "nil" {
				p.Reportf(ret.Pos(),
					"staged mutation is not paired with an undo registration on this path; return the closure that reverts the staged write (failure contract: bit-unchanged on error) or annotate //det:ok errcontract <reason>")
			}
		})
	}
}

// stageTaint computes the locals that alias staged base content: bound
// from a chain through the base/deleted fields. Call results cut the chain
// (t.Clone() is a snapshot, not an alias).
func stageTaint(p *Pass, body ast.Node) map[types.Object]bool {
	taint := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		bind := func(lhs, rhs ast.Expr) {
			obj := identObj(p, lhs)
			if obj == nil || taint[obj] || !stageChain(p, taint, rhs) {
				return
			}
			if !refType(p.TypeOf(lhs)) {
				return
			}
			taint[obj] = true
			changed = true
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						bind(x.Lhs[i], x.Rhs[i])
					}
				}
			case *ast.RangeStmt:
				if x.Value != nil && stageChain(p, taint, x.X) {
					if obj := identObj(p, x.Value); obj != nil && !taint[obj] && refType(p.TypeOf(x.Value)) {
						taint[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return taint
}

// stageChain reports whether the expression's access chain passes through
// a staging field or a stage-tainted local.
func stageChain(p *Pass, taint map[types.Object]bool, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if stageFields[x.Sel.Name] {
				return true
			}
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			obj := identObj(p, x)
			return obj != nil && taint[obj]
		default:
			return false
		}
	}
}

// firstStageMutation returns the position of the lexically first staged
// mutation outside any function literal, or NoPos. Rebinding a staging
// field itself (e.base = clone) is construction, not staging.
func firstStageMutation(p *Pass, taint map[types.Object]bool, body ast.Node) token.Pos {
	first := token.NoPos
	note := func(pos token.Pos) {
		if first == token.NoPos || pos < first {
			first = pos
		}
	}
	stageWrite := func(lhs ast.Expr) bool {
		if sel, ok := lhs.(*ast.SelectorExpr); ok && stageFields[sel.Sel.Name] {
			return false // rebinding the field itself
		}
		if _, ok := lhs.(*ast.Ident); ok {
			return false // rebinding a local
		}
		return stageChain(p, taint, lhs)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if stageWrite(lhs) {
					note(lhs.Pos())
				}
			}
		case *ast.IncDecStmt:
			if stageWrite(x.X) {
				note(x.Pos())
			}
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "delete" && len(x.Args) == 2 && stageChain(p, taint, x.Args[0]) {
					note(x.Pos())
				}
			case *ast.SelectorExpr:
				if stageMutators[fun.Sel.Name] && stageChain(p, taint, fun.X) {
					note(x.Pos())
				}
			}
		}
		return true
	})
	return first
}
