package lint

// All returns the analyzer suite in reporting order: every determinism,
// concurrency and robustness invariant the engine's guarantees rest on, as a
// checked property. SinkWrite is the alias-aware v2; the lexical v1
// (SinkWriteLexical) is kept only as the regression baseline for the
// laundering fixture. DetOkStale is a pseudo-analyzer: its findings are
// computed by RunAll from the suppression table after the suite has run.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder, PoolOnly, SinkWrite, FloatEq, PanicFree,
		CtxFlow, ErrContract, DetOkStale,
	}
}
