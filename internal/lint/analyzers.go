package lint

// All returns the analyzer suite in reporting order: every determinism,
// concurrency and robustness invariant the engine's guarantees rest on, as a
// checked property.
func All() []*Analyzer {
	return []*Analyzer{MapOrder, PoolOnly, SinkWrite, FloatEq, PanicFree}
}
