package lint

// All returns the analyzer suite in reporting order: every determinism and
// concurrency invariant the engine's identity guarantee rests on, as a
// checked property.
func All() []*Analyzer {
	return []*Analyzer{MapOrder, PoolOnly, SinkWrite, FloatEq}
}
