// Light intraprocedural dataflow over go/types: local def-use and alias
// tracking for the v2 analyzers. The model is deliberately small — no SSA,
// no x/tools — and errs on the conservative side everywhere a suppression
// with a written reason can pick up the slack:
//
//   - funcScope computes, per top-level function, the function literals
//     bound to local identifiers and a flow-insensitive taint set of the
//     locals that alias shared engine state. Flow-insensitive means a local
//     tainted anywhere in the function is tainted everywhere in it; taint is
//     a fixpoint, so local-to-local copies propagate.
//   - workerBodies extends the lexical worker-scope discovery with two
//     dataflow facts: a literal bound to a local and later handed to a pool
//     entry point is worker-scoped, and a literal invoked from a
//     worker-scoped body runs on the worker too.
//
// Taint deliberately stops at three sanctioned boundaries: call results
// (the applier sink routes — ap.stat(ri) — return shared pointers on
// purpose), owned tuple bindings (t := ap.e.data.Tuples[i] is how item
// ownership is made visible), and non-reference values (a copied struct or
// scalar cannot mutate the structure it was read from).
package lint

import (
	"go/ast"
	"go/types"
)

// ownedTypes are the item-owned cell types: binding one of these from the
// engine chain is the sanctioned ownership idiom, so the binding is not an
// alias of shared state. Matched by type name in any package so fixtures
// can declare doubles.
var ownedTypes = map[string]bool{
	"Tuple": true,
	"tuple": true,
}

// funcScope is the dataflow view of one top-level function declaration.
type funcScope struct {
	lits  map[types.Object]*ast.FuncLit // local x := func(...){...} bindings
	taint map[types.Object]string       // local -> shared type it aliases
}

// analyzeFunc computes the literal bindings and the shared-alias taint of
// one function body to a fixpoint. The scope covers the entire declaration
// including nested literals, so a closure capturing a tainted local of its
// enclosing function sees the taint.
func analyzeFunc(p *Pass, body ast.Node) *funcScope {
	sc := &funcScope{
		lits:  make(map[types.Object]*ast.FuncLit),
		taint: make(map[types.Object]string),
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true // multi-value call/comma-ok: results are untainted
				}
				for i := range x.Lhs {
					if sc.bind(p, x.Lhs[i], x.Rhs[i]) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(x.Names) != len(x.Values) {
					return true
				}
				for i := range x.Names {
					if sc.bind(p, x.Names[i], x.Values[i]) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				// Ranging over a shared container aliases its elements.
				if x.Value != nil {
					if sc.bindFrom(p, x.Value, aliasSource(p, sc.taint, x.X), x.Value) {
						changed = true
					}
				}
			}
			return true
		})
	}
	return sc
}

// bind records lhs := rhs: a literal binding feeds worker-scope discovery,
// a shared-alias binding feeds the taint set. Reports whether it learned
// anything new.
func (sc *funcScope) bind(p *Pass, lhs, rhs ast.Expr) bool {
	if lit, ok := rhs.(*ast.FuncLit); ok {
		if obj := identObj(p, lhs); obj != nil && sc.lits[obj] == nil {
			sc.lits[obj] = lit
			return true
		}
		return false
	}
	return sc.bindFrom(p, lhs, aliasSource(p, sc.taint, rhs), rhs)
}

// bindFrom taints lhs with the shared-type name src when the bound value is
// a mutation-capable reference; typed is the expression whose static type
// decides that.
func (sc *funcScope) bindFrom(p *Pass, lhs ast.Expr, src string, typed ast.Expr) bool {
	if src == "" {
		return false
	}
	obj := identObj(p, lhs)
	if obj == nil || sc.taint[obj] != "" {
		return false
	}
	if !refType(p.TypeOf(typed)) {
		return false
	}
	sc.taint[obj] = src
	return true
}

// aliasSource returns the name of the shared type an expression aliases, or
// "" when it does not alias shared state. The walk mirrors sharedBase but
// additionally resolves a base identifier through the taint set, and it
// applies the two sanctioned cuts: call results and owned tuple bindings.
func aliasSource(p *Pass, taint map[types.Object]string, e ast.Expr) string {
	if ownedType(p.TypeOf(e)) {
		return ""
	}
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if name := sharedTypeName(p, p.TypeOf(x)); name != "" {
				return name
			}
			if obj := identObj(p, x); obj != nil {
				return taint[obj]
			}
			return ""
		default:
			// Call results, literals, conversions: sanctioned or harmless.
			return ""
		}
		if name := sharedTypeName(p, p.TypeOf(e)); name != "" {
			return name
		}
	}
}

// sharedWriteBase walks the chain of an assignment target and returns the
// shared-type name the chain passes through, with viaAlias set when the
// chain reaches shared state only through a tainted local — the laundering
// case the lexical v1 check cannot see. A bare identifier target is never a
// shared write: rebinding a local mutates nothing.
func sharedWriteBase(p *Pass, taint map[types.Object]string, e ast.Expr) (name string, viaAlias bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return "", false
		}
		if name := sharedTypeName(p, p.TypeOf(e)); name != "" {
			return name, false
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := identObj(p, id); obj != nil && taint[obj] != "" {
				return taint[obj], true
			}
			return "", false
		}
	}
}

// workerBodies collects the worker-scoped bodies lexically reachable from
// root — `go` statement literals and literal arguments to the pool entry
// points, as in v1 — plus the two dataflow extensions: local identifiers
// bound to a literal and passed to a pool entry point, and literals invoked
// (directly or transitively) from an already worker-scoped body.
func workerBodies(p *Pass, root ast.Node, lits map[types.Object]*ast.FuncLit) []*ast.BlockStmt {
	seen := make(map[*ast.BlockStmt]bool)
	var order []*ast.BlockStmt
	add := func(b *ast.BlockStmt) {
		if b != nil && !seen[b] {
			seen[b] = true
			order = append(order, b)
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				add(lit.Body)
			}
		case *ast.CallExpr:
			if workerScopeCalls[calleeName(x)] {
				for _, arg := range x.Args {
					switch a := arg.(type) {
					case *ast.FuncLit:
						add(a.Body)
					case *ast.Ident:
						if obj := identObj(p, a); obj != nil {
							if lit := lits[obj]; lit != nil {
								add(lit.Body)
							}
						}
					}
				}
			}
		}
		return true
	})
	// Fixpoint: a literal called from a worker body runs on the worker.
	for i := 0; i < len(order); i++ {
		ast.Inspect(order[i], func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if obj := identObj(p, id); obj != nil {
					if lit := lits[obj]; lit != nil {
						add(lit.Body)
					}
				}
			}
			return true
		})
	}
	return order
}

// pruneNested drops every body enclosed by another body in the set, so a
// recursive inspection of the survivors visits each statement exactly once.
func pruneNested(bodies []*ast.BlockStmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, b := range bodies {
		nested := false
		for _, outer := range bodies {
			if outer != b && outer.Pos() <= b.Pos() && b.End() <= outer.End() {
				nested = true
				break
			}
		}
		if !nested {
			out = append(out, b)
		}
	}
	return out
}

// identObj resolves an identifier expression to its object, or nil.
func identObj(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// refType reports whether t is a mutation-capable reference: a write
// through a value of such a type can reach the structure it was read from.
func refType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// ownedType reports whether t (directly or one pointer away) is an
// item-owned cell type.
func ownedType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && ownedTypes[named.Obj().Name()]
}
