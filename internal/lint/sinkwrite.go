package lint

import (
	"go/ast"
	"go/types"
)

// sharedTypes names the engine-shared structures of repro/internal/clean: a
// worker writing through any of them races the other workers and — worse —
// makes the output depend on goroutine scheduling. All worker effects must
// instead be recorded through the applier sink (assert/fix/hfix/conflictf/
// spend, ap.stat for counters) and committed by the deterministic merge.
// The names are matched against types declared in the analyzed package, so
// fixtures can declare their own.
var sharedTypes = map[string]bool{
	"Engine":     true,
	"Result":     true,
	"Report":     true,
	"Checker":    true,
	"scheduler":  true,
	"groupIndex": true,
	"dirtySet":   true,
	"symtab":     true,
	"pool":       true,
}

// workerScopeCalls are the functions whose function-literal arguments run on
// pool workers, making those literals worker-scoped alongside *applier
// methods and `go` statement bodies.
var workerScopeCalls = map[string]bool{
	"runParallel": true,
	"fanOut":      true,
	"applyTuples": true,
	"applyGroups": true,
}

// SinkWriteLexical is the v1 sinkwrite check: purely lexical over the
// selector chain of each assignment target inside the lexically discovered
// worker scopes. It is no longer registered in All() — SinkWrite (v2, in
// sinkwrite2.go) subsumes it with alias tracking — but it is kept exported
// as the regression baseline: the sinkwritev2 fixture proves that v1 misses
// the laundering counterexample (s := ap.e.apply[ri]; s.CTuples++) that v2
// catches, so the gap this upgrade closed stays demonstrable.
var SinkWriteLexical = &Analyzer{
	Name:      "sinkwrite",
	Doc:       "write to shared engine state from worker-scoped code (lexical v1)",
	AppliesTo: func(path string) bool { return path == "repro/internal/clean" },
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, body := range workerScopedBodies(f) {
				checkSinkWrites(p, body)
			}
		}
	},
}

// workerScopedBodies collects the function bodies of f that run on pool
// workers: methods with an applier receiver, `go` statement literals, and
// literal arguments to the pool entry points. Nested literals are covered
// implicitly — the caller inspects each body recursively.
func workerScopedBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Recv != nil && x.Body != nil && receiverName(x) == "applier" {
				bodies = append(bodies, x.Body)
			}
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				bodies = append(bodies, lit.Body)
			}
		case *ast.CallExpr:
			if workerScopeCalls[calleeName(x)] {
				for _, arg := range x.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						bodies = append(bodies, lit.Body)
					}
				}
			}
		}
		return true
	})
	return bodies
}

func receiverName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (IndexExpr) don't occur here; an Ident is the base.
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.IndexExpr:
		return calleeName(&ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr:
		return calleeName(&ast.CallExpr{Fun: fun.X})
	}
	return ""
}

// checkSinkWrites reports every assignment or inc/dec inside body whose
// target chain passes through a shared-typed value.
func checkSinkWrites(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if base := sharedBase(p, lhs); base != "" {
					p.Reportf(lhs.Pos(),
						"write through shared %s from worker-scoped code escapes the propose/commit sink; record the effect through the applier (assert/fix/hfix/conflictf/spend, ap.stat) or annotate //det:ok sinkwrite <reason>",
						base)
				}
			}
		case *ast.IncDecStmt:
			if base := sharedBase(p, x.X); base != "" {
				p.Reportf(x.X.Pos(),
					"write through shared %s from worker-scoped code escapes the propose/commit sink; record the effect through the applier (assert/fix/hfix/conflictf/spend, ap.stat) or annotate //det:ok sinkwrite <reason>",
					base)
			}
		}
		return true
	})
}

// sharedBase walks the selector/index chain of an assignment target and
// returns the name of the first shared type the chain passes through, or ""
// when the write never touches shared state. A bare identifier target is
// never a shared write — rebinding a local alias mutates nothing.
func sharedBase(p *Pass, e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return ""
		}
		if name := sharedTypeName(p, p.TypeOf(e)); name != "" {
			return name
		}
	}
}

// sharedTypeName returns the shared-type name behind t (directly or one
// pointer away) when t is declared in the analyzed package, else "".
func sharedTypeName(p *Pass, t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() != p.Pkg || !sharedTypes[obj.Name()] {
		return ""
	}
	return obj.Name()
}
