package lint

import (
	"strings"
	"testing"
)

// FuzzDetOkGrammar hammers the suppression-annotation parser with arbitrary
// comment text. The parser is the security boundary of the whole suite — a
// comment it misparses either silences a diagnostic for free or invents a
// suppression that never existed — so the contract is pinned exactly:
//
//   - it never panics;
//   - it accepts exactly the comments where "//det:ok" is followed by a
//     space, a tab, or nothing ("//det:okay ..." is prose, not a
//     suppression of an analyzer named "ay" — the bug this fuzzer was
//     written against);
//   - a rejected comment yields zero-value fields, so no downstream code
//     can act on a half-parsed annotation;
//   - an accepted comment splits into fields exactly like strings.Fields:
//     the analyzer is the first field (whitespace-free by construction),
//     the reason is the rest joined by single spaces.
func FuzzDetOkGrammar(f *testing.F) {
	for _, seed := range []string{
		"//det:ok sinkwrite verified by inspection",
		"//det:ok maporder",
		"//det:ok",
		"//det:ok ",
		"//det:ok\tctxflow tab-separated reason",
		"//det:ok  errcontract   extra   spacing  ",
		"//det:okay prose that merely starts the same way",
		"//det:okpoolonly no separator",
		"// det:ok spaced out, not a machine comment",
		"//nolint:all",
		"/* det:ok block */",
		"//det:ok errcontract reason with \"quotes\" and // slashes",
		"//det:ok floateq non-breaking space is not a separator",
		"//det:ok\vdetok vertical tab is not a separator",
		"//",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, ok := parseAnnotation(text)
		rest, hasPrefix := strings.CutPrefix(text, "//det:ok")
		wantOK := hasPrefix && (rest == "" || rest[0] == ' ' || rest[0] == '\t')
		if ok != wantOK {
			t.Fatalf("parseAnnotation(%q) ok = %v, want %v", text, ok, wantOK)
		}
		if !ok {
			if analyzer != "" || reason != "" {
				t.Fatalf("parseAnnotation(%q) rejected but leaked fields %q, %q", text, analyzer, reason)
			}
			return
		}
		fields := strings.Fields(rest)
		wantAnalyzer, wantReason := "", ""
		if len(fields) > 0 {
			wantAnalyzer = fields[0]
		}
		if len(fields) > 1 {
			wantReason = strings.Join(fields[1:], " ")
		}
		if analyzer != wantAnalyzer || reason != wantReason {
			t.Fatalf("parseAnnotation(%q) = %q, %q; want %q, %q", text, analyzer, reason, wantAnalyzer, wantReason)
		}
		if strings.IndexFunc(analyzer, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '\r' }) >= 0 {
			t.Fatalf("parseAnnotation(%q) produced analyzer %q containing whitespace", text, analyzer)
		}
	})
}
