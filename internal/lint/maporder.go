package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the packages whose output feeds the byte-identity
// guarantee: everything they emit — Fixes order, Report violations, conflict
// lists, bench counters — must be reproducible run to run and identical
// across the rescan, sequential-incremental and parallel engines. Iterating
// a Go map inside them is exactly the bug class that bit PR 3 (groupEntropy
// summed in map order, flipping AVL entropy ties) and that PR 4 had to audit
// by hand (takeKeys).
var deterministicPkgs = map[string]bool{
	"repro/internal/clean": true,
	"repro/internal/cfd":   true,
	"repro/internal/md":    true,
	"repro/internal/rule":  true,
}

func inDeterministicPkgs(path string) bool { return deterministicPkgs[path] }

// MapOrder flags `for … range` over map-typed values in the
// deterministic-output packages. Go randomizes map iteration order per run,
// so any such loop that feeds ordered output (a slice that is not
// subsequently sorted, a float accumulation, an emitted line) breaks the
// engine identity guarantee. Loops that are provably order-independent must
// say why: //det:ok maporder <reason>.
var MapOrder = &Analyzer{
	Name:      "maporder",
	Doc:       "range over a map in a deterministic-output package",
	AppliesTo: inDeterministicPkgs,
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					p.Reportf(rng.For,
						"iteration over map (%s) has nondeterministic order; sort the keys or annotate //det:ok maporder <reason>",
						types.TypeString(t, types.RelativeTo(p.Pkg)))
				}
				return true
			})
		}
	},
}
