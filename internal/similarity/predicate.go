package similarity

import "fmt"

// Predicate is a similarity predicate from the set Υ of Section 2.2: a named
// binary test on attribute values. Equality is the special predicate used
// when an MD premise requires exact agreement.
type Predicate struct {
	// Name identifies the predicate for display and rule parsing, e.g.
	// "=", "edit<=2", "jw>=0.9".
	Name string
	// Exact reports that the predicate is plain equality. Cleaning rules
	// use this to decide whether a premise attribute contributes its
	// confidence to a fix (Section 3.1: d is the minimum t[Aj].cf for all
	// j with ≈j being '=').
	Exact bool
	// Match tests the predicate. Following the SQL-style semantics of
	// Section 7, a null on either side never matches.
	match func(a, b string) bool
	// edit/editK record that the predicate is "edit distance <= editK",
	// which admits the LCS blocking bound of Section 5.2.
	edit  bool
	editK int
}

// EditThreshold returns (k, true) when the predicate is "edit distance at
// most k". Such predicates admit suffix-tree LCS blocking (Section 5.2):
// edit(a, b) <= k implies LCSubstring(a, b) >= floor(|b|/(k+1)), since at
// least one of b's k+1 contiguous pieces survives all k edits unchanged.
func (p Predicate) EditThreshold() (int, bool) { return p.editK, p.edit }

// Match reports whether the predicate holds on (a, b). Null never matches.
func (p Predicate) Match(a, b string) bool {
	if a == "" || b == "" {
		return false
	}
	return p.match(a, b)
}

// String returns the predicate name.
func (p Predicate) String() string { return p.Name }

// Equal returns the equality predicate.
func Equal() Predicate {
	return Predicate{Name: "=", Exact: true, match: func(a, b string) bool { return a == b }}
}

// EditWithin returns the predicate "edit distance at most k".
func EditWithin(k int) Predicate {
	return Predicate{
		Name:  fmt.Sprintf("edit<=%d", k),
		match: func(a, b string) bool { return Within(a, b, k) },
		edit:  true,
		editK: k,
	}
}

// JaroWinklerAtLeast returns the predicate "Jaro-Winkler similarity >= th".
func JaroWinklerAtLeast(th float64) Predicate {
	return Predicate{
		Name:  fmt.Sprintf("jw>=%g", th),
		match: func(a, b string) bool { return JaroWinkler(a, b) >= th },
	}
}

// JaccardAtLeast returns the predicate "q-gram Jaccard similarity >= th".
func JaccardAtLeast(q int, th float64) Predicate {
	return Predicate{
		Name:  fmt.Sprintf("jaccard%d>=%g", q, th),
		match: func(a, b string) bool { return Jaccard(a, b, q) >= th },
	}
}
