// Package similarity implements the string similarity predicates used by
// matching dependencies (Section 2.2 of the paper) and the normalized
// distance used by the repair cost model (Section 3.1): edit distance, Jaro
// and Jaro-Winkler similarity, q-gram Jaccard similarity, and longest common
// substring length.
package similarity

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-character insertions, deletions and substitutions converting a
// into b. It operates on bytes, which is exact for the ASCII data used in
// the experiments.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Within reports whether the edit distance between a and b is at most k,
// using a banded dynamic program that runs in O(k*min(|a|,|b|)) time. It is
// the workhorse of MD similarity checking.
func Within(a, b string, k int) bool {
	if k < 0 {
		return false
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b)-len(a) > k {
		return false
	}
	if a == b {
		return true
	}
	// Band of width 2k+1 around the diagonal.
	const inf = 1 << 30
	width := 2*k + 1
	prev := make([]int, width)
	cur := make([]int, width)
	// prev[d] holds the cost at column j = i + (d - k) for the current row i.
	for d := 0; d < width; d++ {
		j := d - k
		if j >= 0 && j <= len(b) {
			prev[d] = j
		} else {
			prev[d] = inf
		}
	}
	for i := 1; i <= len(a); i++ {
		for d := 0; d < width; d++ {
			j := i + d - k
			if j < 0 || j > len(b) {
				cur[d] = inf
				continue
			}
			if j == 0 {
				cur[d] = i
				continue
			}
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := inf
			if prev[d] != inf { // diagonal: (i-1, j-1)
				best = prev[d] + cost
			}
			if d > 0 && cur[d-1] != inf && cur[d-1]+1 < best { // left: (i, j-1)
				best = cur[d-1] + 1
			}
			if d < width-1 && prev[d+1] != inf && prev[d+1]+1 < best { // up: (i-1, j)
				best = prev[d+1] + 1
			}
			cur[d] = best
		}
		prev, cur = cur, prev
	}
	d := len(b) - len(a) + k
	return d >= 0 && d < width && prev[d] <= k
}

// NormalizedDistance returns dis(a,b)/max(|a|,|b|), the quantity used by the
// cost model of Section 3.1. It is 0 for equal strings and at most 1.
func NormalizedDistance(a, b string) float64 {
	if a == b {
		return 0
	}
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	if m == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(m)
}

// Jaro returns the Jaro similarity of a and b in [0,1].
func Jaro(a, b string) float64 {
	if a == b {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	window := len(a)
	if len(b) > window {
		window = len(b)
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	aMatch := make([]bool, len(a))
	bMatch := make([]bool, len(b))
	matches := 0
	for i := 0; i < len(a); i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(b) {
			hi = len(b)
		}
		for j := lo; j < hi; j++ {
			if !bMatch[j] && a[i] == b[j] {
				aMatch[i], bMatch[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < len(a); i++ {
		if !aMatch[i] {
			continue
		}
		for !bMatch[j] {
			j++
		}
		if a[i] != b[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(len(a)) + m/float64(len(b)) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard prefix
// scale of 0.1 and prefix length capped at 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// QGrams returns the multiset of q-grams of s as a count map. Strings
// shorter than q yield a single gram equal to the whole string.
func QGrams(s string, q int) map[string]int {
	out := make(map[string]int)
	if len(s) < q {
		if len(s) > 0 {
			out[s] = 1
		}
		return out
	}
	for i := 0; i+q <= len(s); i++ {
		out[s[i:i+q]]++
	}
	return out
}

// Jaccard returns the Jaccard similarity of the q-gram sets of a and b.
func Jaccard(a, b string, q int) float64 {
	ga, gb := QGrams(a, q), QGrams(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	inter := 0
	for g := range ga {
		if _, ok := gb[g]; ok {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// LCSubstring returns the length of the longest common substring
// (contiguous) of a and b. Blocking in Section 5.2 relies on the fact that
// edit distance within K implies LCSubstring >= max(|a|,|b|)/(K+1).
func LCSubstring(a, b string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	best := 0
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
