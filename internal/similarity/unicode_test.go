package similarity

import "testing"

// TestWithinUnicodeAndEmpty pins the byte-level semantics of the banded
// edit-distance check on multi-byte and empty inputs: the package operates
// on bytes, so one accented character is two edits away from its ASCII
// counterpart, and two code points sharing a UTF-8 lead byte are closer
// than their rune distance suggests.
func TestWithinUnicodeAndEmpty(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		k    int
		want bool
	}{
		{"both empty, k=0", "", "", 0, true},
		{"both empty, negative k", "", "", -1, false},
		{"empty vs ascii, k too small", "", "ab", 1, false},
		{"empty vs ascii, k exact", "", "ab", 2, true},
		{"empty vs multibyte rune", "", "é", 1, false}, // é is 2 bytes
		{"empty vs multibyte rune, byte length", "", "é", 2, true},
		{"accent is two byte edits", "café", "cafe", 1, false},
		{"accent is two byte edits, k=2", "café", "cafe", 2, true},
		{"equal unicode", "日本語", "日本語", 0, true},
		{"greek letters share lead byte", "α", "β", 1, true}, // 0xCE 0xB1 vs 0xCE 0xB2
		{"emoji differ in last byte", "😀", "😁", 1, true},
		{"emoji vs ascii", "😀", "a", 3, false},
		{"emoji vs ascii, byte length", "😀", "a", 4, true},
		{"multibyte swap", "αβ", "βα", 2, true}, // shared 0xCE bytes: two substitutions
		{"null byte is a byte", "a\x00b", "ab", 1, true},
	}
	for _, tc := range tests {
		if got := Within(tc.a, tc.b, tc.k); got != tc.want {
			t.Errorf("%s: Within(%q, %q, %d) = %v, want %v", tc.name, tc.a, tc.b, tc.k, got, tc.want)
		}
		if got := Within(tc.b, tc.a, tc.k); got != tc.want {
			t.Errorf("%s: Within is not symmetric on (%q, %q, %d)", tc.name, tc.a, tc.b, tc.k)
		}
	}
}

// TestWithinAgreesWithLevenshteinOnUnicode cross-checks the banded check
// against the full dynamic program over unicode-heavy pairs for every small
// threshold.
func TestWithinAgreesWithLevenshteinOnUnicode(t *testing.T) {
	words := []string{"", "a", "é", "ée", "café", "cafe", "caffè", "αβγ", "βγδ",
		"日本語", "日本", "😀😁", "😀", "naïve", "naive", "naïve"}
	for _, a := range words {
		for _, b := range words {
			d := Levenshtein(a, b)
			for k := 0; k <= 6; k++ {
				if got, want := Within(a, b, k), d <= k; got != want {
					t.Errorf("Within(%q, %q, %d) = %v, want %v (Levenshtein = %d)",
						a, b, k, got, want, d)
				}
			}
		}
	}
}

// TestLCSubstringUnicodeAndEmpty pins LCSubstring's byte semantics on the
// same kinds of inputs; the suffix-tree blocking bound builds on it.
func TestLCSubstringUnicodeAndEmpty(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 0},
		{"abc", "", 0},
		{"αβγ", "βγδ", 4},   // common bytes 0xCE 0xB2 0xCE 0xB3
		{"αβ", "βγδ", 2},    // common bytes 0xCE 0xB2
		{"α", "δ", 1},       // shared UTF-8 lead byte 0xCE
		{"café", "cafe", 3}, // "caf"
		{"日本語", "語日本", 6},   // "日本" is 6 bytes
		{"😀", "😁", 3},       // emoji share a 3-byte prefix
	}
	for _, tc := range tests {
		if got := LCSubstring(tc.a, tc.b); got != tc.want {
			t.Errorf("LCSubstring(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := LCSubstring(tc.b, tc.a); got != tc.want {
			t.Errorf("LCSubstring(%q, %q) = %d, want %d (asymmetric)", tc.b, tc.a, got, tc.want)
		}
	}
}
