package similarity

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"Bob", "Robert", 4},
		{"3887834", "3887644", 2},
		{"Edi", "Ldn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 60 {
			a = a[:60]
		}
		if len(b) > 60 {
			b = b[:60]
		}
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		if len(c) > 30 {
			c = c[:30]
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithinAgreesWithLevenshtein(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alpha := "abcde"
	randStr := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		return b.String()
	}
	for i := 0; i < 500; i++ {
		a := randStr(rng.Intn(12))
		b := randStr(rng.Intn(12))
		d := Levenshtein(a, b)
		for k := 0; k <= 6; k++ {
			if got := Within(a, b, k); got != (d <= k) {
				t.Fatalf("Within(%q,%q,%d) = %v, Levenshtein = %d", a, b, k, got, d)
			}
		}
	}
}

func TestWithinNegativeK(t *testing.T) {
	if Within("a", "a", -1) {
		t.Error("Within with k<0 must be false")
	}
}

func TestNormalizedDistance(t *testing.T) {
	if got := NormalizedDistance("abc", "abc"); got != 0 {
		t.Errorf("equal strings: %g", got)
	}
	if got := NormalizedDistance("", ""); got != 0 {
		t.Errorf("empty strings: %g", got)
	}
	if got := NormalizedDistance("abcd", ""); got != 1 {
		t.Errorf("vs empty: %g", got)
	}
	// 1-char difference on longer strings is closer than on shorter ones
	// (the paper's motivation for the normalization).
	long := NormalizedDistance("abcdefghij", "abcdefghix")
	short := NormalizedDistance("ab", "ax")
	if long >= short {
		t.Errorf("long %g should be < short %g", long, short)
	}
}

func TestJaroKnownValues(t *testing.T) {
	// Classical textbook values.
	if got := Jaro("MARTHA", "MARHTA"); !close(got, 0.944444, 1e-4) {
		t.Errorf("Jaro(MARTHA,MARHTA) = %g", got)
	}
	if got := Jaro("DIXON", "DICKSONX"); !close(got, 0.766667, 1e-4) {
		t.Errorf("Jaro(DIXON,DICKSONX) = %g", got)
	}
	if got := Jaro("", "x"); got != 0 {
		t.Errorf("Jaro empty = %g", got)
	}
	if got := Jaro("same", "same"); got != 1 {
		t.Errorf("Jaro same = %g", got)
	}
	if got := Jaro("ab", "xy"); got != 0 {
		t.Errorf("Jaro disjoint = %g", got)
	}
}

func TestJaroWinklerPrefixBoost(t *testing.T) {
	if got := JaroWinkler("MARTHA", "MARHTA"); !close(got, 0.961111, 1e-4) {
		t.Errorf("JaroWinkler = %g", got)
	}
	if JaroWinkler("prefix_abc", "prefix_xyz") <= Jaro("prefix_abc", "prefix_xyz") {
		t.Error("Winkler boost missing for shared prefix")
	}
}

func TestJaroRange(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		j := Jaro(a, b)
		jw := JaroWinkler(a, b)
		return j >= 0 && j <= 1 && jw >= j && jw <= 1.000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQGrams(t *testing.T) {
	g := QGrams("abab", 2)
	if g["ab"] != 2 || g["ba"] != 1 || len(g) != 2 {
		t.Errorf("QGrams(abab,2) = %v", g)
	}
	if g := QGrams("a", 2); g["a"] != 1 {
		t.Errorf("short string grams = %v", g)
	}
	if g := QGrams("", 2); len(g) != 0 {
		t.Errorf("empty string grams = %v", g)
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard("abc", "abc", 2); got != 1 {
		t.Errorf("identical = %g", got)
	}
	if got := Jaccard("abc", "xyz", 2); got != 0 {
		t.Errorf("disjoint = %g", got)
	}
	if got := Jaccard("", "", 2); got != 1 {
		t.Errorf("both empty = %g", got)
	}
}

func TestLCSubstring(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 0},
		{"abcdef", "zabcy", 3},
		{"same", "same", 4},
		{"xyabcz", "pqabcr", 3},
		{"a", "b", 0},
	}
	for _, c := range cases {
		if got := LCSubstring(c.a, c.b); got != c.want {
			t.Errorf("LCSubstring(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBlockingBound(t *testing.T) {
	// If edit distance <= K then LCSubstring >= floor(max(|a|,|b|)/(K+1)):
	// partition the longer string into K+1 segments; K edits leave at least
	// one untouched (the blocking bound of Section 5.2). Verify on random
	// data.
	rng := rand.New(rand.NewSource(7))
	alpha := "abcdef"
	randStr := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		return b.String()
	}
	for i := 0; i < 300; i++ {
		a := randStr(4 + rng.Intn(12))
		b := randStr(4 + rng.Intn(12))
		k := Levenshtein(a, b)
		m := len(a)
		if len(b) > m {
			m = len(b)
		}
		if lcs := LCSubstring(a, b); lcs < m/(k+1) {
			t.Fatalf("bound violated: a=%q b=%q k=%d lcs=%d", a, b, k, lcs)
		}
	}
}

func TestPredicates(t *testing.T) {
	eq := Equal()
	if !eq.Exact || !eq.Match("x", "x") || eq.Match("x", "y") {
		t.Error("Equal predicate broken")
	}
	if eq.Match("", "") {
		t.Error("null must never match")
	}
	ed := EditWithin(2)
	if ed.Exact {
		t.Error("EditWithin must not be Exact")
	}
	if !ed.Match("Bob", "Rob") || ed.Match("Bob", "Robert") {
		t.Error("EditWithin(2) misbehaves")
	}
	jw := JaroWinklerAtLeast(0.85)
	if !jw.Match("Mark", "Marc") || jw.Match("Mark", "Quentin") {
		t.Error("JaroWinklerAtLeast misbehaves")
	}
	jc := JaccardAtLeast(2, 0.5)
	if !jc.Match("abcdef", "abcdef") || jc.Match("abcdef", "uvwxyz") {
		t.Error("JaccardAtLeast misbehaves")
	}
	if got := ed.String(); got != "edit<=2" {
		t.Errorf("name = %q", got)
	}
}

func close(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}
