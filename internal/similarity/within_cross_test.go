package similarity

import (
	"math/rand"
	"testing"
)

// TestWithinCrossCheckRandom cross-checks the banded Within against the full
// Levenshtein DP on random short strings over a small alphabet, for every
// k in 0..4. The small alphabet forces frequent partial matches, repeated
// characters and near-miss band boundaries, so the banded DP cannot silently
// drift from the reference implementation when it gets optimized later.
func TestWithinCrossCheckRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20110711)) // deterministic
	const alphabet = "abc "
	randString := func() string {
		n := rng.Intn(9) // 0..8
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	for i := 0; i < 5000; i++ {
		a, b := randString(), randString()
		d := Levenshtein(a, b)
		for k := 0; k <= 4; k++ {
			if got, want := Within(a, b, k), d <= k; got != want {
				t.Fatalf("Within(%q, %q, %d) = %v, want %v (Levenshtein = %d)",
					a, b, k, got, want, d)
			}
		}
	}
}
