// Command checklinks verifies that the relative links in the given Markdown
// files resolve to existing files or directories. CI runs it over README.md
// and docs/ so the architecture book cannot silently rot as files move.
//
// Usage:
//
//	go run ./internal/tools/checklinks README.md docs/*.md
//
// Only inline links ([text](target)) are checked. External targets (a URL
// scheme or a protocol-relative //host), pure in-page anchors (#...) and
// mailto: links are skipped; a #fragment on a relative target is stripped
// before the existence check. Exit status 1 lists every broken link.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline Markdown links, ignoring images (![alt](src) is
// matched too — image targets must resolve just the same).
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checklinks file.md [file.md ...]")
		os.Exit(1)
	}
	broken := 0
	for _, path := range os.Args[1:] {
		buf, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checklinks: %v\n", err)
			broken++
			continue
		}
		dir := filepath.Dir(path)
		for _, m := range linkRe.FindAllStringSubmatch(string(buf), -1) {
			target := m[1]
			if skip(target) {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				fmt.Fprintf(os.Stderr, "checklinks: %s: broken link %q\n", path, m[1])
				broken++
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "checklinks: %d broken links\n", broken)
		os.Exit(1)
	}
}

// skip reports whether the link target points outside the repository.
func skip(target string) bool {
	if strings.HasPrefix(target, "#") || strings.HasPrefix(target, "//") {
		return true
	}
	// A URL scheme (http:, https:, mailto:, ...) before any path separator.
	if i := strings.IndexByte(target, ':'); i >= 0 && !strings.ContainsAny(target[:i], "/.") {
		return true
	}
	return false
}
