package rule

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cfd"
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/similarity"
)

// ParseRules parses a rules file into CFDs and MDs. The line-oriented format
// is:
//
//	# comment
//	cfd AC=131, city=_ -> city=Edi
//	cfd city, phn -> St, AC, post
//	md LN=LN, city=city, St=St, post=zip, FN~FN(edit<=2) -> FN=FN, phn=tel
//
// CFD items are "attr" or "attr=value"; a bare attr (or value "_") is the
// unnamed variable. MD premise items are "dataAttr=masterAttr" for equality
// or "dataAttr~masterAttr(pred)" with pred one of edit<=K, jw>=X,
// jaccardQ>=X. Multi-attribute right-hand sides are normalized.
func ParseRules(data, master *relation.Schema, text string) ([]*cfd.CFD, []*md.MD, error) {
	var cfds []*cfd.CFD
	var mds []*md.MD
	nCFD, nMD := 0, 0
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kind, rest, ok := strings.Cut(line, " ")
		if !ok {
			return nil, nil, fmt.Errorf("line %d: missing rule body", ln+1)
		}
		lhs, rhs, ok := strings.Cut(rest, "->")
		if !ok {
			return nil, nil, fmt.Errorf("line %d: missing '->'", ln+1)
		}
		switch kind {
		case "cfd":
			nCFD++
			c, err := parseCFD(fmt.Sprintf("cfd%d", nCFD), data, lhs, rhs)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			cfds = append(cfds, c...)
		case "md":
			nMD++
			if master == nil {
				return nil, nil, fmt.Errorf("line %d: md rule but no master schema", ln+1)
			}
			m, err := parseMD(fmt.Sprintf("md%d", nMD), data, master, lhs, rhs)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			mds = append(mds, m.Normalize()...)
		default:
			return nil, nil, fmt.Errorf("line %d: unknown rule kind %q", ln+1, kind)
		}
	}
	return cfds, mds, nil
}

func parseCFD(name string, schema *relation.Schema, lhs, rhs string) ([]*cfd.CFD, error) {
	raw := cfd.Raw{Name: name, Schema: schema}
	for _, item := range splitItems(lhs) {
		attr, pat := splitAttrValue(item)
		if schema.Index(attr) < 0 {
			return nil, fmt.Errorf("unknown attribute %q", attr)
		}
		raw.LHS = append(raw.LHS, attr)
		raw.LHSPattern = append(raw.LHSPattern, pat)
	}
	if len(raw.LHS) == 0 {
		return nil, fmt.Errorf("empty LHS")
	}
	for _, item := range splitItems(rhs) {
		attr, pat := splitAttrValue(item)
		if schema.Index(attr) < 0 {
			return nil, fmt.Errorf("unknown attribute %q", attr)
		}
		raw.RHS = append(raw.RHS, attr)
		raw.RHSPattern = append(raw.RHSPattern, pat)
	}
	if len(raw.RHS) == 0 {
		return nil, fmt.Errorf("empty RHS")
	}
	return raw.Normalize(), nil
}

func parseMD(name string, data, master *relation.Schema, lhs, rhs string) (*md.MD, error) {
	var clauses []md.ClauseSpec
	for _, item := range splitItems(lhs) {
		switch {
		case strings.Contains(item, "~"):
			d, rest, _ := strings.Cut(item, "~")
			open := strings.IndexByte(rest, '(')
			if open < 0 || !strings.HasSuffix(rest, ")") {
				return nil, fmt.Errorf("bad similarity clause %q", item)
			}
			m := rest[:open]
			pred, err := parsePredicate(rest[open+1 : len(rest)-1])
			if err != nil {
				return nil, err
			}
			if data.Index(strings.TrimSpace(d)) < 0 || master.Index(strings.TrimSpace(m)) < 0 {
				return nil, fmt.Errorf("unknown attribute in %q", item)
			}
			clauses = append(clauses, md.Sim(strings.TrimSpace(d), strings.TrimSpace(m), pred))
		case strings.Contains(item, "="):
			d, m, _ := strings.Cut(item, "=")
			d, m = strings.TrimSpace(d), strings.TrimSpace(m)
			if data.Index(d) < 0 || master.Index(m) < 0 {
				return nil, fmt.Errorf("unknown attribute in %q", item)
			}
			clauses = append(clauses, md.Eq(d, m))
		default:
			return nil, fmt.Errorf("bad MD clause %q", item)
		}
	}
	if len(clauses) == 0 {
		return nil, fmt.Errorf("empty MD premise")
	}
	var pairs []md.PairSpec
	for _, item := range splitItems(rhs) {
		d, m, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("bad MD conclusion %q", item)
		}
		d, m = strings.TrimSpace(d), strings.TrimSpace(m)
		if data.Index(d) < 0 || master.Index(m) < 0 {
			return nil, fmt.Errorf("unknown attribute in %q", item)
		}
		pairs = append(pairs, md.PairSpec{Data: d, Master: m})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("empty MD conclusion")
	}
	return md.New(name, data, master, clauses, pairs), nil
}

func parsePredicate(s string) (similarity.Predicate, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "=":
		return similarity.Equal(), nil
	case strings.HasPrefix(s, "edit<="):
		k, err := strconv.Atoi(s[len("edit<="):])
		if err != nil {
			return similarity.Predicate{}, fmt.Errorf("bad edit threshold %q", s)
		}
		return similarity.EditWithin(k), nil
	case strings.HasPrefix(s, "jw>="):
		th, err := strconv.ParseFloat(s[len("jw>="):], 64)
		if err != nil {
			return similarity.Predicate{}, fmt.Errorf("bad jw threshold %q", s)
		}
		return similarity.JaroWinklerAtLeast(th), nil
	case strings.HasPrefix(s, "jaccard"):
		rest := s[len("jaccard"):]
		qs, ths, ok := strings.Cut(rest, ">=")
		if !ok {
			return similarity.Predicate{}, fmt.Errorf("bad jaccard predicate %q", s)
		}
		q, err1 := strconv.Atoi(qs)
		th, err2 := strconv.ParseFloat(ths, 64)
		if err1 != nil || err2 != nil {
			return similarity.Predicate{}, fmt.Errorf("bad jaccard predicate %q", s)
		}
		return similarity.JaccardAtLeast(q, th), nil
	default:
		return similarity.Predicate{}, fmt.Errorf("unknown predicate %q", s)
	}
}

// FormatRules renders normalized CFDs and MDs back into the line-oriented
// syntax accepted by ParseRules, one rule per line. ParseRules(FormatRules(
// ParseRules(text))) yields the same dependencies (up to generated names)
// for any text ParseRules accepts, which the fuzz suite relies on.
func FormatRules(cfds []*cfd.CFD, mds []*md.MD) string {
	var b strings.Builder
	for _, c := range cfds {
		b.WriteString("cfd ")
		for i, a := range c.LHS {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(formatItem(c.Schema.Attrs[a], c.LHSPattern[i]))
		}
		b.WriteString(" -> ")
		b.WriteString(formatItem(c.Schema.Attrs[c.RHS], c.RHSPattern))
		b.WriteByte('\n')
	}
	for _, m := range mds {
		b.WriteString("md ")
		for i, cl := range m.LHS {
			if i > 0 {
				b.WriteString(", ")
			}
			d, ma := m.Data.Attrs[cl.DataAttr], m.Master.Attrs[cl.MasterAttr]
			if cl.Pred.Exact {
				fmt.Fprintf(&b, "%s=%s", d, ma)
			} else {
				fmt.Fprintf(&b, "%s~%s(%s)", d, ma, cl.Pred.Name)
			}
		}
		b.WriteString(" -> ")
		for i, p := range m.RHS {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%s", m.Data.Attrs[p.DataAttr], m.Master.Attrs[p.MasterAttr])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatItem renders one CFD item: a bare attribute for the unnamed
// variable, attr=value otherwise (including the empty constant, "attr=").
func formatItem(attr, pattern string) string {
	if pattern == cfd.Wildcard {
		return attr
	}
	return attr + "=" + pattern
}

func splitItems(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item != "" {
			out = append(out, item)
		}
	}
	return out
}

func splitAttrValue(item string) (attr, pattern string) {
	if a, v, ok := strings.Cut(item, "="); ok {
		return strings.TrimSpace(a), strings.TrimSpace(v)
	}
	return item, cfd.Wildcard
}
