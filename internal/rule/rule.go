// Package rule unifies CFDs and MDs as cleaning rules (Section 3.1 of the
// paper): directives that say which attributes to update and what value to
// write, with confidence propagated by the fuzzy-logic minimum. It also
// implements the dependency graph and rule ordering of Section 6.2.
package rule

import (
	"repro/internal/cfd"
	"repro/internal/md"
)

// Kind classifies a cleaning rule by the dependency it derives from.
type Kind int

const (
	// ConstantCFD rules write the RHS pattern constant (Section 3.1 (2)).
	ConstantCFD Kind = iota
	// VariableCFD rules copy the RHS value of another tuple in the same
	// LHS-equal group (Section 3.1 (3)).
	VariableCFD
	// MatchMD rules copy master values into matched tuples (Section 3.1 (1)).
	MatchMD
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case ConstantCFD:
		return "constantCFD"
	case VariableCFD:
		return "variableCFD"
	case MatchMD:
		return "matchMD"
	default:
		return "unknown"
	}
}

// Rule is a cleaning rule derived from either a normalized CFD or a
// normalized positive MD. Exactly one of CFD and MD is non-nil, determined
// by Kind.
type Rule struct {
	Kind Kind
	CFD  *cfd.CFD
	MD   *md.MD
}

// Name returns the name of the underlying dependency.
func (r Rule) Name() string {
	if r.MD != nil {
		return r.MD.Name
	}
	return r.CFD.Name
}

// LHSAttrs returns the data-relation attribute positions read by the rule's
// premise.
func (r Rule) LHSAttrs() []int {
	if r.Kind == MatchMD {
		out := make([]int, len(r.MD.LHS))
		for i, c := range r.MD.LHS {
			out[i] = c.DataAttr
		}
		return out
	}
	return r.CFD.LHS
}

// RHSAttrs returns the data-relation attribute positions the rule writes.
func (r Rule) RHSAttrs() []int {
	if r.Kind == MatchMD {
		out := make([]int, len(r.MD.RHS))
		for i, p := range r.MD.RHS {
			out[i] = p.DataAttr
		}
		return out
	}
	return []int{r.CFD.RHS}
}

// Derive builds the cleaning-rule set from normalized CFDs and positive MDs,
// preserving input order (CFDs first, then MDs).
func Derive(sigma []*cfd.CFD, gamma []*md.MD) []Rule {
	out := make([]Rule, 0, len(sigma)+len(gamma))
	for _, c := range sigma {
		k := VariableCFD
		if c.IsConstant() {
			k = ConstantCFD
		}
		out = append(out, Rule{Kind: k, CFD: c})
	}
	for _, m := range gamma {
		out = append(out, Rule{Kind: MatchMD, MD: m})
	}
	return out
}

// MinConf returns the fuzzy-logic confidence of a fix derived from premise
// confidences: the minimum (Section 3.1 uses min rather than product,
// following fuzzy set membership). Premises tested by non-exact similarity
// predicates do not contribute, matching the paper's "d is the minimum
// t[Aj].cf for all j in [1,k] if ≈j is '='"; if no premise contributes, the
// result is 1 (the fix is backed entirely by similarity to clean data).
func MinConf(confs []float64) float64 {
	m := 1.0
	for _, c := range confs {
		if c < m {
			m = c
		}
	}
	return m
}
