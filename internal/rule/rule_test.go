package rule

import (
	"reflect"
	"testing"

	"repro/internal/cfd"
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/similarity"
)

func schemas() (*relation.Schema, *relation.Schema) {
	data := relation.NewSchema("tran",
		"FN", "LN", "St", "city", "AC", "post", "phn", "gd", "item", "when", "where")
	master := relation.NewSchema("card",
		"FN", "LN", "St", "city", "AC", "zip", "tel", "dob", "gd")
	return data, master
}

// example11Rules builds phi1, phi2, phi3 (multi-RHS), phi4 and psi of
// Example 1.1 as one non-normalized bundle.
func example11Rules() ([]*cfd.CFD, []*md.MD) {
	ds, ms := schemas()
	phi1 := cfd.New("phi1", ds, []string{"AC"}, []string{"131"}, "city", "Edi")
	phi2 := cfd.New("phi2", ds, []string{"AC"}, []string{"020"}, "city", "Ldn")
	phi3 := cfd.Raw{Name: "phi3", Schema: ds,
		LHS: []string{"city", "phn"}, LHSPattern: []string{cfd.Wildcard, cfd.Wildcard},
		RHS: []string{"St", "AC", "post"}, RHSPattern: []string{cfd.Wildcard, cfd.Wildcard, cfd.Wildcard}}
	phi4 := cfd.New("phi4", ds, []string{"FN"}, []string{"Bob"}, "FN", "Robert")
	psi := md.New("psi", ds, ms,
		[]md.ClauseSpec{
			md.Eq("LN", "LN"), md.Eq("city", "city"), md.Eq("St", "St"), md.Eq("post", "zip"),
			md.Sim("FN", "FN", similarity.EditWithin(3)),
		},
		[]md.PairSpec{{Data: "FN", Master: "FN"}, {Data: "phn", Master: "tel"}})
	cfds := []*cfd.CFD{phi1, phi2}
	cfds = append(cfds, phi3.Normalize()...)
	cfds = append(cfds, phi4)
	return cfds, psi.Normalize()
}

func TestDeriveKinds(t *testing.T) {
	cfds, mds := example11Rules()
	rules := Derive(cfds, mds)
	if len(rules) != 6+2 {
		t.Fatalf("Derive produced %d rules", len(rules))
	}
	wantKinds := []Kind{ConstantCFD, ConstantCFD, VariableCFD, VariableCFD, VariableCFD, ConstantCFD, MatchMD, MatchMD}
	for i, r := range rules {
		if r.Kind != wantKinds[i] {
			t.Errorf("rule %d (%s) kind = %v, want %v", i, r.Name(), r.Kind, wantKinds[i])
		}
	}
}

func TestLHSAndRHSAttrs(t *testing.T) {
	ds, ms := schemas()
	rules := Derive(
		[]*cfd.CFD{cfd.New("phi1", ds, []string{"AC"}, []string{"131"}, "city", "Edi")},
		[]*md.MD{md.New("m", ds, ms,
			[]md.ClauseSpec{md.Eq("LN", "LN")},
			[]md.PairSpec{{Data: "phn", Master: "tel"}})})
	if got := rules[0].LHSAttrs(); !reflect.DeepEqual(got, []int{ds.MustIndex("AC")}) {
		t.Errorf("CFD LHSAttrs = %v", got)
	}
	if got := rules[0].RHSAttrs(); !reflect.DeepEqual(got, []int{ds.MustIndex("city")}) {
		t.Errorf("CFD RHSAttrs = %v", got)
	}
	if got := rules[1].LHSAttrs(); !reflect.DeepEqual(got, []int{ds.MustIndex("LN")}) {
		t.Errorf("MD LHSAttrs = %v", got)
	}
	if got := rules[1].RHSAttrs(); !reflect.DeepEqual(got, []int{ds.MustIndex("phn")}) {
		t.Errorf("MD RHSAttrs = %v", got)
	}
}

func TestDependencyGraphEdges(t *testing.T) {
	// phi1 writes city; phi3.* read city; psi reads city. So phi1 must
	// have edges to every phi3 component and both psi components.
	cfds, mds := example11Rules()
	rules := Derive(cfds, mds)
	g := BuildGraph(rules)
	nameOf := func(i int) string { return rules[i].Name() }
	phi1Out := map[string]bool{}
	for i, r := range rules {
		if r.Name() == "phi1" {
			for _, v := range g.Adj[i] {
				phi1Out[nameOf(v)] = true
			}
		}
	}
	for _, want := range []string{"phi3.1", "phi3.2", "phi3.3", "psi.1", "psi.2"} {
		if !phi1Out[want] {
			t.Errorf("missing edge phi1 -> %s (got %v)", want, phi1Out)
		}
	}
	if phi1Out["phi1"] || phi1Out["phi2"] {
		t.Errorf("unexpected edge from phi1: %v", phi1Out)
	}
}

func TestSCCsSingleComponent(t *testing.T) {
	// In Example 6.1 the whole rule set forms one SCC.
	cfds, mds := example11Rules()
	rules := Derive(cfds, mds)
	g := BuildGraph(rules)
	comps := g.SCCs()
	// All seven rules are mutually reachable: phi1 -> phi3 -> phi1 via
	// AC/city, psi -> phi4 -> psi via FN, psi -> phi3 via phn, etc.
	largest := 0
	for _, c := range comps {
		if len(c) > largest {
			largest = len(c)
		}
	}
	if largest != len(rules) {
		t.Errorf("largest SCC = %d, want %d (comps %v)", largest, len(rules), comps)
	}
}

func TestSCCsChain(t *testing.T) {
	// A -> B -> C chain with no cycles: three singleton SCCs, topo order
	// must put A before B before C in Order().
	s := relation.NewSchema("r", "A", "B", "C", "D")
	r1 := cfd.FD("r1", s, []string{"A"}, "B")
	r2 := cfd.FD("r2", s, []string{"B"}, "C")
	r3 := cfd.FD("r3", s, []string{"C"}, "D")
	rules := Derive([]*cfd.CFD{r3, r1, r2}, nil) // shuffled input
	ordered := Order(rules)
	pos := map[string]int{}
	for i, r := range ordered {
		pos[r.Name()] = i
	}
	if !(pos["r1"] < pos["r2"] && pos["r2"] < pos["r3"]) {
		t.Errorf("order = %v", pos)
	}
}

func TestOrderExample61(t *testing.T) {
	// Example 6.1: the order is phi1 > phi2 > phi3 > phi4 > psi.
	// With normalized rules, all phi3 components must come after phi1 and
	// phi2, and psi components last among the low-ratio rules.
	cfds, mds := example11Rules()
	rules := Derive(cfds, mds)
	ordered := Order(rules)
	pos := map[string]int{}
	for i, r := range ordered {
		pos[r.Name()] = i
	}
	if !(pos["phi1"] < pos["phi3.1"] && pos["phi2"] < pos["phi3.1"]) {
		t.Errorf("phi1/phi2 must precede phi3: %v", pos)
	}
	if !(pos["phi1"] < pos["psi.1"] && pos["phi4"] < pos["psi.2"]) {
		t.Errorf("psi must come last: %v", pos)
	}
}

func TestOrderIsPermutation(t *testing.T) {
	cfds, mds := example11Rules()
	rules := Derive(cfds, mds)
	ordered := Order(rules)
	if len(ordered) != len(rules) {
		t.Fatalf("Order changed rule count: %d vs %d", len(ordered), len(rules))
	}
	seen := map[string]bool{}
	for _, r := range ordered {
		if seen[r.Name()] {
			t.Errorf("duplicate rule %s", r.Name())
		}
		seen[r.Name()] = true
	}
}

func TestMinConf(t *testing.T) {
	if got := MinConf([]float64{0.9, 0.5, 0.7}); got != 0.5 { //det:ok floateq exact return-value check: the minimum is selected, not computed
		t.Errorf("MinConf = %g", got)
	}
	if got := MinConf(nil); got != 1 { //det:ok floateq exact return-value check of the documented empty-case constant
		t.Errorf("MinConf(nil) = %g", got)
	}
}

func TestKindString(t *testing.T) {
	if ConstantCFD.String() != "constantCFD" || VariableCFD.String() != "variableCFD" ||
		MatchMD.String() != "matchMD" || Kind(9).String() != "unknown" {
		t.Error("Kind.String broken")
	}
}

func TestParseRules(t *testing.T) {
	ds, ms := schemas()
	text := `
# Example 1.1 rules
cfd AC=131 -> city=Edi
cfd AC=020 -> city=Ldn
cfd city, phn -> St, AC, post
cfd FN=Bob -> FN=Robert
md LN=LN, city=city, St=St, post=zip, FN~FN(edit<=2) -> FN=FN, phn=tel
`
	cfds, mds, err := ParseRules(ds, ms, text)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfds) != 2+3+1 {
		t.Errorf("parsed %d CFDs, want 6", len(cfds))
	}
	if len(mds) != 2 {
		t.Errorf("parsed %d MDs, want 2 (normalized)", len(mds))
	}
	if !cfds[0].IsConstant() || cfds[0].RHSPattern != "Edi" {
		t.Errorf("cfd1 = %s", cfds[0])
	}
	if cfds[2].IsConstant() {
		t.Errorf("cfd3.1 must be variable: %s", cfds[2])
	}
	if len(mds[0].LHS) != 5 {
		t.Errorf("md premise has %d clauses", len(mds[0].LHS))
	}
}

func TestParseRulesPredicates(t *testing.T) {
	ds, ms := schemas()
	for _, pred := range []string{"edit<=2", "jw>=0.9", "jaccard2>=0.5", "="} {
		_, mds, err := ParseRules(ds, ms, "md FN~FN("+pred+") -> FN=FN")
		if err != nil {
			t.Errorf("predicate %q: %v", pred, err)
			continue
		}
		if len(mds) != 1 {
			t.Errorf("predicate %q: %d MDs", pred, len(mds))
		}
	}
}

func TestParseRulesErrors(t *testing.T) {
	ds, ms := schemas()
	bad := []string{
		"cfd -> city=Edi",
		"cfd AC=131 city=Edi",
		"cfd Bogus=1 -> city=Edi",
		"cfd AC=131 -> Bogus=Edi",
		"md FN~FN(edit<=x) -> FN=FN",
		"md FN~FN(unknown<=2) -> FN=FN",
		"md FN=FN -> ",
		"xyz AC=131 -> city=Edi",
		"cfd",
	}
	for _, text := range bad {
		if _, _, err := ParseRules(ds, ms, text); err == nil {
			t.Errorf("ParseRules(%q) succeeded, want error", text)
		}
	}
	if _, _, err := ParseRules(ds, nil, "md FN=FN -> FN=FN"); err == nil {
		t.Error("md without master schema must fail")
	}
}
