package rule

import (
	"testing"

	"repro/internal/relation"
)

// FuzzParseRules feeds arbitrary text to the rules parser and checks two
// properties: the parser never panics, and any rule set it accepts
// round-trips — FormatRules renders it back into the rules syntax, and
// re-parsing that text yields the same dependencies (compared through their
// name-free String forms, since generated names depend on line numbering).
func FuzzParseRules(f *testing.F) {
	data := relation.NewSchema("tran", "FN", "LN", "St", "city", "AC", "post", "phn")
	master := relation.NewSchema("card", "FN", "LN", "St", "city", "AC", "zip", "tel")

	f.Add("cfd AC=131 -> city=Edi")
	f.Add("cfd AC=131, city=_ -> city=Edi\ncfd city, phn -> St, AC, post")
	f.Add("md LN=LN, city=city, St=St, post=zip, FN~FN(edit<=2) -> FN=FN, phn=tel")
	f.Add("md FN~FN(jw>=0.9) -> FN=FN\nmd FN~FN(jaccard3>=0.5) -> FN=FN")
	f.Add("md FN~FN(=) -> FN=FN")
	f.Add("# comment\n\ncfd post= -> St=")
	f.Add("cfd post -> St=EH7 4AH\ncfd St=a=b -> post=x->y")
	f.Add("cfd -> \nmd ~( -> =")
	f.Add("cfd NoSuchAttr=1 -> city=Edi") // unknown attribute
	f.Add("md FN~FN(edit<=x) -> FN=FN")   // malformed similarity bound
	f.Add("md FN=FN -> zip=zip")          // conclusion names a master attr on the data side
	f.Add("cfd AC=131 -> city=Edi\x00")   // embedded NUL
	f.Add("cfd AC=\xff\xfe -> city=�")    // invalid UTF-8 and replacement char

	f.Fuzz(func(t *testing.T, text string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ParseRules panicked on %q: %v", text, r)
			}
		}()
		cfds, mds, err := ParseRules(data, master, text)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		formatted := FormatRules(cfds, mds)
		cfds2, mds2, err := ParseRules(data, master, formatted)
		if err != nil {
			t.Fatalf("re-parse of formatted rules failed: %v\ninput: %q\nformatted: %q", err, text, formatted)
		}
		if len(cfds2) != len(cfds) || len(mds2) != len(mds) {
			t.Fatalf("round-trip changed rule counts: %d/%d CFDs, %d/%d MDs\ninput: %q\nformatted: %q",
				len(cfds), len(cfds2), len(mds), len(mds2), text, formatted)
		}
		for i := range cfds {
			if got, want := cfds2[i].String(), cfds[i].String(); got != want {
				t.Errorf("CFD %d round-trip: got %s, want %s\ninput: %q", i, got, want, text)
			}
		}
		for i := range mds {
			if got, want := mds2[i].String(), mds[i].String(); got != want {
				t.Errorf("MD %d round-trip: got %s, want %s\ninput: %q", i, got, want, text)
			}
		}
	})
}
