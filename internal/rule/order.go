package rule

import "sort"

// Graph is the dependency graph of a rule set (Section 6.2): nodes are
// rules; there is an edge u -> v when the attributes written by u intersect
// the attributes read by v, i.e. applying u can enable v.
type Graph struct {
	Rules []Rule
	Adj   [][]int // Adj[u] lists v with an edge u -> v (deduplicated)
}

// BuildGraph constructs the dependency graph of rules.
func BuildGraph(rules []Rule) *Graph {
	g := &Graph{Rules: rules, Adj: make([][]int, len(rules))}
	reads := make([]map[int]bool, len(rules))
	for i, r := range rules {
		reads[i] = make(map[int]bool)
		for _, a := range r.LHSAttrs() {
			reads[i][a] = true
		}
	}
	for u, r := range rules {
		seen := make(map[int]bool)
		for _, a := range r.RHSAttrs() {
			for v := range rules {
				if !seen[v] && reads[v][a] {
					seen[v] = true
					g.Adj[u] = append(g.Adj[u], v)
				}
			}
		}
		sort.Ints(g.Adj[u])
	}
	return g
}

// SCCs returns the strongly connected components of g in reverse topological
// order of the condensation (Tarjan's algorithm): if SCC S1 has an edge into
// SCC S2, S2 appears before S1 in the result.
func (g *Graph) SCCs() [][]int {
	n := len(g.Rules)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0

	var strong func(v int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.Adj[v] {
			if index[w] == -1 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			comps = append(comps, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strong(v)
		}
	}
	return comps
}

// Order returns the rule application order of Section 6.2:
//  1. find the SCCs of the dependency graph;
//  2. topologically order the condensation (rules whose application affects
//     others come first);
//  3. within each SCC, sort by the ratio of out-degree to in-degree in
//     decreasing order — the higher the ratio, the more effect the rule has
//     on other rules. Ties keep the original rule order.
func Order(rules []Rule) []Rule {
	g := BuildGraph(rules)
	comps := g.SCCs()
	// Tarjan yields reverse topological order; iterate backwards so that
	// components with outgoing edges come first.
	out := make([]Rule, 0, len(rules))
	outDeg := make([]int, len(rules))
	inDeg := make([]int, len(rules))
	for u, vs := range g.Adj {
		outDeg[u] += len(vs)
		for _, v := range vs {
			inDeg[v]++
		}
	}
	ratio := func(u int) float64 {
		if inDeg[u] == 0 {
			// No rule feeds u; it is a pure source and comes first.
			return float64(outDeg[u]) + 1e9
		}
		return float64(outDeg[u]) / float64(inDeg[u])
	}
	for i := len(comps) - 1; i >= 0; i-- {
		comp := append([]int(nil), comps[i]...)
		sort.SliceStable(comp, func(a, b int) bool {
			ra, rb := ratio(comp[a]), ratio(comp[b])
			//det:ok floateq ratios are single divisions of exact small ints: equal operands give bit-identical quotients, and ties fall through to the index tie-break
			if ra != rb {
				return ra > rb
			}
			return comp[a] < comp[b]
		})
		for _, u := range comp {
			out = append(out, g.Rules[u])
		}
	}
	return out
}
