// Package md implements matching dependencies (MDs) across a data relation
// and a master relation, as defined in Section 2.2 of the paper, including
// negative MDs and their embedding into positive MDs (Proposition 2.6).
package md

import (
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/similarity"
)

// Clause is one conjunct of an MD premise: R[A] ≈ Rm[B] for a similarity
// predicate ≈ from Υ.
type Clause struct {
	DataAttr   int
	MasterAttr int
	Pred       similarity.Predicate
}

// Pair is one identification R[E] ⇌ Rm[F] of an MD conclusion.
type Pair struct {
	DataAttr   int
	MasterAttr int
}

// MD is a positive matching dependency
//
//	⋀_j (R[Aj] ≈j Rm[Bj])  ->  ⋀_i (R[Ei] ⇌ Rm[Fi])
//
// refined for matching a (possibly dirty) relation against clean master
// data: when the premise holds for (t, s), t[Ei] is changed to s[Fi].
type MD struct {
	Name   string
	Data   *relation.Schema
	Master *relation.Schema
	LHS    []Clause
	RHS    []Pair
}

// New builds an MD from attribute names. Each LHS entry is
// (dataAttr, masterAttr, predicate); each RHS entry is
// (dataAttr, masterAttr). It panics on unknown attributes.
func New(name string, data, master *relation.Schema, lhs []ClauseSpec, rhs []PairSpec) *MD {
	m := &MD{Name: name, Data: data, Master: master}
	for _, c := range lhs {
		m.LHS = append(m.LHS, Clause{
			DataAttr:   data.MustIndex(c.Data),
			MasterAttr: master.MustIndex(c.Master),
			Pred:       c.Pred,
		})
	}
	for _, p := range rhs {
		m.RHS = append(m.RHS, Pair{
			DataAttr:   data.MustIndex(p.Data),
			MasterAttr: master.MustIndex(p.Master),
		})
	}
	return m
}

// ClauseSpec names a premise clause for New.
type ClauseSpec struct {
	Data   string
	Master string
	Pred   similarity.Predicate
}

// PairSpec names a conclusion pair for New.
type PairSpec struct {
	Data   string
	Master string
}

// Eq is shorthand for an equality premise clause.
func Eq(data, master string) ClauseSpec {
	return ClauseSpec{Data: data, Master: master, Pred: similarity.Equal()}
}

// Sim is shorthand for a similarity premise clause.
func Sim(data, master string, pred similarity.Predicate) ClauseSpec {
	return ClauseSpec{Data: data, Master: master, Pred: pred}
}

// MatchLHS reports whether the premise of m holds on data tuple t and master
// tuple s. Null values never satisfy a premise clause.
func (m *MD) MatchLHS(t, s *relation.Tuple) bool {
	for _, c := range m.LHS {
		if !c.Pred.Match(t.Values[c.DataAttr], s.Values[c.MasterAttr]) {
			return false
		}
	}
	return true
}

// RHSHolds reports whether t[Ei] = s[Fi] for all conclusion pairs.
func (m *MD) RHSHolds(t, s *relation.Tuple) bool {
	for _, p := range m.RHS {
		if t.Values[p.DataAttr] != s.Values[p.MasterAttr] {
			return false
		}
	}
	return true
}

// Normalize returns the equivalent set of MDs with single-pair conclusions
// (Section 2.2, "Normalized CFDs and MDs").
func (m *MD) Normalize() []*MD {
	if len(m.RHS) <= 1 {
		return []*MD{m}
	}
	out := make([]*MD, len(m.RHS))
	for i, p := range m.RHS {
		out[i] = &MD{
			Name:   fmt.Sprintf("%s.%d", m.Name, i+1),
			Data:   m.Data,
			Master: m.Master,
			LHS:    m.LHS,
			RHS:    []Pair{p},
		}
	}
	return out
}

// String renders the MD in the paper's notation.
func (m *MD) String() string {
	var lhs, rhs []string
	for _, c := range m.LHS {
		lhs = append(lhs, fmt.Sprintf("%s[%s] %s %s[%s]",
			m.Data.Name, m.Data.Attrs[c.DataAttr], c.Pred.Name,
			m.Master.Name, m.Master.Attrs[c.MasterAttr]))
	}
	for _, p := range m.RHS {
		rhs = append(rhs, fmt.Sprintf("%s[%s] <=> %s[%s]",
			m.Data.Name, m.Data.Attrs[p.DataAttr],
			m.Master.Name, m.Master.Attrs[p.MasterAttr]))
	}
	return strings.Join(lhs, " ^ ") + " -> " + strings.Join(rhs, " ^ ")
}

// Violation records a pair (t, s) on which an MD premise holds but the
// conclusion does not: tuple T of D can still be updated with master tuple S.
type Violation struct {
	MD   *MD
	T, S int
}

// Satisfies reports whether (D, Dm) |= m: no more tuples of D can be matched
// and updated with master tuples via m.
func Satisfies(d, dm *relation.Relation, m *MD) bool {
	for _, t := range d.Tuples {
		for _, s := range dm.Tuples {
			if m.MatchLHS(t, s) && !m.RHSHolds(t, s) {
				return false
			}
		}
	}
	return true
}

// SatisfiesAll reports whether (D, Dm) |= Γ.
func SatisfiesAll(d, dm *relation.Relation, gamma []*MD) bool {
	for _, m := range gamma {
		if !Satisfies(d, dm, m) {
			return false
		}
	}
	return true
}

// VisitViolations streams every violating (t, s) pair of m on (D, Dm) to fn
// in (T, S) order, stopping early when fn returns false. Callers that only
// count or sample violations use it to avoid materializing the worst-case
// O(|D|·|Dm|) pair set that Violations allocates.
func VisitViolations(d, dm *relation.Relation, m *MD, fn func(Violation) bool) {
	for i, t := range d.Tuples {
		for j, s := range dm.Tuples {
			if m.MatchLHS(t, s) && !m.RHSHolds(t, s) {
				if !fn(Violation{MD: m, T: i, S: j}) {
					return
				}
			}
		}
	}
}

// VisitViolationsBlocked streams the violating (t, s) pairs of m like
// VisitViolations, but restricts each data tuple's inner loop to the master
// indexes produced by a blocking candidate enumerator. candidates(i, t) must
// return master tuple indexes in ascending order, and the returned set must
// be exact for certification — a superset of every s on which m's premise
// can hold for t (pairs outside it must fail the premise) — so the streamed
// violations are precisely those of the nested scan, in the same (T, S)
// order. The returned slice is only borrowed: it may be reused by the next
// candidates call.
func VisitViolationsBlocked(d, dm *relation.Relation, m *MD,
	candidates func(i int, t *relation.Tuple) []int, fn func(Violation) bool) {
	VisitViolationsBlockedRange(d, dm, m, 0, len(d.Tuples), candidates, fn)
}

// VisitViolationsBlockedRange is VisitViolationsBlocked restricted to the
// data tuples in [lo, hi): the sub-shard primitive that lets a caller split
// one rule's certification scan across workers and re-concatenate the
// per-range outputs in ascending-lo order, which reproduces the full (T, S)
// stream exactly — the outer loop visits data tuples in index order, so
// range outputs never interleave.
func VisitViolationsBlockedRange(d, dm *relation.Relation, m *MD, lo, hi int,
	candidates func(i int, t *relation.Tuple) []int, fn func(Violation) bool) {
	for i := lo; i < hi; i++ {
		t := d.Tuples[i]
		for _, j := range candidates(i, t) {
			s := dm.Tuples[j]
			if m.MatchLHS(t, s) && !m.RHSHolds(t, s) {
				if !fn(Violation{MD: m, T: i, S: j}) {
					return
				}
			}
		}
	}
}

// Violations returns all violating (t, s) pairs of m on (D, Dm).
func Violations(d, dm *relation.Relation, m *MD) []Violation {
	var out []Violation
	VisitViolations(d, dm, m, func(v Violation) bool {
		out = append(out, v)
		return true
	})
	return out
}
