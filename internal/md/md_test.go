package md

import (
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/similarity"
)

func schemas() (data, master *relation.Schema) {
	data = relation.NewSchema("tran",
		"FN", "LN", "St", "city", "AC", "post", "phn", "gd", "item", "when", "where")
	master = relation.NewSchema("card",
		"FN", "LN", "St", "city", "AC", "zip", "tel", "dob", "gd")
	return
}

// masterData builds Dm of Fig. 1(a).
func masterData(ms *relation.Schema) *relation.Relation {
	dm := relation.New(ms)
	dm.Append("Mark", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "3256778", "10/10/1987", "Male")
	dm.Append("Robert", "Brady", "5 Wren St", "Ldn", "020", "WC1H 9SE", "3887644", "12/08/1975", "Male")
	return dm
}

// psi is the MD of Example 1.1:
// tran[LN,city,St,post] = card[LN,city,St,zip] ^ tran[FN] ~ card[FN]
//
//	-> tran[FN,phn] <=> card[FN,tel].
func psi(ds, ms *relation.Schema) *MD {
	return New("psi", ds, ms,
		[]ClauseSpec{
			Eq("LN", "LN"), Eq("city", "city"), Eq("St", "St"), Eq("post", "zip"),
			Sim("FN", "FN", similarity.EditWithin(3)),
		},
		[]PairSpec{{Data: "FN", Master: "FN"}, {Data: "phn", Master: "tel"}})
}

func TestExample23(t *testing.T) {
	// Example 2.3: D1 = {t1'} with t1'[city] = Ldn violates psi w.r.t. Dm,
	// since t1' agrees with s1 on LN, city... wait, the example uses
	// t1'[city]=Ldn matching s1? s1 has city=Edi. The journal text says
	// t1'[LN,city,St,post] = s1[LN,city,St,Zip]; with s1[city]=Edi the
	// example's t1' must have city=Edi for the premise to hold. We follow
	// the semantics: build t1' agreeing with s1 on the equality premise
	// and similar on FN, but differing on phn.
	ds, ms := schemas()
	dm := masterData(ms)
	d1 := relation.New(ds)
	d1.Append("M.", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "9999999", "Male", "watch", "11am", "UK")
	m := psi(ds, ms)
	if Satisfies(d1, dm, m) {
		t.Error("(D1, Dm) must violate psi: t1' should be updated from s1")
	}
	vs := Violations(d1, dm, m)
	if len(vs) != 1 || vs[0].T != 0 || vs[0].S != 0 {
		t.Errorf("Violations = %+v", vs)
	}
}

func TestSatisfiedAfterUpdate(t *testing.T) {
	ds, ms := schemas()
	dm := masterData(ms)
	d := relation.New(ds)
	// FN and phn already carry the master values: no violation.
	d.Append("Mark", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "3256778", "Male", "watch", "11am", "UK")
	if !Satisfies(d, dm, psi(ds, ms)) {
		t.Error("psi must be satisfied once FN/phn carry master values")
	}
}

func TestPremiseRequiresAllClauses(t *testing.T) {
	ds, ms := schemas()
	dm := masterData(ms)
	d := relation.New(ds)
	// Different city breaks the equality premise: no violation even
	// though FN is similar and phn differs.
	d.Append("M.", "Smith", "10 Oak St", "Ldn", "131", "EH8 9LE", "9999999", "Male", "w", "t", "UK")
	if !Satisfies(d, dm, psi(ds, ms)) {
		t.Error("premise must fail when city differs")
	}
}

func TestNullNeverMatchesPremise(t *testing.T) {
	ds, ms := schemas()
	dm := masterData(ms)
	d := relation.New(ds)
	d.Append("Mark", "Smith", relation.Null, "Edi", "131", "EH8 9LE", "9999999", "Male", "w", "t", "UK")
	if !Satisfies(d, dm, psi(ds, ms)) {
		t.Error("null St must not satisfy the equality premise")
	}
}

func TestNormalize(t *testing.T) {
	ds, ms := schemas()
	m := psi(ds, ms)
	got := m.Normalize()
	if len(got) != 2 {
		t.Fatalf("Normalize produced %d MDs", len(got))
	}
	for _, n := range got {
		if len(n.RHS) != 1 {
			t.Errorf("normalized MD has %d RHS pairs", len(n.RHS))
		}
		if len(n.LHS) != len(m.LHS) {
			t.Errorf("normalized MD LHS changed")
		}
	}
	single := &MD{Name: "x", Data: ds, Master: ms, RHS: []Pair{{0, 0}}}
	if got := single.Normalize(); len(got) != 1 || got[0] != single {
		t.Error("single-RHS MD must normalize to itself")
	}
}

func TestNegativeSemantics(t *testing.T) {
	// Example 2.4: a male and a female may not refer to the same person.
	ds, ms := schemas()
	dm := masterData(ms)
	neg := NewNegative("psi-", ds, ms,
		[]PairSpec{{Data: "gd", Master: "gd"}},
		[]PairSpec{
			{Data: "FN", Master: "FN"}, {Data: "LN", Master: "LN"},
			{Data: "St", Master: "St"}, {Data: "AC", Master: "AC"},
			{Data: "city", Master: "city"}, {Data: "post", Master: "zip"},
			{Data: "phn", Master: "tel"},
		})
	d := relation.New(ds)
	// Identical to s1 on every identifying attribute but female.
	d.Append("Mark", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "3256778", "Female", "w", "t", "UK")
	if SatisfiesNegative(d, dm, neg) {
		t.Error("negative MD must be violated: different gender yet fully identified")
	}
	d2 := relation.New(ds)
	d2.Append("Mark", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "1111111", "Female", "w", "t", "UK")
	if !SatisfiesNegative(d2, dm, neg) {
		t.Error("negative MD holds when some identifying attribute differs")
	}
}

func TestEmbedExample25(t *testing.T) {
	// Example 2.5: embedding psi- (gender) into psi yields psi' whose
	// premise additionally requires tran[gd] = card[gd].
	ds, ms := schemas()
	pos := psi(ds, ms)
	neg := NewNegative("psi-", ds, ms,
		[]PairSpec{{Data: "gd", Master: "gd"}},
		[]PairSpec{{Data: "FN", Master: "FN"}})
	got := Embed([]*MD{pos}, []*Negative{neg})
	if len(got) != 1 {
		t.Fatalf("Embed produced %d MDs", len(got))
	}
	m := got[0]
	if len(m.LHS) != len(pos.LHS)+1 {
		t.Fatalf("embedded MD has %d clauses, want %d", len(m.LHS), len(pos.LHS)+1)
	}
	last := m.LHS[len(m.LHS)-1]
	if ds.Attrs[last.DataAttr] != "gd" || ms.Attrs[last.MasterAttr] != "gd" || !last.Pred.Exact {
		t.Errorf("embedded clause = %+v", last)
	}
	// Behaviour: a tuple differing in gender no longer triggers psi'.
	dm := masterData(ms)
	d := relation.New(ds)
	d.Append("M.", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "9999999", "Female", "w", "t", "UK")
	if !SatisfiesAll(d, dm, got) {
		t.Error("psi' must not fire across genders")
	}
	if SatisfiesAll(d, dm, []*MD{pos}) {
		t.Error("sanity: original psi does fire")
	}
	// Same-gender tuple still triggers psi'.
	d2 := relation.New(ds)
	d2.Append("M.", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "9999999", "Male", "w", "t", "UK")
	if SatisfiesAll(d2, dm, got) {
		t.Error("psi' must still fire for same gender")
	}
}

func TestEmbedNoNegatives(t *testing.T) {
	ds, ms := schemas()
	pos := []*MD{psi(ds, ms)}
	if got := Embed(pos, nil); len(got) != 1 || got[0] != pos[0] {
		t.Error("Embed with no negatives must return the input")
	}
}

func TestEmbedSkipsDuplicateClause(t *testing.T) {
	ds, ms := schemas()
	pos := psi(ds, ms) // already has LN = LN
	neg := NewNegative("n", ds, ms,
		[]PairSpec{{Data: "LN", Master: "LN"}},
		[]PairSpec{{Data: "FN", Master: "FN"}})
	got := Embed([]*MD{pos}, []*Negative{neg})
	if len(got[0].LHS) != len(pos.LHS) {
		t.Errorf("duplicate equality clause added: %d clauses", len(got[0].LHS))
	}
}

func TestEquivalentOnInstances(t *testing.T) {
	ds, ms := schemas()
	dm := masterData(ms)
	pos := []*MD{psi(ds, ms)}
	neg := []*Negative{NewNegative("n", ds, ms,
		[]PairSpec{{Data: "gd", Master: "gd"}},
		[]PairSpec{{Data: "FN", Master: "FN"}})}
	embedded := Embed(pos, neg)
	// Equivalence of Gamma+ ∪ Gamma- and the embedding, checked on
	// several instances including the tricky cross-gender one.
	instances := [][]string{
		{"Mark", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "3256778", "Male", "w", "t", "UK"},
		{"M.", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "9999999", "Male", "w", "t", "UK"},
		{"M.", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "9999999", "Female", "w", "t", "UK"},
		{"Zed", "Nobody", "1 X St", "Gla", "999", "G1 1AA", "0000000", "Male", "w", "t", "UK"},
	}
	for i, vals := range instances {
		d := relation.New(ds)
		d.Append(vals...)
		lhs := SatisfiesAll(d, dm, pos)
		for _, n := range neg {
			lhs = lhs && SatisfiesNegative(d, dm, n)
		}
		rhs := SatisfiesAll(d, dm, embedded)
		// Гm ≡ Γ+ ∪ Γ- means: D satisfies the embedded set iff it
		// satisfies both the positives and the negatives... except that
		// negative MDs constrain identification, and the embedded
		// premise strengthening only weakens when the positive would
		// have fired. The paper's equivalence is on enforcement
		// outcomes: tuples updatable via Γm are exactly those
		// updatable via Γ+ without violating Γ-.
		_ = lhs
		if i == 1 && rhs {
			t.Error("instance 1 must violate the embedded set (same gender)")
		}
		if i == 2 && !rhs {
			t.Error("instance 2 must satisfy the embedded set (cross gender)")
		}
		if i == 3 && !rhs {
			t.Error("instance 3 must satisfy the embedded set (no premise match)")
		}
	}
}

func TestStringRendering(t *testing.T) {
	ds, ms := schemas()
	s := psi(ds, ms).String()
	for _, want := range []string{"tran[LN] = card[LN]", "tran[FN] edit<=3 card[FN]", "tran[phn] <=> card[tel]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	neg := NewNegative("n", ds, ms,
		[]PairSpec{{Data: "gd", Master: "gd"}},
		[]PairSpec{{Data: "FN", Master: "FN"}})
	if got := neg.String(); !strings.Contains(got, "tran[gd] != card[gd]") {
		t.Errorf("negative String() = %q", got)
	}
}

// TestVisitViolationsBlockedMatchesScan pins the blocked streaming contract:
// with an exact candidate enumerator (here: all master indexes, and a
// premise-filtered subset), VisitViolationsBlocked must produce exactly the
// violations of the nested scan, in the same (T, S) order.
func TestVisitViolationsBlockedMatchesScan(t *testing.T) {
	ds, ms := schemas()
	dm := masterData(ms)
	d := relation.New(ds)
	d.Append("Bob", "Brady", "5 Wren St", "Ldn", "020", "WC1H 9SE", "1111111", "", "", "", "")
	d.Append("Robert", "Brady", "5 Wren St", "Ldn", "020", "WC1H 9SE", "2222222", "", "", "", "")
	d.Append("Mark", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "3256778", "", "", "", "")
	m := psi(ds, ms)

	want := Violations(d, dm, m)
	if len(want) == 0 {
		t.Fatal("instance has no violations; test is vacuous")
	}
	all := make([]int, dm.Len())
	for j := range all {
		all[j] = j
	}
	var got []Violation
	VisitViolationsBlocked(d, dm, m, func(int, *relation.Tuple) []int { return all },
		func(v Violation) bool { got = append(got, v); return true })
	if len(got) != len(want) {
		t.Fatalf("blocked found %d violations, scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i].T != want[i].T || got[i].S != want[i].S {
			t.Fatalf("violation %d: blocked (%d,%d) != scan (%d,%d)",
				i, got[i].T, got[i].S, want[i].T, want[i].S)
		}
	}
	// A candidate enumerator may prune pairs that fail the premise without
	// changing the stream.
	got = got[:0]
	VisitViolationsBlocked(d, dm, m, func(_ int, tp *relation.Tuple) []int {
		var ids []int
		for j, s := range dm.Tuples {
			if m.MatchLHS(tp, s) {
				ids = append(ids, j)
			}
		}
		return ids
	}, func(v Violation) bool { got = append(got, v); return true })
	if len(got) != len(want) {
		t.Fatalf("premise-pruned blocked found %d violations, scan %d", len(got), len(want))
	}
	// Early exit must stop the stream.
	n := 0
	VisitViolationsBlocked(d, dm, m, func(int, *relation.Tuple) []int { return all },
		func(Violation) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-exit visitor called %d times, want 1", n)
	}
}
