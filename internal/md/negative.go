package md

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/similarity"
)

// Negative is a negative matching dependency
//
//	⋀_j (R[Aj] ≠ Rm[Bj])  ->  ⋁_i (R[Ei] ⇎ Rm[Fi])
//
// stating that tuples differing on all the Aj/Bj attributes may not be
// identified (Section 2.2). Negative MDs are never enforced directly:
// Embed converts them into equivalent positive MDs per Proposition 2.6.
type Negative struct {
	Name   string
	Data   *relation.Schema
	Master *relation.Schema
	LHS    []Pair
	RHS    []Pair
}

// NewNegative builds a negative MD from attribute names.
func NewNegative(name string, data, master *relation.Schema, lhs, rhs []PairSpec) *Negative {
	n := &Negative{Name: name, Data: data, Master: master}
	for _, p := range lhs {
		n.LHS = append(n.LHS, Pair{DataAttr: data.MustIndex(p.Data), MasterAttr: master.MustIndex(p.Master)})
	}
	for _, p := range rhs {
		n.RHS = append(n.RHS, Pair{DataAttr: data.MustIndex(p.Data), MasterAttr: master.MustIndex(p.Master)})
	}
	return n
}

// SatisfiesNegative reports whether (D, Dm) |= n: for all (t, s), if
// t[Aj] != s[Bj] for all j, then t[Ei] != s[Fi] for some i.
func SatisfiesNegative(d, dm *relation.Relation, n *Negative) bool {
	for _, t := range d.Tuples {
		for _, s := range dm.Tuples {
			premise := true
			for _, p := range n.LHS {
				if t.Values[p.DataAttr] == s.Values[p.MasterAttr] {
					premise = false
					break
				}
			}
			if !premise {
				continue
			}
			identified := true
			for _, p := range n.RHS {
				if t.Values[p.DataAttr] != s.Values[p.MasterAttr] {
					identified = false
					break
				}
			}
			if identified {
				return false
			}
		}
	}
	return true
}

// Embed converts a nonempty set of positive MDs plus a set of negative MDs
// into an equivalent set of positive MDs, in O(|Γ+|·|Γ-|) time, following
// the algorithm in the proof of Proposition 2.6: for each positive MD, the
// premises of all negative MDs are conjoined as equality clauses, so that
// tuples differing on a negative premise can no longer be identified by the
// rule (cf. Example 2.5, where the gender attribute is incorporated into ψ).
func Embed(positive []*MD, negative []*Negative) []*MD {
	if len(negative) == 0 {
		return positive
	}
	out := make([]*MD, len(positive))
	for i, m := range positive {
		clone := &MD{
			Name:   m.Name + "'",
			Data:   m.Data,
			Master: m.Master,
			LHS:    append([]Clause(nil), m.LHS...),
			RHS:    m.RHS,
		}
		for _, n := range negative {
			for _, p := range n.LHS {
				if hasEqualityClause(clone, p) {
					continue
				}
				clone.LHS = append(clone.LHS, Clause{
					DataAttr:   p.DataAttr,
					MasterAttr: p.MasterAttr,
					Pred:       similarity.Equal(),
				})
			}
		}
		out[i] = clone
	}
	return out
}

func hasEqualityClause(m *MD, p Pair) bool {
	for _, c := range m.LHS {
		if c.DataAttr == p.DataAttr && c.MasterAttr == p.MasterAttr && c.Pred.Exact {
			return true
		}
	}
	return false
}

// Equivalent reports whether two MD sets agree on a given pair of instances:
// (D,Dm) |= Γ1 iff (D,Dm) |= Γ2. It is a testing aid for Proposition 2.6,
// not a decision procedure for semantic equivalence.
func Equivalent(d, dm *relation.Relation, g1, g2 []*MD) bool {
	return SatisfiesAll(d, dm, g1) == SatisfiesAll(d, dm, g2)
}

// String renders the negative MD in the paper's arrow notation.
func (n *Negative) String() string {
	s := ""
	for i, p := range n.LHS {
		if i > 0 {
			s += " ^ "
		}
		s += fmt.Sprintf("%s[%s] != %s[%s]", n.Data.Name, n.Data.Attrs[p.DataAttr],
			n.Master.Name, n.Master.Attrs[p.MasterAttr])
	}
	s += " -> "
	for i, p := range n.RHS {
		if i > 0 {
			s += " v "
		}
		s += fmt.Sprintf("%s[%s] <!> %s[%s]", n.Data.Name, n.Data.Attrs[p.DataAttr],
			n.Master.Name, n.Master.Attrs[p.MasterAttr])
	}
	return s
}
