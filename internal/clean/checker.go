package clean

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cfd"
	"repro/internal/fault"
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/rule"
)

// Violation is one certified rule violation in a cleaned relation.
type Violation struct {
	// Rule is the name of the violated dependency.
	Rule string
	// Kind classifies the underlying dependency.
	Kind rule.Kind
	// Attribute is the data-relation attribute the violation is about (the
	// CFD's RHS attribute, or the MD conclusion's data attribute).
	Attribute string
	// Tuples lists the involved data tuple indexes (one for constant CFDs
	// and MDs, two for variable CFDs).
	Tuples []int
	// Master is the master tuple index for MD violations, -1 otherwise.
	Master int
	// Detail is a human-readable description of the violation.
	Detail string
}

// String returns the violation's human-readable detail line.
func (v Violation) String() string { return v.Detail }

// maxStoredPerRule bounds how many violations of one rule a Report
// materializes. The per-rule and per-kind counts stay exact regardless —
// only the Violation structs beyond the cap are dropped (and tallied in
// Truncated) — so Clean, RuleClean and the summary are unaffected while a
// pathologically dirty instance (up to |D|·|Dm| violating MD pairs) cannot
// exhaust memory building its report.
const maxStoredPerRule = 100

// Report is the structured outcome of a Checker pass.
type Report struct {
	// Violations lists remaining violations, grouped by rule in rule order,
	// capped at maxStoredPerRule per rule; Truncated counts the rest.
	Violations []Violation
	// Truncated is the number of violations counted but not materialized
	// because their rule exceeded maxStoredPerRule.
	Truncated int
	// CertVisits counts the (tuple, master) premise verifications performed
	// while certifying MD rules: the deterministic work measure of the
	// blocked certification path, identical for any worker count. The naive
	// nested scan costs |D|·|Dm| per MD rule; the blocked enumeration
	// verifies only index candidates. Zero when no MD rule was checked.
	CertVisits int
	// Degraded marks a report produced by a run that stopped proposing
	// fixes early because a soft budget ran out (Options.Deadline or
	// Options.MaxFixes). The violation counts are still exact for the
	// relation as left: a degraded report is a truthful partial answer,
	// not an estimate. DegradeReason names the exhausted budget.
	Degraded      bool
	DegradeReason string
	// Patched counts rules this report served from a previous report's
	// cached per-rule result instead of re-checking — nonzero only on the
	// streaming update path (see docs/streaming.md), where a rule none of
	// whose read attributes changed since the last certified run keeps its
	// prior violations verbatim. Deliberately absent from String: a patched
	// report must be byte-identical to a from-scratch one.
	Patched int

	byRule    map[string]int // exact violations per checked rule name
	cfds, mds int            // exact counts by dependency kind
}

// Clean reports whether the relation satisfies every checked rule.
func (r *Report) Clean() bool { return r.cfds == 0 && r.mds == 0 }

// NumCFD and NumMD return the exact violation counts by dependency kind,
// including any violations dropped by the per-rule cap.
func (r *Report) NumCFD() int { return r.cfds }
func (r *Report) NumMD() int  { return r.mds }

// CFDViolations returns the materialized subset of violations of CFD rules.
func (r *Report) CFDViolations() []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Kind != rule.MatchMD {
			out = append(out, v)
		}
	}
	return out
}

// MDViolations returns the materialized subset of violations of MD rules.
func (r *Report) MDViolations() []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Kind == rule.MatchMD {
			out = append(out, v)
		}
	}
	return out
}

// RuleClean reports whether the named rule was checked and has no
// violations. known is false when no checked rule bears that name — a
// mistyped or stale name must not read as "certified clean", which is what
// the old single-return form silently did.
func (r *Report) RuleClean(name string) (clean, known bool) {
	n, ok := r.byRule[name]
	return ok && n == 0, ok
}

// String renders the report, one violation per line, with a summary header.
func (r *Report) String() string {
	if r.Clean() {
		return "certified clean: no violations\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "dirty: %d CFD violations, %d MD violations\n", r.cfds, r.mds)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "violation: %s\n", v.Detail)
	}
	if r.Truncated > 0 {
		fmt.Fprintf(&b, "... and %d more violations not shown\n", r.Truncated)
	}
	return b.String()
}

// Checker certifies the output of the cleaning pipeline: it re-derives,
// from the repaired relation alone, which rules still have violations and
// returns them as a structured Report. The engine's Finish uses it as the
// termination proof behind Result.Resolved/Unresolved, cmd/uniclean's
// -certify flag prints it, and the test suite uses it as the oracle for
// randomized instances.
//
// Certification never scans |D|·|Dm| when an index exists: equality-clause
// MDs enumerate candidates from the matcher's equality buckets, and
// similarity-clause MDs from its generalized suffix tree — an exact,
// untruncated enumeration (unlike the repair path's TopL blocking) whose
// order-preserving candidate merge streams violations in the same (T, S)
// order the nested scan would produce, so the Report is byte-identical.
// Per-rule passes are independent and read-only; with workers > 1 they fan
// out across a bounded pool with forked matchers, and the rule-ordered
// report merge keeps the Report deterministic for any worker count.
type Checker struct {
	rules  []rule.Rule
	master *relation.Relation

	// matchers is parallel to rules: the blocking indexes MD certification
	// enumerates candidates from. NewChecker builds them; Engine.Finish
	// hands the checker the engine's own, so indexes are built once per run.
	matchers []*matcher
	// allMaster is the identity candidate list 0..|Dm|-1 the per-tuple
	// full-scan fallback uses (no usable index, or the LCS bound is vacuous
	// for a too-short value). Shared read-only across workers.
	allMaster []int
	// workers bounds the per-rule certification fan-out of Check.
	workers int
	// noBlock forces the naive |D|·|Dm| scan for every MD — the reference
	// enumeration the blocked-vs-scan property tests compare against.
	noBlock bool
	// fj arms the certify fault hook; nil (the default) keeps it inert.
	// Engine.finish copies the engine's injector here.
	fj *fault.Injector
}

// NewChecker builds a checker over the given rules, including the MD
// blocking indexes over master. master may be nil, in which case MD rules
// are vacuously satisfied (there is nothing to match against), mirroring
// the engine's behavior. The checker is sequential; the engine's Finish
// runs certification through the worker pool instead.
func NewChecker(rules []rule.Rule, master *relation.Relation) *Checker {
	matchers := make([]*matcher, len(rules))
	if master != nil {
		for i, r := range rules {
			if r.Kind == rule.MatchMD {
				matchers[i] = newMatcher(r.MD, master)
			}
		}
	}
	return newChecker(rules, master, matchers, 1)
}

// newChecker wires a checker from prebuilt matchers (parallel to rules) and
// a worker budget — the constructor Engine.Finish uses to reuse the engine's
// indexes and Options.Workers.
func newChecker(rules []rule.Rule, master *relation.Relation, matchers []*matcher, workers int) *Checker {
	c := &Checker{rules: rules, master: master, matchers: matchers, workers: workers}
	if master != nil {
		for _, r := range rules {
			if r.Kind == rule.MatchMD {
				c.allMaster = make([]int, master.Len())
				for j := range c.allMaster {
					c.allMaster[j] = j
				}
				break
			}
		}
	}
	return c
}

// ruleReport is one certification task's outcome — a whole rule, or one
// sub-range of an MD rule's scan — produced independently, possibly on a
// pool worker, and merged into the Report in (rule, range) order. Each task
// stores at most maxStoredPerRule violations; the merge re-applies the cap
// per rule after concatenation, which reproduces the sequential prefix
// exactly (every task keeps its earliest violations, and the global first
// maxStoredPerRule are the earliest of the in-order concatenation).
type ruleReport struct {
	violations []Violation
	count      int // exact violations, including beyond the cap
	truncated  int
	visits     int // (t, s) premise verifications (MD rules only)
}

// certShardMin is the smallest data-tuple range worth its own certification
// task: below it the per-task matcher fork costs more than the scan.
const certShardMin = 256

// certTask is one unit of the certification fan-out: rule ri restricted to
// data tuples [lo, hi). CFD rules are always one whole-relation task — their
// group scan is cheap — while an MD rule's blocked scan, the dominant
// certify cost, is sub-sharded into tuple ranges so one huge similarity MD
// no longer serializes the round behind a single worker. fanOut hands tasks
// out in index order, so the expensive MD shards start spread across the
// pool rather than queued behind one another.
type certTask struct {
	ri     int
	lo, hi int
}

// certTasks builds the certification task list in (rule, lo) order — the
// merge order of Check. A non-nil dirty mask drops the tasks of clean rules
// entirely: checkPatched serves those from the cached per-rule reports, so
// no worker ever visits them.
func (c *Checker) certTasks(d *relation.Relation, dirty []bool) []certTask {
	tasks := make([]certTask, 0, len(c.rules))
	for ri, r := range c.rules {
		if dirty != nil && !dirty[ri] {
			continue
		}
		if c.workers > 1 && r.Kind == rule.MatchMD && c.master != nil {
			n := d.Len() / certShardMin
			if lim := c.workers * 4; n > lim {
				n = lim
			}
			if n > 1 {
				for k := 0; k < n; k++ {
					tasks = append(tasks, certTask{ri: ri, lo: k * d.Len() / n, hi: (k + 1) * d.Len() / n})
				}
				continue
			}
		}
		tasks = append(tasks, certTask{ri: ri, lo: 0, hi: d.Len()})
	}
	return tasks
}

// Check certifies d against every rule and returns the violation report.
// It never mutates d. Certification tasks run concurrently when the checker
// has a worker budget; the report is identical for any worker count. Check
// is the legacy non-erroring form: a failure (possible only with a
// cancellable context or injected faults) panics.
func (c *Checker) Check(d *relation.Relation) *Report {
	rep, err := c.CheckContext(context.Background(), d)
	if err != nil {
		panic(err)
	}
	return rep
}

// CheckContext is Check under a context: certification stops between tasks
// on cancellation and returns ErrCanceled/ErrDeadline; a panicking task is
// contained and returned as a *WorkerError. Certification never mutates d,
// so there is nothing to roll back.
func (c *Checker) CheckContext(ctx context.Context, d *relation.Relation) (*Report, error) {
	rep, _, err := c.checkPatched(ctx, d, nil, nil)
	return rep, err
}

// checkPatched is CheckContext with per-rule incremental patching: rules
// whose dirty bit is unset are served verbatim from cached (the per-rule
// reports of the previous certified pass, parallel to c.rules) instead of
// being re-checked. A nil dirty mask means every rule is dirty — plain
// CheckContext behavior. Because rule certification is a pure function of
// the rule's read columns and the immutable master, a cached report for a
// rule none of whose read attributes changed is byte-identical to what a
// re-check would produce, violations, cap, truncation tally and visit
// counters included. The returned perRule slice (parallel to c.rules)
// holds every rule's merged report — re-checked or cached — for the next
// patched pass to cache.
func (c *Checker) checkPatched(ctx context.Context, d *relation.Relation, dirty []bool, cached []ruleReport) (*Report, []ruleReport, error) {
	tasks := c.certTasks(d, dirty)
	subs := make([]ruleReport, len(tasks))
	run := func(ti int) {
		t := tasks[ti]
		c.fj.At(fault.SiteCertify, t.ri, t.lo)
		// Certification is read-only, so tasks need no propose/commit
		// machinery — just disjoint result slots. Matchers are forked per
		// task (shared immutable indexes, private scratch), exactly as the
		// parallel appliers fork them.
		x := c.matchers[t.ri]
		if x != nil && c.workers > 1 {
			x = x.fork()
		}
		subs[ti] = c.checkRule(d, t.ri, t.lo, t.hi, x)
	}
	if err := fanOut(ctx, "certify", c.workers, len(tasks), run); err != nil {
		return nil, nil, err
	}

	// Ordered merge: rule order, ascending-lo concatenation within a rule
	// (which reconstructs the sequential (T, S) violation stream), the
	// per-rule cap re-applied over the concatenation, order-independent
	// sums — byte-identical to the sequential pass for any worker count.
	// Clean rules have no tasks; their merged report is the cached one,
	// re-emitted into the same rule-order slot, so the Violations stream,
	// counts and visit totals come out as if the rule had been re-checked.
	rep := &Report{byRule: make(map[string]int, len(c.rules))}
	perRule := make([]ruleReport, len(c.rules))
	ti := 0
	for ri := range c.rules {
		var rr ruleReport
		if dirty != nil && !dirty[ri] {
			rr = cached[ri]
			rep.Patched++
		} else {
			for ; ti < len(tasks) && tasks[ti].ri == ri; ti++ {
				s := &subs[ti]
				rr.count += s.count
				rr.visits += s.visits
				rr.violations = append(rr.violations, s.violations...)
			}
			if len(rr.violations) > maxStoredPerRule {
				rr.violations = rr.violations[:maxStoredPerRule]
			}
			rr.truncated = rr.count - len(rr.violations)
		}
		perRule[ri] = rr

		name := c.rules[ri].Name()
		rep.byRule[name] += rr.count // creates the entry even at zero: "checked"
		if c.rules[ri].Kind == rule.MatchMD {
			rep.mds += rr.count
		} else {
			rep.cfds += rr.count
		}
		rep.Violations = append(rep.Violations, rr.violations...)
		rep.Truncated += rr.truncated
		rep.CertVisits += rr.visits
	}
	return rep, perRule, nil
}

// checkRule certifies d against rule ri over the data tuples in [lo, hi) —
// the full relation for CFD rules, possibly one sub-shard for MD rules —
// enumerating MD candidates through x (nil only when master data is absent,
// making the MD vacuous).
func (c *Checker) checkRule(d *relation.Relation, ri, lo, hi int, x *matcher) ruleReport {
	r := c.rules[ri]
	var rr ruleReport
	switch r.Kind {
	case rule.MatchMD:
		if c.master == nil {
			return rr // vacuously satisfied, still recorded as checked
		}
		name := r.Name()
		c.visitMDViolationsRange(d, r.MD, x, lo, hi, &rr.visits, func(v md.Violation) bool {
			rr.count++
			if len(rr.violations) >= maxStoredPerRule {
				// Beyond the cap: tally without formatting the detail.
				rr.truncated++
				return true
			}
			// A violating (t, s) pair disagrees on at least one
			// conclusion pair; report the first one that does, so the
			// report stays right even for MDs that were not normalized
			// to a single-pair conclusion.
			p := r.MD.RHS[0]
			for _, q := range r.MD.RHS {
				if d.Tuples[v.T].Values[q.DataAttr] != c.master.Tuples[v.S].Values[q.MasterAttr] {
					p = q
					break
				}
			}
			attr := d.Schema.Attrs[p.DataAttr]
			rr.violations = append(rr.violations, Violation{
				Rule: name, Kind: r.Kind, Attribute: attr,
				Tuples: []int{v.T}, Master: v.S,
				Detail: fmt.Sprintf("%s: t%d[%s] = %q, matched master tuple %d says %q",
					name, v.T, attr, d.Tuples[v.T].Values[p.DataAttr],
					v.S, c.master.Tuples[v.S].Values[p.MasterAttr]),
			})
			return true
		})
	default:
		for _, v := range cfd.Violations(d, r.CFD) {
			rr.count++
			if len(rr.violations) >= maxStoredPerRule {
				rr.truncated++
				continue
			}
			tuples := []int{v.T1}
			if v.T2 >= 0 {
				tuples = append(tuples, v.T2)
			}
			rr.violations = append(rr.violations, Violation{
				Rule: r.Name(), Kind: r.Kind,
				Attribute: d.Schema.Attrs[v.Attr],
				Tuples:    tuples, Master: -1,
				Detail: v.String(),
			})
		}
	}
	return rr
}

// visitMDViolations streams the violating (t, s) pairs of m in (T, S) order,
// counting every examined pair into visited. Candidates come from the
// matcher's exact certification enumeration (equality buckets or the
// untruncated suffix-tree merge, both ascending) instead of the O(|D|·|Dm|)
// nested scan of md.VisitViolations. The enumeration is exact: a pair
// outside the candidate set fails a premise clause, and candidates arrive
// ascending per tuple, so the same violations appear in the same order as
// the scan. Tuples no index covers exactly — a value shorter than the LCS
// bound allows, or an MD with no indexable clause at all — fall back to
// scanning Dm for that tuple only.
func (c *Checker) visitMDViolations(d *relation.Relation, m *md.MD, x *matcher, visited *int, fn func(md.Violation) bool) {
	c.visitMDViolationsRange(d, m, x, 0, d.Len(), visited, fn)
}

// visitMDViolationsRange is visitMDViolations restricted to the data tuples
// in [lo, hi) — the certify sub-shard entry point. Candidate enumeration is
// per data tuple, so a range visits exactly the pairs the full pass visits
// for those tuples, and ranges concatenated in ascending-lo order reproduce
// the full stream.
func (c *Checker) visitMDViolationsRange(d *relation.Relation, m *md.MD, x *matcher, lo, hi int, visited *int, fn func(md.Violation) bool) {
	md.VisitViolationsBlockedRange(d, c.master, m, lo, hi, func(i int, t *relation.Tuple) []int {
		if x != nil && !c.noBlock {
			if ids, ok := x.certCandidates(t); ok {
				*visited += len(ids)
				return ids
			}
		}
		*visited += len(c.allMaster)
		return c.allMaster
	}, fn)
}
