package clean

import (
	"fmt"
	"strings"

	"repro/internal/cfd"
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/rule"
)

// Violation is one certified rule violation in a cleaned relation.
type Violation struct {
	// Rule is the name of the violated dependency.
	Rule string
	// Kind classifies the underlying dependency.
	Kind rule.Kind
	// Attribute is the data-relation attribute the violation is about (the
	// CFD's RHS attribute, or the MD conclusion's data attribute).
	Attribute string
	// Tuples lists the involved data tuple indexes (one for constant CFDs
	// and MDs, two for variable CFDs).
	Tuples []int
	// Master is the master tuple index for MD violations, -1 otherwise.
	Master int
	// Detail is a human-readable description of the violation.
	Detail string
}

// String returns the violation's human-readable detail line.
func (v Violation) String() string { return v.Detail }

// maxStoredPerRule bounds how many violations of one rule a Report
// materializes. The per-rule and per-kind counts stay exact regardless —
// only the Violation structs beyond the cap are dropped (and tallied in
// Truncated) — so Clean, RuleClean and the summary are unaffected while a
// pathologically dirty instance (up to |D|·|Dm| violating MD pairs) cannot
// exhaust memory building its report.
const maxStoredPerRule = 100

// Report is the structured outcome of a Checker pass.
type Report struct {
	// Violations lists remaining violations, grouped by rule in rule order,
	// capped at maxStoredPerRule per rule; Truncated counts the rest.
	Violations []Violation
	// Truncated is the number of violations counted but not materialized
	// because their rule exceeded maxStoredPerRule.
	Truncated int

	byRule    map[string]int // exact violations per rule name
	cfds, mds int            // exact counts by dependency kind
}

// Clean reports whether the relation satisfies every checked rule.
func (r *Report) Clean() bool { return r.cfds == 0 && r.mds == 0 }

// NumCFD and NumMD return the exact violation counts by dependency kind,
// including any violations dropped by the per-rule cap.
func (r *Report) NumCFD() int { return r.cfds }
func (r *Report) NumMD() int  { return r.mds }

// CFDViolations returns the materialized subset of violations of CFD rules.
func (r *Report) CFDViolations() []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Kind != rule.MatchMD {
			out = append(out, v)
		}
	}
	return out
}

// MDViolations returns the materialized subset of violations of MD rules.
func (r *Report) MDViolations() []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Kind == rule.MatchMD {
			out = append(out, v)
		}
	}
	return out
}

// RuleClean reports whether the named rule has no violations.
func (r *Report) RuleClean(name string) bool { return r.byRule[name] == 0 }

// String renders the report, one violation per line, with a summary header.
func (r *Report) String() string {
	if r.Clean() {
		return "certified clean: no violations\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "dirty: %d CFD violations, %d MD violations\n", r.cfds, r.mds)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "violation: %s\n", v.Detail)
	}
	if r.Truncated > 0 {
		fmt.Fprintf(&b, "... and %d more violations not shown\n", r.Truncated)
	}
	return b.String()
}

// Checker certifies the output of the cleaning pipeline: it re-derives,
// from the repaired relation alone, which rules still have violations and
// returns them as a structured Report. The engine's Finish uses it as the
// termination proof behind Result.Resolved/Unresolved, cmd/uniclean's
// -certify flag prints it, and the test suite uses it as the oracle for
// randomized instances.
type Checker struct {
	rules  []rule.Rule
	master *relation.Relation
}

// NewChecker builds a checker over the given rules. master may be nil, in
// which case MD rules are vacuously satisfied (there is nothing to match
// against), mirroring the engine's behavior.
func NewChecker(rules []rule.Rule, master *relation.Relation) *Checker {
	return &Checker{rules: rules, master: master}
}

// Check certifies d against every rule and returns the violation report.
// It never mutates d.
func (c *Checker) Check(d *relation.Relation) *Report {
	rep := &Report{byRule: make(map[string]int)}
	for _, r := range c.rules {
		name := r.Name()
		switch r.Kind {
		case rule.MatchMD:
			if c.master == nil {
				continue
			}
			// Streamed rather than materialized: md.Violations would build
			// the worst-case O(|D|·|Dm|) pair slice before the per-rule cap
			// could drop anything.
			c.visitMDViolations(d, r.MD, func(v md.Violation) bool {
				if rep.byRule[name] >= maxStoredPerRule {
					// Beyond the cap: tally without formatting the detail.
					rep.count(name, r.Kind)
					rep.Truncated++
					return true
				}
				// A violating (t, s) pair disagrees on at least one
				// conclusion pair; report the first one that does, so the
				// report stays right even for MDs that were not normalized
				// to a single-pair conclusion.
				p := r.MD.RHS[0]
				for _, q := range r.MD.RHS {
					if d.Tuples[v.T].Values[q.DataAttr] != c.master.Tuples[v.S].Values[q.MasterAttr] {
						p = q
						break
					}
				}
				attr := d.Schema.Attrs[p.DataAttr]
				rep.add(Violation{
					Rule: name, Kind: r.Kind, Attribute: attr,
					Tuples: []int{v.T}, Master: v.S,
					Detail: fmt.Sprintf("%s: t%d[%s] = %q, matched master tuple %d says %q",
						name, v.T, attr, d.Tuples[v.T].Values[p.DataAttr],
						v.S, c.master.Tuples[v.S].Values[p.MasterAttr]),
				})
				return true
			})
		default:
			for _, v := range cfd.Violations(d, r.CFD) {
				tuples := []int{v.T1}
				if v.T2 >= 0 {
					tuples = append(tuples, v.T2)
				}
				rep.add(Violation{
					Rule: name, Kind: r.Kind,
					Attribute: d.Schema.Attrs[v.Attr],
					Tuples:    tuples, Master: -1,
					Detail: v.String(),
				})
			}
		}
	}
	return rep
}

// visitMDViolations streams the violating (t, s) pairs of m in (T, S) order.
// When the MD has equality clauses, candidates come from an equality
// blocking index over the master relation instead of the O(|D|·|Dm|) nested
// scan of md.VisitViolations — certification was otherwise the dominant cost
// of a whole Run on indexed workloads. The enumeration is exact: index
// buckets hold ascending master indexes, the full premise is re-verified on
// every candidate, and a pair outside the candidate set fails its equality
// clause, so the same violations appear in the same order as the scan.
func (c *Checker) visitMDViolations(d *relation.Relation, m *md.MD, fn func(md.Violation) bool) {
	eqData, eqMaster := eqClauses(m)
	if len(eqData) == 0 {
		md.VisitViolations(d, c.master, m, fn)
		return
	}
	idx := buildEqIndex(c.master, eqMaster)
	for i, t := range d.Tuples {
		for _, j := range idx[t.Key(eqData)] {
			s := c.master.Tuples[j]
			if m.MatchLHS(t, s) && !m.RHSHolds(t, s) {
				if !fn(md.Violation{MD: m, T: i, S: j}) {
					return
				}
			}
		}
	}
}

func (r *Report) add(v Violation) {
	r.count(v.Rule, v.Kind)
	if r.byRule[v.Rule] > maxStoredPerRule {
		r.Truncated++
		return
	}
	r.Violations = append(r.Violations, v)
}

// count tallies a violation without materializing it.
func (r *Report) count(ruleName string, kind rule.Kind) {
	r.byRule[ruleName]++
	if kind == rule.MatchMD {
		r.mds++
	} else {
		r.cfds++
	}
}
