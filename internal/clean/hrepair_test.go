package clean

import (
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/rule"
)

// hrepairInput parses a rule set over R(name, b, code) with master
// M(name, code) and builds two below-eta tuples whose code conflict only
// appears once hRepair applies the constant CFD.
func hrepairInput(t *testing.T, withMaster bool) (*relation.Relation, *relation.Relation, []rule.Rule) {
	t.Helper()
	dschema := relation.NewSchema("R", "name", "b", "code")
	mschema := relation.NewSchema("M", "name", "code")
	data := relation.New(dschema)
	data.Append("bob", "0", "k1")
	data.Append("bob", "5", "k1")
	data.SetAllConf(0.5)

	var master *relation.Relation
	text := `
cfd b=5 -> code=k2
cfd name -> code
`
	if withMaster {
		master = relation.New(mschema)
		master.Append("bob", "k2")
		master.SetAllConf(1)
		text += "md name=name -> code=code\n"
	}
	cfds, mds, err := rule.ParseRules(dschema, mschema, text)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	return data, master, rule.Derive(cfds, mds)
}

// TestHRepairMasterTieBreak: the constant CFD rewrites t1's code to k2,
// creating a variable-CFD tie between k1 and k2 (equal confidence, equal
// count) that plain lexicographic order would resolve to k1. The master
// value reachable through the MD blocking index must win the tie instead,
// settling the whole group on k2.
func TestHRepairMasterTieBreak(t *testing.T) {
	data, master, rules := hrepairInput(t, true)
	res := Run(data, master, rules, DefaultOptions())
	for i := 0; i < 2; i++ {
		if got := res.Data.Tuples[i].Values[2]; got != "k2" {
			t.Errorf("t%d code = %q, want master-supported %q", i, got, "k2")
		}
	}
	if got := res.Data.Tuples[0].Marks[2]; got != relation.FixPossible {
		t.Errorf("t0 code mark = %v, want possible", got)
	}
	if !res.Report.Clean() {
		t.Errorf("report not clean:\n%s", res.Report)
	}
	for _, f := range res.PossibleFixes() {
		if f.Conf >= DefaultOptions().Eta {
			t.Errorf("possible fix %v carries confidence >= eta", f)
		}
	}
}

// TestHRepairLexicographicWithoutMaster: the same tie with no master data
// falls back to the lexicographically smaller value; the pipeline must
// still terminate in a certified-consistent instance (the constant CFD's
// tuple is eventually retracted).
func TestHRepairLexicographicWithoutMaster(t *testing.T) {
	data, _, rules := hrepairInput(t, false)
	res := Run(data, nil, rules, DefaultOptions())
	if got := res.Data.Tuples[0].Values[2]; got != "k1" {
		t.Errorf("t0 code = %q, want lexicographic %q", got, "k1")
	}
	if !res.Report.Clean() {
		t.Errorf("report not clean:\n%s", res.Report)
	}
}

// TestHRepairBudgetPreventsOscillation: two constant CFDs fighting over the
// same cell at below-eta confidence would flip it forever; the per-cell
// budget must cut the oscillation and the retraction fallback must dissolve
// the loser, terminating in a certified-consistent instance.
func TestHRepairBudgetPreventsOscillation(t *testing.T) {
	schema := relation.NewSchema("R", "A", "B")
	data := relation.New(schema)
	data.Append("1", "zzz")
	data.SetAllConf(0.5)
	cfds, _, err := rule.ParseRules(schema, nil, "cfd A=1 -> B=x\ncfd A=1 -> B=y")
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	opts := DefaultOptions()
	opts.HBudget = 2
	res := Run(data, nil, rule.Derive(cfds, nil), opts)
	if !res.Report.Clean() {
		t.Fatalf("report not clean:\n%s", res.Report)
	}
	if got := res.Data.Tuples[0].Values[0]; !relation.IsNull(got) {
		t.Errorf("A = %q, want null: retraction is the only consistent outcome", got)
	}
	writes := 0
	for _, f := range res.PossibleFixes() {
		if f.Attribute == "B" {
			writes++
		}
	}
	if writes > opts.HBudget {
		t.Errorf("%d writes to B exceed the budget %d", writes, opts.HBudget)
	}
}

// TestCheckerStructuredReport exercises the Checker directly on a dirty
// relation: violations must carry the rule name, kind, attribute and tuple
// indexes, RuleClean must partition the rules, and the rendering must list
// every violation.
func TestCheckerStructuredReport(t *testing.T) {
	data, master, rules := figure1(t)
	rep := NewChecker(rules, master).Check(data)
	if rep.Clean() {
		t.Fatal("the dirty Figure 1 instance must not certify clean")
	}
	cv, mv := rep.CFDViolations(), rep.MDViolations()
	if len(cv) == 0 || len(mv) == 0 {
		t.Fatalf("want both CFD and MD violations, got %d/%d", len(cv), len(mv))
	}
	// t1 has AC=131 but city=Ldn: the cfd1 constant violation.
	found := false
	for _, v := range cv {
		if v.Rule == "cfd1" && v.Kind == rule.ConstantCFD && v.Attribute == "city" &&
			len(v.Tuples) == 1 && v.Tuples[0] == 1 && v.Master == -1 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing structured cfd1 violation on t1[city], got %+v", cv)
	}
	for _, v := range mv {
		if v.Kind != rule.MatchMD || v.Master < 0 {
			t.Errorf("MD violation %+v lacks a master tuple", v)
		}
	}
	if clean, known := rep.RuleClean("cfd1"); clean || !known {
		t.Errorf("RuleClean(cfd1) = (%v, %v) on a checked, violated rule", clean, known)
	}
	if clean, known := rep.RuleClean("no-such-rule"); clean || known {
		t.Errorf("RuleClean on an unchecked name = (%v, %v); a typo must not read as certified clean", clean, known)
	}
	s := rep.String()
	if !strings.Contains(s, "dirty:") || !strings.Contains(s, "cfd1:") {
		t.Errorf("report rendering incomplete:\n%s", s)
	}

	// After the pipeline the same checker must certify the output.
	res := Run(data, master, rules, DefaultOptions())
	if rep := NewChecker(rules, master).Check(res.Data); !rep.Clean() {
		t.Errorf("pipeline output not certified:\n%s", rep)
	} else if got := rep.String(); !strings.Contains(got, "certified clean") {
		t.Errorf("clean rendering = %q", got)
	}
}

// TestHRepairFrozenDisagreementRetractsMinority: when deterministic fixes
// disagree within one variable-CFD group, only the members frozen at
// minority values are retracted from the rule's scope; the plurality frozen
// value's tuples keep their data and the group still certifies clean.
func TestHRepairFrozenDisagreementRetractsMinority(t *testing.T) {
	dschema := relation.NewSchema("R", "K", "B", "A")
	data := relation.New(dschema)
	add := func(k, b, a string, kconf float64) {
		tp := data.Append(k, b, a)
		tp.Conf[0], tp.Conf[1], tp.Conf[2] = kconf, 0.9, 0.5
	}
	add("k", "1", "x", 0.9)
	add("k", "1", "x", 0.9)
	add("k", "2", "y", 0.5) // untrusted K: the only eligible retraction site

	cfds, _, err := rule.ParseRules(dschema, nil, `
cfd B=1 -> A=x
cfd B=2 -> A=y
cfd K -> A
`)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	res := Run(data, nil, rule.Derive(cfds, nil), DefaultOptions())

	for i := 0; i < 2; i++ {
		if got := res.Data.Tuples[i]; got.Values[0] != "k" || got.Values[2] != "x" {
			t.Errorf("t%d = %v, want majority tuple left intact", i, got.Values)
		}
	}
	t2 := res.Data.Tuples[2]
	if !relation.IsNull(t2.Values[0]) {
		t.Errorf("t2[K] = %q, want null (retracted from the group)", t2.Values[0])
	}
	if t2.Values[2] != "y" {
		t.Errorf("t2[A] = %q, want the frozen %q kept", t2.Values[2], "y")
	}
	if !res.Report.Clean() {
		t.Errorf("report not clean:\n%s", res.Report)
	}
}
