package clean

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/relation"
)

// cellSnap is one cell's full state, captured for bit-exact comparison: the
// fault property promises a failed run leaves the caller's relation with
// every value, confidence and mark unchanged.
type cellSnap struct {
	val  string
	conf float64
	mark relation.FixMark
}

func snapshot(d *relation.Relation) [][]cellSnap {
	out := make([][]cellSnap, d.Len())
	for i, t := range d.Tuples {
		row := make([]cellSnap, len(t.Values))
		for a := range t.Values {
			row[a] = cellSnap{t.Values[a], t.Conf[a], t.Marks[a]}
		}
		out[i] = row
	}
	return out
}

// faultMode is one engine configuration the fault sweep runs under: the
// sequential default, and the forced-pool configuration that pushes every
// nonempty worklist through the worker pool so the containment and rewind
// machinery in runParallel/fanOut is actually on the hook.
type faultMode struct {
	name string
	opts Options
}

func faultModes() []faultMode {
	seq := DefaultOptions()
	pool := DefaultOptions()
	pool.Workers = 4
	pool.SeqCutoff = -1
	return []faultMode{{"seq", seq}, {"pool", pool}}
}

// faultConfig is one armed injector setup of the sweep.
type faultConfig struct {
	name  string
	pools bool // pool-only sites: skip under the sequential mode
	rules []fault.Rule
}

func faultConfigs() []faultConfig {
	return []faultConfig{
		{"panic-apply", false, []fault.Rule{{Site: fault.SiteApply, Kind: fault.Panic, Rate: 0.02}}},
		{"panic-seed", false, []fault.Rule{{Site: fault.SiteSeed, Kind: fault.Panic, Rate: 0.05}}},
		{"panic-certify", false, []fault.Rule{{Site: fault.SiteCertify, Kind: fault.Panic, Rate: 0.1}}},
		{"cancel-apply", false, []fault.Rule{{Site: fault.SiteApply, Kind: fault.Cancel, Rate: 0.01}}},
		{"delay-apply", false, []fault.Rule{{Site: fault.SiteApply, Kind: fault.Delay, Rate: 0.01}}},
		{"panic-sched", true, []fault.Rule{{Site: fault.SiteSched, Kind: fault.Panic, Rate: 0.05}}},
		{"cancel-sched", true, []fault.Rule{{Site: fault.SiteSched, Kind: fault.Cancel, Rate: 0.05}}},
		{"delay-sched", true, []fault.Rule{{Site: fault.SiteSched, Kind: fault.Delay, Rate: 0.05}}},
	}
}

// typedFailure reports whether err is one of the engine's documented failure
// shapes: the cancellation sentinels or a contained panic.
func typedFailure(err error) bool {
	var we *WorkerError
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline) || errors.As(err, &we)
}

// TestPropertyFaultInjection is the crash-consistency oracle of the
// robustness work: over the seeded dirty instances, every injected fault —
// panics in appliers, seeding and certification, scheduling delays,
// injected cancellations — must leave the run in one of exactly two states:
//
//   - it fails with a typed error (ErrCanceled, ErrDeadline, *WorkerError)
//     and the caller's input relation is bit-unchanged, or
//   - it completes, and its Report and fix trace are byte-identical to the
//     fault-free baseline (delays in particular may never change anything).
//
// A partially applied round, a half-torn relation, or an untyped error is a
// property violation. The sweep runs both the sequential and the forced-pool
// engine; CI runs it under -race (the fault-sweep job).
func TestPropertyFaultInjection(t *testing.T) {
	seeds := int64(400)
	if testing.Short() {
		seeds = 60
	}
	configs := faultConfigs()
	for _, mode := range faultModes() {
		t.Run(mode.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				in := genInstance(seed)

				base := Run(in.relation(nil), nil, in.rules, mode.opts)
				baseReport := base.Report.String()

				for _, cfg := range configs {
					if cfg.pools && mode.opts.Workers <= 1 {
						continue
					}
					data := in.relation(nil)
					before := snapshot(data)

					inj := fault.New(seed, cfg.rules...)
					ctx, cancel := context.WithCancel(context.Background())
					inj.OnCancel(cancel)
					opts := mode.opts
					opts.Fault = inj
					res, err := RunContext(ctx, data, nil, in.rules, opts)
					cancel()

					if !reflect.DeepEqual(snapshot(data), before) {
						t.Fatalf("seed %d, %s: input relation mutated (err = %v)", seed, cfg.name, err)
					}
					if err != nil {
						if !typedFailure(err) {
							t.Fatalf("seed %d, %s: untyped failure %T: %v", seed, cfg.name, err, err)
						}
						continue
					}
					if got := res.Report.String(); got != baseReport {
						t.Fatalf("seed %d, %s: completed run diverges from fault-free report\n got: %s\nwant: %s",
							seed, cfg.name, got, baseReport)
					}
					if !reflect.DeepEqual(res.Fixes, base.Fixes) {
						t.Fatalf("seed %d, %s: completed run's fix trace diverges from baseline", seed, cfg.name)
					}
				}
			}
		})
	}
}

// TestRunContextPreCanceled pins prompt cancellation: a context canceled
// before the run starts returns ErrCanceled without touching the input.
func TestRunContextPreCanceled(t *testing.T) {
	in := genInstance(11)
	data := in.relation(nil)
	before := snapshot(data)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, data, nil, in.rules, DefaultOptions())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Fatal("a failed run must not return a Result")
	}
	if !reflect.DeepEqual(snapshot(data), before) {
		t.Fatal("input relation mutated by canceled run")
	}
}

// TestRunContextHardDeadline pins the typed mapping of a context deadline.
func TestRunContextHardDeadline(t *testing.T) {
	in := genInstance(12)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunContext(ctx, in.relation(nil), nil, in.rules, DefaultOptions())
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

// TestWorkerErrorCoordinates pins the structured failure: a guaranteed
// applier panic on the pool path surfaces as a *WorkerError naming the
// phase, the rule, and the work item, and unwraps to the injected fault.
func TestWorkerErrorCoordinates(t *testing.T) {
	in := genInstance(13)
	opts := DefaultOptions()
	opts.Workers = 4
	opts.SeqCutoff = -1
	opts.Fault = fault.New(13, fault.Rule{Site: fault.SiteApply, Kind: fault.Panic, Rate: 1})
	_, err := RunContext(context.Background(), in.relation(nil), nil, in.rules, opts)
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WorkerError", err)
	}
	// The propagated failure names the phase, the rule and a worklist item.
	// Which items record failures before the abort flag drains the pool is
	// scheduling-dependent (the lowest-index choice is deterministic over
	// the recorded set, not over the schedule), so the item is asserted
	// present, not pinned to 0.
	if we.Phase != "cRepair" || we.Rule == "" || we.Item < 0 {
		t.Fatalf("WorkerError coordinates = phase %q rule %q item %d, want cRepair/<rule>/>=0",
			we.Phase, we.Rule, we.Item)
	}
	var inj *fault.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("WorkerError does not unwrap to the injected fault: %v", err)
	}
	if len(we.Stack) == 0 {
		t.Fatal("WorkerError carries no stack trace")
	}
}

// TestMaxFixesDegrades pins graceful degradation: a MaxFixes budget stops
// the engine at a round boundary with a completed Result whose Report is
// flagged Degraded and still truthful — an independent Checker pass over the
// returned relation counts exactly the violations the Report claims.
func TestMaxFixesDegrades(t *testing.T) {
	// Find an instance whose full clean needs several fixes, so a budget of
	// one provably cuts it short.
	var in *propInstance
	for seed := int64(0); seed < 50; seed++ {
		c := genInstance(seed)
		if base := Run(c.relation(nil), nil, c.rules, DefaultOptions()); len(base.Fixes) >= 3 {
			in = c
			break
		}
	}
	if in == nil {
		t.Fatal("no corpus instance needs >= 3 fixes")
	}
	opts := DefaultOptions()
	opts.MaxFixes = 1
	res, err := RunContext(context.Background(), in.relation(nil), nil, in.rules, opts)
	if err != nil {
		t.Fatalf("degraded run must complete, got %v", err)
	}
	if !res.Degraded || res.DegradeReason != "max-fixes" {
		t.Fatalf("Degraded = %v (%q), want true (max-fixes)", res.Degraded, res.DegradeReason)
	}
	if !res.Report.Degraded || res.Report.DegradeReason != "max-fixes" {
		t.Fatal("Report not flagged Degraded")
	}
	recheck := NewChecker(in.rules, nil).Check(res.Data)
	if recheck.NumCFD() != res.Report.NumCFD() || recheck.NumMD() != res.Report.NumMD() {
		t.Fatalf("degraded report is not truthful: claims %d/%d violations, recheck finds %d/%d",
			res.Report.NumCFD(), res.Report.NumMD(), recheck.NumCFD(), recheck.NumMD())
	}
	// Degradation is resumable: a budget-free run over the degraded output
	// finishes the job.
	resume := Run(res.Data, nil, in.rules, DefaultOptions())
	if !resume.Report.Clean() {
		t.Fatalf("resumed run did not reach a clean instance:\n%s", resume.Report)
	}
}

// TestSoftDeadlineDegrades pins the wall-clock budget: an already-expired
// soft deadline yields a completed, Degraded, truthful Report — not an
// error — with zero fixes proposed.
func TestSoftDeadlineDegrades(t *testing.T) {
	in := genInstance(14)
	opts := DefaultOptions()
	opts.Deadline = time.Nanosecond
	res, err := RunContext(context.Background(), in.relation(nil), nil, in.rules, opts)
	if err != nil {
		t.Fatalf("soft deadline must degrade, not fail: %v", err)
	}
	if !res.Degraded || res.DegradeReason != "deadline" {
		t.Fatalf("Degraded = %v (%q), want true (deadline)", res.Degraded, res.DegradeReason)
	}
	if len(res.Fixes) != 0 {
		t.Fatalf("expired-at-start budget proposed %d fixes, want 0", len(res.Fixes))
	}
	recheck := NewChecker(in.rules, nil).Check(res.Data)
	if recheck.NumCFD() != res.Report.NumCFD() {
		t.Fatal("degraded report disagrees with an independent recheck")
	}
}

// TestCheckContextCanceled pins the checker's own cancellation path.
func TestCheckContextCanceled(t *testing.T) {
	in := genInstance(15)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewChecker(in.rules, nil).CheckContext(ctx, in.relation(nil))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestFaultSweepFires sanity-checks the sweep itself: over the corpus, each
// armed kind actually fires somewhere, so a green property run cannot mean
// "the hooks never triggered".
func TestFaultSweepFires(t *testing.T) {
	fired := map[string]bool{}
	for seed := int64(0); seed < 40; seed++ {
		in := genInstance(seed)
		for _, cfg := range faultConfigs() {
			if cfg.pools {
				continue
			}
			inj := fault.New(seed, cfg.rules...)
			ctx, cancel := context.WithCancel(context.Background())
			inj.OnCancel(cancel)
			opts := DefaultOptions()
			opts.Fault = inj
			_, _ = RunContext(ctx, in.relation(nil), nil, in.rules, opts)
			cancel()
			for _, r := range cfg.rules {
				if inj.Fired(r.Kind) > 0 {
					fired[fmt.Sprintf("%s/%s", r.Site, r.Kind)] = true
				}
			}
		}
	}
	for _, want := range []string{"apply/panic", "seed/panic", "certify/panic", "apply/cancel", "apply/delay"} {
		if !fired[want] {
			t.Errorf("fault %s never fired across the corpus; the sweep is not exercising it", want)
		}
	}
}
