package clean

import (
	"sort"

	"repro/internal/cfd"
	"repro/internal/relation"
	"repro/internal/rule"
)

// This file implements the incremental fixpoint core: instead of re-applying
// every rule to every tuple on every round, the engine maintains (1) a
// reverse dependency map from attributes to the rules whose premise or
// conclusion reads them, (2) a persistent per-rule group index for variable
// CFDs, kept in sync under every engine write rather than rebuilt by
// cfd.Groups each round, and (3) per-phase worklists of dirty tuples and
// groups. The first round of each phase seeds the worklist with everything;
// afterwards a rule is handed exactly the tuples/groups whose read attributes
// were written since the rule last saw them.
//
// Correctness rests on a quiescence argument checked by the equivalence
// property suite: a tuple or group none of whose read cells (value,
// confidence or mark) changed since a rule last processed it cannot newly
// fire that rule — re-processing it is a no-op that records nothing — so
// skipping it leaves Fixes, Asserts, Conflicts and the certified Report
// byte-for-byte identical to the full-rescan reference (Options.Rescan).
//
// Group keys are interned: each distinct LHS projection string maps to a
// dense int32 symbol once, and the index, the dirty sets and the per-tuple
// key cache all hash and compare symbols. Key strings were the write path's
// hot spot — every noteWrite to an LHS attribute rebuilt the projection
// string and re-hashed it into the groups map plus one dirty map per
// consumer phase.

// Worklist consumer phases. cRepair and hRepair each consume tuple- and
// group-level dirtiness independently; eRepair consumes group-level
// dirtiness only (it re-keys affected groups in its entropy tree).
const (
	phaseC = iota
	phaseE
	phaseH
	numPhases
)

// symtab interns the LHS projection keys of one variable CFD: key strings
// are stored once and handled as dense int32 symbols afterwards.
type symtab struct {
	ids  map[string]int32
	strs []string
	buf  []byte // reusable key-building scratch; hits allocate nothing
}

func newSymtab() *symtab { return &symtab{ids: make(map[string]int32)} }

// intern returns the symbol of t's projection on attrs.
func (s *symtab) intern(t *relation.Tuple, attrs []int) int32 {
	s.buf = relation.AppendKey(s.buf[:0], t, attrs)
	if id, ok := s.ids[string(s.buf)]; ok {
		return id
	}
	key := string(s.buf)
	id := int32(len(s.strs))
	s.ids[key] = id
	s.strs = append(s.strs, key)
	return id
}

// str returns the key string behind a symbol.
func (s *symtab) str(id int32) string { return s.strs[id] }

// dirtySet is a generation-stamped dirty-tuple set: one per (per-tuple rule,
// consumer phase). It replaced map[int]bool after profiles showed
// mapassign_fast64 dominating the write path (ROADMAP (i)) — noteWrite marks
// a tuple on every engine write, so marking must be an array stamp, not a
// hash insert. A tuple is marked when its stamp equals the current
// generation; draining bumps the generation instead of clearing, so there is
// no per-round reallocation or sweep.
type dirtySet struct {
	stamp []uint64 // per tuple: generation at which it was last marked
	gen   uint64   // current generation; stamp[i] == gen means marked
	items []int    // marked tuples in insertion order, deduped via stamp
}

func newDirtySet(n int) *dirtySet {
	return &dirtySet{stamp: make([]uint64, n), gen: 1}
}

// mark adds tuple i to the set; re-marking is a cheap no-op.
func (s *dirtySet) mark(i int) {
	if s.stamp[i] != s.gen {
		s.stamp[i] = s.gen
		s.items = append(s.items, i)
	}
}

// take drains the set and returns the marked tuples in ascending order —
// the order a full scan visits them, as takeTuples always promised.
func (s *dirtySet) take() []int {
	if len(s.items) == 0 {
		return nil
	}
	out := make([]int, len(s.items))
	copy(out, s.items)
	sort.Ints(out)
	s.clear()
	return out
}

// clear empties the set in O(1) by advancing the generation.
func (s *dirtySet) clear() {
	s.gen++
	s.items = s.items[:0]
}

// igroup is one LHS-equal group of a variable CFD in the persistent index.
// Members are tuple indexes kept sorted ascending, matching the relation
// order that cfd.Groups produces.
type igroup struct {
	key     int32
	members []int
}

func (g *igroup) insert(i int) {
	k := sort.SearchInts(g.members, i)
	g.members = append(g.members, 0)
	copy(g.members[k+1:], g.members[k:])
	g.members[k] = i
}

func (g *igroup) remove(i int) {
	k := sort.SearchInts(g.members, i)
	if k < len(g.members) && g.members[k] == i {
		g.members = append(g.members[:k], g.members[k+1:]...)
	}
}

// groupIndex is the persistent LHS-key -> members index of one variable CFD,
// equivalent at every instant to cfd.Groups over the current relation state.
// It additionally tracks, per consumer phase, the keys of groups touched by
// a write since that phase last took them.
type groupIndex struct {
	c      *cfd.CFD
	syms   *symtab
	member []bool  // per tuple: currently matches the LHS pattern
	key    []int32 // per tuple: current group key symbol, valid when member
	groups map[int32]*igroup
	dirty  [numPhases]map[int32]bool
}

func newGroupIndex(c *cfd.CFD, d *relation.Relation) *groupIndex {
	gi := &groupIndex{
		c:      c,
		syms:   newSymtab(),
		member: make([]bool, d.Len()),
		key:    make([]int32, d.Len()),
		groups: make(map[int32]*igroup),
	}
	for p := range gi.dirty {
		gi.dirty[p] = make(map[int32]bool)
	}
	for i, t := range d.Tuples {
		if c.MatchLHS(t) {
			gi.place(i, gi.syms.intern(t, c.LHS))
		}
	}
	return gi
}

func (gi *groupIndex) place(i int, key int32) {
	g := gi.groups[key]
	if g == nil {
		g = &igroup{key: key}
		gi.groups[key] = g
	}
	g.insert(i)
	gi.member[i], gi.key[i] = true, key
}

func (gi *groupIndex) markDirty(key int32) {
	for p := range gi.dirty {
		gi.dirty[p][key] = true
	}
}

// update re-derives tuple i's membership after a write to attribute a and
// marks the affected group keys dirty for every consumer phase. Confidence-
// and mark-only writes (asserts) keep the key but still dirty the group,
// since they change premise trust and resolution choices.
func (gi *groupIndex) update(i, a int, t *relation.Tuple) {
	if hasAttr(gi.c.LHS, a) {
		newMember := gi.c.MatchLHS(t)
		newKey := int32(-1)
		if newMember {
			newKey = gi.syms.intern(t, gi.c.LHS)
		}
		switch {
		case newMember != gi.member[i] || (newMember && newKey != gi.key[i]):
			if gi.member[i] {
				old := gi.groups[gi.key[i]]
				old.remove(i)
				if len(old.members) == 0 {
					delete(gi.groups, old.key)
				}
				gi.markDirty(gi.key[i])
			}
			gi.member[i], gi.key[i] = false, -1
			if newMember {
				gi.place(i, newKey)
				gi.markDirty(newKey)
			}
		case gi.member[i]:
			gi.markDirty(gi.key[i])
		}
	}
	if a == gi.c.RHS && gi.member[i] {
		gi.markDirty(gi.key[i])
	}
}

// takeKeys drains and returns the dirty group keys of one consumer phase,
// in ascending symbol order. Every consumer happens to derive
// order-independent state from the keys (AVL entries keyed by (entropy, id),
// sorted group listings, summed counters) — PR 4 audited exactly that by
// hand — but sorting removes the argument: the keys leave here deterministic
// and no future consumer can silently start depending on map order.
func (gi *groupIndex) takeKeys(phase int) []int32 {
	if len(gi.dirty[phase]) == 0 {
		return nil
	}
	out := make([]int32, 0, len(gi.dirty[phase]))
	for k := range gi.dirty[phase] { //det:ok maporder keys are sorted ascending below before anyone sees them
		out = append(out, k)
	}
	gi.dirty[phase] = make(map[int32]bool)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// scheduler is the engine's worklist state: the reverse dependency map and,
// per rule, either a persistent group index (variable CFDs) or per-phase
// dirty tuple sets (constant CFDs and MDs).
type scheduler struct {
	rules     []rule.Rule
	attrRules [][]int       // attribute -> indexes of rules reading it
	gidx      []*groupIndex // parallel to rules; nil unless VariableCFD
	lhsSet    []map[int]bool
	dirtyC    []*dirtySet // per-tuple rules: cRepair consumer worklist
	dirtyH    []*dirtySet // per-tuple rules: hRepair consumer worklist

	// attrHExtra maps an attribute to the variable-CFD rules whose hRepair
	// target choice reads it indirectly: hTarget breaks ties by master-data
	// support, probing the MD blocking indexes with the group members'
	// premise cells. A write to an MD premise attribute can therefore flip
	// the repair target of a variable CFD whose RHS that MD writes, even
	// though the attribute is in neither the CFD's LHS nor RHS — so it must
	// re-enqueue the member's group for the hRepair consumer.
	attrHExtra [][]int

	// The per-tuple applier currently running, or activeRule < 0. A write
	// by a per-tuple rule to a pure-conclusion attribute (one not in its own
	// premise) of the tuple it is processing is not re-enqueued for that
	// rule in the writing phase: the applier runs its full switch, so
	// re-processing the tuple unchanged is a no-op — the written cell now
	// matches the target and is frozen or budget-tracked, and conflicts are
	// deduplicated. Writes to premise attributes, writes to other tuples,
	// and the other phase's marks are never skipped.
	activePhase, activeRule, activeTuple int
}

// newScheduler computes the reverse dependency map once from the ordered rule
// set and builds the variable-CFD group indexes over the (cloned) data. A
// rule "reads" its premise attributes and its conclusion attribute: a write
// to either can change whether and how the rule fires on the tuple.
func newScheduler(rules []rule.Rule, d *relation.Relation) *scheduler {
	s := &scheduler{
		rules:      rules,
		attrRules:  make([][]int, d.Schema.Arity()),
		gidx:       make([]*groupIndex, len(rules)),
		lhsSet:     make([]map[int]bool, len(rules)),
		dirtyC:     make([]*dirtySet, len(rules)),
		dirtyH:     make([]*dirtySet, len(rules)),
		activeRule: -1,
	}
	for ri, r := range rules {
		s.lhsSet[ri] = make(map[int]bool)
		for _, a := range r.LHSAttrs() {
			s.lhsSet[ri][a] = true
		}
		for a, in := range ruleReadSet(r, d.Schema.Arity()) {
			if in {
				s.attrRules[a] = append(s.attrRules[a], ri)
			}
		}
		if r.Kind == rule.VariableCFD {
			s.gidx[ri] = newGroupIndex(r.CFD, d)
		} else {
			s.dirtyC[ri] = newDirtySet(d.Len())
			s.dirtyH[ri] = newDirtySet(d.Len())
		}
	}
	s.attrHExtra = make([][]int, d.Schema.Arity())
	for ri, r := range rules {
		if r.Kind != rule.VariableCFD {
			continue
		}
		for _, m := range rules {
			if m.Kind != rule.MatchMD {
				continue
			}
			writesRHS := false
			for _, p := range m.MD.RHS {
				if p.DataAttr == r.CFD.RHS {
					writesRHS = true
				}
			}
			if !writesRHS {
				continue
			}
			for _, cl := range m.MD.LHS {
				a := cl.DataAttr
				if s.lhsSet[ri][a] || a == r.CFD.RHS || hasAttr(s.attrHExtra[a], ri) {
					continue // already a direct read, or already recorded
				}
				s.attrHExtra[a] = append(s.attrHExtra[a], ri)
			}
		}
	}
	return s
}

// setActive marks the per-tuple applier about to run; clearActive ends it.
func (s *scheduler) setActive(phase, ri, i int) {
	s.activePhase, s.activeRule, s.activeTuple = phase, ri, i
}

func (s *scheduler) clearActive() { s.activeRule = -1 }

// noteWrite propagates one cell write (i, a) — value, confidence or mark —
// to every rule reading a: per-tuple rules get the tuple enqueued for both
// the cRepair and hRepair consumers; variable CFDs get their group index
// updated and the affected groups marked dirty for all phases.
func (s *scheduler) noteWrite(i, a int, t *relation.Tuple) {
	for _, ri := range s.attrRules[a] {
		if gi := s.gidx[ri]; gi != nil {
			gi.update(i, a, t)
			continue
		}
		// hRepair only repairs CFD violations, so MD rules get no phaseH
		// marks — HRepair would never drain them.
		markC, markH := true, s.rules[ri].Kind == rule.ConstantCFD
		if ri == s.activeRule && i == s.activeTuple && !s.lhsSet[ri][a] {
			// Self-write to a pure-conclusion attribute: skip only the
			// writing phase's mark (see the activeRule field doc).
			if s.activePhase == phaseC {
				markC = false
			} else {
				markH = false
			}
		}
		if markC {
			s.dirtyC[ri].mark(i)
		}
		if markH {
			s.dirtyH[ri].mark(i)
		}
	}
	// Indirect hRepair reads: the write may flip a master tie-break for a
	// variable CFD whose groups do not otherwise read this attribute.
	for _, ri := range s.attrHExtra[a] {
		if gi := s.gidx[ri]; gi.member[i] {
			gi.dirty[phaseH][gi.key[i]] = true
		}
	}
}

func (s *scheduler) tupleSet(phase, ri int) *dirtySet {
	if phase == phaseH {
		return s.dirtyH[ri]
	}
	return s.dirtyC[ri]
}

// takeTuples drains the dirty tuples of a per-tuple rule for one consumer
// phase, in ascending tuple order — the order a full scan visits them.
func (s *scheduler) takeTuples(phase, ri int) []int {
	return s.tupleSet(phase, ri).take()
}

// clearTuples drops the phase's dirty marks for a per-tuple rule; a full
// scan about to visit every tuple calls it so the marks it covers are not
// re-processed next round.
func (s *scheduler) clearTuples(phase, ri int) {
	s.tupleSet(phase, ri).clear()
}

// takeGroups drains the dirty groups of a variable CFD for one consumer
// phase and returns snapshots of their member lists, ordered by first member
// — the order cfd.Groups yields them. Keys whose group dissolved since being
// marked are skipped.
func (s *scheduler) takeGroups(phase, ri int) [][]int {
	gi := s.gidx[ri]
	keys := gi.takeKeys(phase)
	if len(keys) == 0 {
		return nil
	}
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		if g := gi.groups[k]; g != nil && len(g.members) > 0 {
			out = append(out, append([]int(nil), g.members...))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// clearGroups drops the phase's dirty group marks of a variable CFD before a
// full scan covers them.
func (s *scheduler) clearGroups(phase, ri int) {
	s.gidx[ri].dirty[phase] = make(map[int32]bool)
}

// allGroups snapshots every group of a variable CFD, ordered by first
// member — the listing the seeding rounds iterate instead of re-grouping
// the whole relation with cfd.Groups. It is identical to that grouping at
// every instant (TestGroupIndexStaysExact pins this).
func (s *scheduler) allGroups(ri int) [][]int {
	gi := s.gidx[ri]
	out := make([][]int, 0, len(gi.groups))
	for _, g := range gi.groups { //det:ok maporder snapshots are re-sorted by first member below; first members are distinct since groups partition the relation
		out = append(out, append([]int(nil), g.members...))
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// resetE clears the eRepair consumer's group marks for every variable CFD.
// ERepair calls it before seeding its entropy tree from scratch, so that the
// marks it consumes afterwards reflect only its own resolutions.
func (s *scheduler) resetE() {
	for _, gi := range s.gidx {
		if gi != nil {
			gi.dirty[phaseE] = make(map[int32]bool)
		}
	}
}

// ruleReadSet returns, indexed by data attribute, whether rule r reads that
// column: its LHS attributes plus its RHS/conclusion data attributes (a
// CFD also re-reads its RHS column to decide whether a tuple violates; an
// MD compares the conclusion's data cell against master). This is the
// dependency set the scheduler's attrRules reverse map is built from, and
// the one the streaming update path diffs relations against to decide
// which rules a certified Report must re-check (see Engine.dirtyRules).
func ruleReadSet(r rule.Rule, arity int) []bool {
	reads := make([]bool, arity)
	for _, a := range r.LHSAttrs() {
		reads[a] = true
	}
	for _, a := range r.RHSAttrs() {
		reads[a] = true
	}
	return reads
}
