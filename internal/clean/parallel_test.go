package clean

import (
	"fmt"
	"testing"

	"repro/internal/cfd"
	"repro/internal/gen"
	"repro/internal/relation"
	"repro/internal/rule"
)

// TestParallelWorkerSweep pins the worker-count independence of the
// parallel applier layer: every worker count — including 1, which must
// take the inline sequential path (no pool is built) — produces results
// identical to the sequential incremental engine, down to the work
// counters, on both the randomized corpus and the MD-heavy figure1
// workload.
func TestParallelWorkerSweep(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8} {
		opts := DefaultOptions()
		opts.Workers = workers
		// Force every nonempty worklist through the pool: the corpus
		// instances are a handful of tuples, far under DefaultSeqCutoff,
		// and the sweep must exercise the parallel path, not the inline
		// fast path.
		opts.SeqCutoff = -1
		for seed := int64(0); seed < 25; seed++ {
			in := genInstance(seed)
			seq := Run(in.relation(nil), nil, in.rules, DefaultOptions())
			par := Run(in.relation(nil), nil, in.rules, opts)
			if d := diffParallel(par, seq); d != "" {
				t.Fatalf("seed %d, %d workers: %s", seed, workers, d)
			}
			if workers == 1 && par.WorkerVisits != nil {
				t.Fatalf("1 worker must not build a pool, got WorkerVisits %v", par.WorkerVisits)
			}
		}
		data, master, rules := figure1(t)
		seq := Run(data, master, rules, DefaultOptions())
		data, master, rules = figure1(t)
		par := Run(data, master, rules, opts)
		if d := diffParallel(par, seq); d != "" {
			t.Fatalf("figure1, %d workers: %s", workers, d)
		}
	}
}

// TestParallelDeterminism runs the parallel engine repeatedly on the same
// instances: the goroutine interleavings of the propose step and the map
// iteration order underneath the appliers vary run to run, and none of it
// may show in the result — the commit merge and the total-order tie-breaks
// are the only places ordering can come from.
func TestParallelDeterminism(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 4
	opts.SeqCutoff = -1
	for seed := int64(0); seed < 20; seed++ {
		in := genInstance(seed)
		first := Run(in.relation(nil), nil, in.rules, opts)
		for rep := 1; rep < 6; rep++ {
			again := Run(in.relation(nil), nil, in.rules, opts)
			if d := diffParallel(again, first); d != "" {
				t.Fatalf("seed %d, repetition %d: parallel run not deterministic: %s", seed, rep, d)
			}
		}
	}
}

// TestParallelRescanStaysSequential pins that the full-rescan reference
// engine ignores Workers: it is the correctness oracle, and must stay the
// plain sequential computation whatever the options say.
func TestParallelRescanStaysSequential(t *testing.T) {
	opts := DefaultOptions()
	opts.Rescan, opts.Workers = true, 8
	in := genInstance(7)
	res := Run(in.relation(nil), nil, in.rules, opts)
	if res.WorkerVisits != nil {
		t.Fatalf("rescan engine built a worker pool: WorkerVisits %v", res.WorkerVisits)
	}
	opts.Workers = 1
	ref := Run(in.relation(nil), nil, in.rules, opts)
	if d := diffParallel(res, ref); d != "" {
		t.Fatalf("rescan result depends on Workers: %s", d)
	}
}

// TestParallelWorkerVisitsReported pins the -bench reporting contract of
// the per-worker counters: with the pool on, WorkerVisits has one slot per
// worker and the slots sum to at most the total visits (trivial worklists
// run inline on the merge goroutine and are attributed to no worker).
func TestParallelWorkerVisitsReported(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 3
	opts.SeqCutoff = -1 // figure1 is tiny: bypass the inline fast path
	data, master, rules := figure1(t)
	res := Run(data, master, rules, opts)
	if len(res.WorkerVisits) != 3 {
		t.Fatalf("WorkerVisits = %v, want one slot per worker", res.WorkerVisits)
	}
	var sum int64
	for _, v := range res.WorkerVisits {
		sum += v
	}
	if sum <= 0 {
		t.Errorf("no visits attributed to any worker: %v", res.WorkerVisits)
	}
	if total := int64(res.TotalVisits()); sum > total {
		t.Errorf("worker visits %d exceed total visits %d", sum, total)
	}
}

// TestHTargetTieBreakDeterminism is the map-iteration-order audit pin for
// hTarget: its candidate loop ranges over a map, and only the strict total
// order of its comparison chain (confidence sum, count, master support,
// lexicographic) keeps the choice deterministic. Both tie levels — master
// support and lexicographic — are exercised many times in one process,
// where Go randomizes map iteration order per loop, and in parallel mode,
// where worker scheduling varies too. The workload is the hrepairInput one:
// the k1/k2 conflict only materializes inside the HRepair fixpoint, after
// eRepair (which has its own tie-break, pinned separately) has finished.
func TestHTargetTieBreakDeterminism(t *testing.T) {
	for _, workers := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Workers = workers
		opts.SeqCutoff = -1
		for rep := 0; rep < 30; rep++ {
			// Master-support tie-break: k1 and k2 tie on confidence and
			// count; the master value reachable through the MD blocking
			// index must beat the lexicographically smaller k1 every time.
			data, master, rules := hrepairInput(t, true)
			res := Run(data, master, rules, opts)
			for i := 0; i < 2; i++ {
				if got := res.Data.Tuples[i].Values[2]; got != "k2" {
					t.Fatalf("%d workers, rep %d: master tie-break chose %q, want k2", workers, rep, got)
				}
			}
			// Lexicographic tie-break: same tie without master data.
			data, _, rules = hrepairInput(t, false)
			res = Run(data, nil, rules, opts)
			if got := res.Data.Tuples[0].Values[2]; got != "k1" {
				t.Fatalf("%d workers, rep %d: lex tie-break chose %q, want k1", workers, rep, got)
			}
		}
	}
}

// TestResolveGroupTieBreakDeterminism is the audit pin for eRepair's
// resolveGroup, whose plurality loop also ranges over a map: on a full tie
// (equal count, equal confidence sum) the lexicographically smaller value
// must win every time.
func TestResolveGroupTieBreakDeterminism(t *testing.T) {
	dschema := relation.NewSchema("R", "B", "C")
	rules := rule.Derive([]*cfd.CFD{cfd.FD("fd", dschema, []string{"B"}, "C")}, nil)
	for rep := 0; rep < 100; rep++ {
		data := relation.New(dschema)
		data.Append("b1", "x2")
		data.Append("b1", "x1")
		data.SetAllConf(0.5)
		res := Run(data, nil, rules, DefaultOptions())
		for _, tp := range res.Data.Tuples {
			if got := tp.Values[1]; got != "x1" {
				t.Fatalf("rep %d: resolveGroup tie chose %q, want x1", rep, got)
			}
		}
	}
}

// TestParallelOuterFixpoint reruns the outer-fixpoint regression with the
// pool on: a possible fix whose derived confidence reaches eta enables a
// deterministic rule on a later pass, and the parallel engine must follow
// the same pass structure (the budget and freeze state span passes).
func TestParallelOuterFixpoint(t *testing.T) {
	dschema := relation.NewSchema("R", "A", "B", "C")
	rules := rule.Derive([]*cfd.CFD{
		cfd.FD("fdAB", dschema, []string{"A"}, "B"),
		cfd.New("constBC", dschema, []string{"B"}, []string{"b1"}, "C", "c9"),
	}, nil)
	mk := func() *relation.Relation {
		data := relation.New(dschema)
		data.Append("a1", "b1", "c0")
		data.Append("a1", "b1", "c0")
		data.Append("a1", "b2", "c0")
		for _, tp := range data.Tuples {
			tp.Conf[0] = 0.9
			tp.Conf[1] = 0.5
			tp.Conf[2] = 0.5
		}
		return data
	}
	opts := DefaultOptions()
	opts.Workers = 4
	opts.SeqCutoff = -1
	seq := Run(mk(), nil, rules, DefaultOptions())
	par := Run(mk(), nil, rules, opts)
	if d := diffParallel(par, seq); d != "" {
		t.Fatalf("outer fixpoint diverges under the pool: %s", d)
	}
	if len(par.Unresolved) != 0 {
		t.Fatalf("pipeline left rules unresolved: %v", fmt.Sprint(par.Unresolved))
	}
}

// TestShardQueueStealSemantics pins the work-stealing queue invariants the
// determinism argument leans on: claim and steal partition the index range
// (every index handed out exactly once), a thief's deposit leaves the
// remainder stealable, and the total never grows — which is what makes the
// all-queues-empty exit of stealInto sound.
func TestShardQueueStealSemantics(t *testing.T) {
	var q shardQueue
	q.put(0, 100)
	seen := make([]bool, 100)
	take := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if seen[i] {
				t.Fatalf("index %d handed out twice", i)
			}
			seen[i] = true
		}
	}
	lo, hi, ok := q.claim(8)
	if !ok || lo != 0 || hi != 8 {
		t.Fatalf("claim(8) = [%d, %d) %v, want [0, 8) true", lo, hi, ok)
	}
	take(lo, hi)
	lo, hi, ok = q.steal()
	if !ok || lo != 54 || hi != 100 {
		t.Fatalf("steal() = [%d, %d) %v, want the back half [54, 100) true", lo, hi, ok)
	}
	var thief, second shardQueue
	thief.put(lo, hi)
	lo2, hi2, ok := thief.steal()
	if !ok {
		t.Fatal("deposited range is not stealable")
	}
	second.put(lo2, hi2)
	for _, queue := range []*shardQueue{&q, &thief, &second} {
		for {
			lo, hi, ok := queue.claim(3)
			if !ok {
				break
			}
			take(lo, hi)
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d never handed out", i)
		}
	}
	if _, _, ok := q.steal(); ok {
		t.Fatal("empty queue still steals")
	}
}

// TestSequentialFastPath pins satellite behavior of the inline cutoff: on a
// workload whose every worklist is under DefaultSeqCutoff, a Workers: 4 run
// builds the pool but routes everything inline — no visits are attributed
// to any worker — and the result is still fix-for-fix identical to the
// sequential run, because inline and pooled execution share the applier
// code and the fast path only skips the fan-out.
func TestSequentialFastPath(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 4
	for seed := int64(0); seed < 10; seed++ {
		in := genInstance(seed)
		seq := Run(in.relation(nil), nil, in.rules, DefaultOptions())
		par := Run(in.relation(nil), nil, in.rules, opts)
		if d := diffParallel(par, seq); d != "" {
			t.Fatalf("seed %d: fast path changed the result: %s", seed, d)
		}
		if len(par.WorkerVisits) != 4 {
			t.Fatalf("seed %d: pool not built: WorkerVisits %v", seed, par.WorkerVisits)
		}
		for w, v := range par.WorkerVisits {
			if v != 0 {
				t.Fatalf("seed %d: worklists under the cutoff reached worker %d (%d visits)", seed, w, v)
			}
		}
	}
}

// TestParallelStealHeavySweep is the adversarial determinism sweep for the
// work-stealing queues: gen's HotZipRate knob packs more than a third of
// the tuples into one zip, so the variable CFDs carry one giant LHS-equal
// group next to hundreds of tiny ones — the shape where the old chunk
// cursor stranded whole chunks behind the giant group and where stealing
// traffic is now maximal. Every worker count must still produce results
// byte-identical to the sequential engine, including the certified Report
// and all work counters; run under -race this also audits the queue
// transfer protocol itself.
func TestParallelStealHeavySweep(t *testing.T) {
	inst := gen.Generate(gen.Config{
		Tuples: 2000, MasterSize: 200, ErrorRate: 0.05,
		RuleFanout: 2, Seed: 11, HotZipRate: 0.6,
	})
	zipAttr := inst.Data.Schema.MustIndex("zip")
	counts := make(map[string]int)
	dominant := 0
	for _, tp := range inst.Data.Tuples {
		counts[tp.Values[zipAttr]]++
		if counts[tp.Values[zipAttr]] > dominant {
			dominant = counts[tp.Values[zipAttr]]
		}
	}
	if dominant < inst.Data.Len()/3 {
		t.Fatalf("HotZipRate produced no dominant group: biggest zip holds %d of %d tuples",
			dominant, inst.Data.Len())
	}
	seq := Run(inst.Data, inst.Master, inst.Rules, DefaultOptions())
	for _, workers := range []int{2, 3, 4, 8} {
		opts := DefaultOptions()
		opts.Workers = workers
		opts.SeqCutoff = -1
		par := Run(inst.Data, inst.Master, inst.Rules, opts)
		if d := diffParallel(par, seq); d != "" {
			t.Fatalf("%d workers on the steal-heavy workload: %s", workers, d)
		}
	}
}

// benchmarkTinyRounds measures the whole pipeline on a tiny instance, the
// regime where fan-out overhead used to dominate. The pinned comparison is
// Workers4 against Workers1: with the sequential fast path every worklist
// runs inline, so the two must be within noise of each other, while
// Workers4Forced (cutoff disabled) shows what the pool costs when it is
// forced onto work this small.
func benchmarkTinyRounds(b *testing.B, workers, cutoff int) {
	in := genInstance(3)
	opts := DefaultOptions()
	opts.Workers = workers
	opts.SeqCutoff = cutoff
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(in.relation(nil), nil, in.rules, opts)
	}
}

func BenchmarkTinyRoundsWorkers1(b *testing.B)       { benchmarkTinyRounds(b, 1, 0) }
func BenchmarkTinyRoundsWorkers4(b *testing.B)       { benchmarkTinyRounds(b, 4, 0) }
func BenchmarkTinyRoundsWorkers4Forced(b *testing.B) { benchmarkTinyRounds(b, 4, -1) }
