package clean

import (
	"fmt"
	"testing"

	"repro/internal/cfd"
	"repro/internal/relation"
	"repro/internal/rule"
)

// TestParallelWorkerSweep pins the worker-count independence of the
// parallel applier layer: every worker count — including 1, which must
// take the inline sequential path (no pool is built) — produces results
// identical to the sequential incremental engine, down to the work
// counters, on both the randomized corpus and the MD-heavy figure1
// workload.
func TestParallelWorkerSweep(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8} {
		opts := DefaultOptions()
		opts.Workers = workers
		for seed := int64(0); seed < 25; seed++ {
			in := genInstance(seed)
			seq := Run(in.relation(nil), nil, in.rules, DefaultOptions())
			par := Run(in.relation(nil), nil, in.rules, opts)
			if d := diffParallel(par, seq); d != "" {
				t.Fatalf("seed %d, %d workers: %s", seed, workers, d)
			}
			if workers == 1 && par.WorkerVisits != nil {
				t.Fatalf("1 worker must not build a pool, got WorkerVisits %v", par.WorkerVisits)
			}
		}
		data, master, rules := figure1(t)
		seq := Run(data, master, rules, DefaultOptions())
		data, master, rules = figure1(t)
		par := Run(data, master, rules, opts)
		if d := diffParallel(par, seq); d != "" {
			t.Fatalf("figure1, %d workers: %s", workers, d)
		}
	}
}

// TestParallelDeterminism runs the parallel engine repeatedly on the same
// instances: the goroutine interleavings of the propose step and the map
// iteration order underneath the appliers vary run to run, and none of it
// may show in the result — the commit merge and the total-order tie-breaks
// are the only places ordering can come from.
func TestParallelDeterminism(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 4
	for seed := int64(0); seed < 20; seed++ {
		in := genInstance(seed)
		first := Run(in.relation(nil), nil, in.rules, opts)
		for rep := 1; rep < 6; rep++ {
			again := Run(in.relation(nil), nil, in.rules, opts)
			if d := diffParallel(again, first); d != "" {
				t.Fatalf("seed %d, repetition %d: parallel run not deterministic: %s", seed, rep, d)
			}
		}
	}
}

// TestParallelRescanStaysSequential pins that the full-rescan reference
// engine ignores Workers: it is the correctness oracle, and must stay the
// plain sequential computation whatever the options say.
func TestParallelRescanStaysSequential(t *testing.T) {
	opts := DefaultOptions()
	opts.Rescan, opts.Workers = true, 8
	in := genInstance(7)
	res := Run(in.relation(nil), nil, in.rules, opts)
	if res.WorkerVisits != nil {
		t.Fatalf("rescan engine built a worker pool: WorkerVisits %v", res.WorkerVisits)
	}
	opts.Workers = 1
	ref := Run(in.relation(nil), nil, in.rules, opts)
	if d := diffParallel(res, ref); d != "" {
		t.Fatalf("rescan result depends on Workers: %s", d)
	}
}

// TestParallelWorkerVisitsReported pins the -bench reporting contract of
// the per-worker counters: with the pool on, WorkerVisits has one slot per
// worker and the slots sum to at most the total visits (trivial worklists
// run inline on the merge goroutine and are attributed to no worker).
func TestParallelWorkerVisitsReported(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 3
	data, master, rules := figure1(t)
	res := Run(data, master, rules, opts)
	if len(res.WorkerVisits) != 3 {
		t.Fatalf("WorkerVisits = %v, want one slot per worker", res.WorkerVisits)
	}
	var sum int64
	for _, v := range res.WorkerVisits {
		sum += v
	}
	if sum <= 0 {
		t.Errorf("no visits attributed to any worker: %v", res.WorkerVisits)
	}
	if total := int64(res.TotalVisits()); sum > total {
		t.Errorf("worker visits %d exceed total visits %d", sum, total)
	}
}

// TestHTargetTieBreakDeterminism is the map-iteration-order audit pin for
// hTarget: its candidate loop ranges over a map, and only the strict total
// order of its comparison chain (confidence sum, count, master support,
// lexicographic) keeps the choice deterministic. Both tie levels — master
// support and lexicographic — are exercised many times in one process,
// where Go randomizes map iteration order per loop, and in parallel mode,
// where worker scheduling varies too. The workload is the hrepairInput one:
// the k1/k2 conflict only materializes inside the HRepair fixpoint, after
// eRepair (which has its own tie-break, pinned separately) has finished.
func TestHTargetTieBreakDeterminism(t *testing.T) {
	for _, workers := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Workers = workers
		for rep := 0; rep < 30; rep++ {
			// Master-support tie-break: k1 and k2 tie on confidence and
			// count; the master value reachable through the MD blocking
			// index must beat the lexicographically smaller k1 every time.
			data, master, rules := hrepairInput(t, true)
			res := Run(data, master, rules, opts)
			for i := 0; i < 2; i++ {
				if got := res.Data.Tuples[i].Values[2]; got != "k2" {
					t.Fatalf("%d workers, rep %d: master tie-break chose %q, want k2", workers, rep, got)
				}
			}
			// Lexicographic tie-break: same tie without master data.
			data, _, rules = hrepairInput(t, false)
			res = Run(data, nil, rules, opts)
			if got := res.Data.Tuples[0].Values[2]; got != "k1" {
				t.Fatalf("%d workers, rep %d: lex tie-break chose %q, want k1", workers, rep, got)
			}
		}
	}
}

// TestResolveGroupTieBreakDeterminism is the audit pin for eRepair's
// resolveGroup, whose plurality loop also ranges over a map: on a full tie
// (equal count, equal confidence sum) the lexicographically smaller value
// must win every time.
func TestResolveGroupTieBreakDeterminism(t *testing.T) {
	dschema := relation.NewSchema("R", "B", "C")
	rules := rule.Derive([]*cfd.CFD{cfd.FD("fd", dschema, []string{"B"}, "C")}, nil)
	for rep := 0; rep < 100; rep++ {
		data := relation.New(dschema)
		data.Append("b1", "x2")
		data.Append("b1", "x1")
		data.SetAllConf(0.5)
		res := Run(data, nil, rules, DefaultOptions())
		for _, tp := range res.Data.Tuples {
			if got := tp.Values[1]; got != "x1" {
				t.Fatalf("rep %d: resolveGroup tie chose %q, want x1", rep, got)
			}
		}
	}
}

// TestParallelOuterFixpoint reruns the outer-fixpoint regression with the
// pool on: a possible fix whose derived confidence reaches eta enables a
// deterministic rule on a later pass, and the parallel engine must follow
// the same pass structure (the budget and freeze state span passes).
func TestParallelOuterFixpoint(t *testing.T) {
	dschema := relation.NewSchema("R", "A", "B", "C")
	rules := rule.Derive([]*cfd.CFD{
		cfd.FD("fdAB", dschema, []string{"A"}, "B"),
		cfd.New("constBC", dschema, []string{"B"}, []string{"b1"}, "C", "c9"),
	}, nil)
	mk := func() *relation.Relation {
		data := relation.New(dschema)
		data.Append("a1", "b1", "c0")
		data.Append("a1", "b1", "c0")
		data.Append("a1", "b2", "c0")
		for _, tp := range data.Tuples {
			tp.Conf[0] = 0.9
			tp.Conf[1] = 0.5
			tp.Conf[2] = 0.5
		}
		return data
	}
	opts := DefaultOptions()
	opts.Workers = 4
	seq := Run(mk(), nil, rules, DefaultOptions())
	par := Run(mk(), nil, rules, opts)
	if d := diffParallel(par, seq); d != "" {
		t.Fatalf("outer fixpoint diverges under the pool: %s", d)
	}
	if len(par.Unresolved) != 0 {
		t.Fatalf("pipeline left rules unresolved: %v", fmt.Sprint(par.Unresolved))
	}
}
