package clean

import (
	"repro/internal/cfd"
	"repro/internal/relation"
	"repro/internal/rule"
)

// CRepair is the confidence-based phase of Section 5: it applies the ordered
// cleaning rules repeatedly until no rule can make progress. Every fix it
// applies has propagated confidence at least η, is marked FixDeterministic,
// and freezes its cell for the rest of the pipeline. Because each applied
// fix or assertion freezes a previously mutable cell, the fixpoint is
// reached after at most |D|·arity productive passes.
func (e *Engine) CRepair() {
	for {
		e.res.Rounds++
		progress := 0
		for i, r := range e.rules {
			switch r.Kind {
			case rule.ConstantCFD:
				progress += e.applyConstantCFD(r)
			case rule.VariableCFD:
				progress += e.applyVariableCFD(r)
			case rule.MatchMD:
				progress += e.applyMatchMD(i, r)
			}
		}
		if progress == 0 || (e.opts.MaxRounds > 0 && e.res.Rounds >= e.opts.MaxRounds) {
			return
		}
	}
}

// applyConstantCFD writes the pattern constant tp[A] to every tuple matching
// tp[X] whose premise cells are trusted (min confidence >= η), per
// Section 3.1 rule (2).
func (e *Engine) applyConstantCFD(r rule.Rule) int {
	c := r.CFD
	progress := 0
	for i, t := range e.data.Tuples {
		if !c.MatchLHS(t) {
			continue
		}
		conf := minConfAt(t, c.LHS)
		if conf < e.opts.Eta {
			continue
		}
		switch {
		case t.Values[c.RHS] == c.RHSPattern:
			progress += e.assert(i, c.RHS, conf)
		case t.Marks[c.RHS] == relation.FixDeterministic:
			e.conflictf("%s: t%d[%s] is frozen at %q, cannot write %q",
				c.Name, i, e.data.Schema.Attrs[c.RHS], t.Values[c.RHS], c.RHSPattern)
		default:
			progress += e.fix(i, c.RHS, c.RHSPattern, conf, c.Name)
		}
	}
	return progress
}

// applyVariableCFD propagates high-confidence RHS values within LHS-equal
// groups, per Section 3.1 rule (3): if the trusted cells of a group agree on
// a value, every member whose premise is trusted is updated to it. Groups
// whose trusted cells disagree are left for eRepair.
func (e *Engine) applyVariableCFD(r rule.Rule) int {
	c := r.CFD
	progress := 0
	for _, g := range cfd.Groups(e.data, c) {
		members := g.Members
		// Pick the highest-confidence non-null RHS value as the source.
		bestConf, bestVal := -1.0, ""
		for _, i := range members {
			t := e.data.Tuples[i]
			if v := t.Values[c.RHS]; !relation.IsNull(v) && t.Conf[c.RHS] > bestConf {
				bestConf, bestVal = t.Conf[c.RHS], v
			}
		}
		if bestConf < e.opts.Eta {
			continue
		}
		// If another trusted cell disagrees, the group is ambiguous: no
		// deterministic fix exists (eRepair will weigh the evidence).
		ambiguous := false
		for _, i := range members {
			t := e.data.Tuples[i]
			v := t.Values[c.RHS]
			if !relation.IsNull(v) && v != bestVal && t.Conf[c.RHS] >= e.opts.Eta {
				e.conflictf("%s: group %q has trusted values %q and %q", c.Name, g.Key, bestVal, v)
				ambiguous = true
				break
			}
		}
		if ambiguous {
			continue
		}
		for _, i := range members {
			t := e.data.Tuples[i]
			pc := minConfAt(t, c.LHS)
			if pc < e.opts.Eta {
				continue
			}
			conf := pc
			if bestConf < conf {
				conf = bestConf
			}
			if t.Values[c.RHS] == bestVal {
				progress += e.assert(i, c.RHS, conf)
			} else if t.Marks[c.RHS] != relation.FixDeterministic {
				progress += e.fix(i, c.RHS, bestVal, conf, c.Name)
			}
		}
	}
	return progress
}

// applyMatchMD copies master values into matched data tuples, per
// Section 3.1 rule (1). Matching goes through the blocking indexes; the fix
// confidence is the fuzzy minimum over the equality-premise cells of the
// data tuple (similarity-tested cells contribute no confidence, and master
// data is clean by assumption).
func (e *Engine) applyMatchMD(idx int, r rule.Rule) int {
	x := e.matchers[idx]
	if x == nil {
		return 0 // no master data: the MD is vacuous
	}
	m := r.MD
	progress := 0
	for i, t := range e.data.Tuples {
		conf := minConfAt(t, x.eqDataAttrs)
		if conf < e.opts.Eta {
			continue
		}
		for _, j := range x.candidates(t, e.opts.TopL) {
			s := e.master.Tuples[j]
			for _, p := range m.RHS {
				v := s.Values[p.MasterAttr]
				if relation.IsNull(v) {
					continue
				}
				switch {
				case t.Values[p.DataAttr] == v:
					progress += e.assert(i, p.DataAttr, conf)
				case t.Marks[p.DataAttr] == relation.FixDeterministic:
					e.conflictf("%s: t%d[%s] is frozen at %q, master tuple %d says %q",
						m.Name, i, e.data.Schema.Attrs[p.DataAttr], t.Values[p.DataAttr], j, v)
				default:
					progress += e.fix(i, p.DataAttr, v, conf, m.Name)
				}
			}
		}
	}
	return progress
}
