package clean

import (
	"repro/internal/cfd"
	"repro/internal/fault"
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/rule"
)

// CRepair is the confidence-based phase of Section 5: it applies the ordered
// cleaning rules repeatedly until no rule can make progress. Every fix it
// applies has propagated confidence at least η, is marked FixDeterministic,
// and freezes its cell for the rest of the pipeline. Because each applied
// fix or assertion freezes a previously mutable cell, the fixpoint is
// reached after at most |D|·arity productive passes.
//
// Scheduling: the first round visits every tuple of every rule (seeding the
// worklists); each later round hands a rule only the tuples and groups whose
// read attributes were written since the rule last saw them, which is the
// only place new firings can come from. With Options.Rescan, every round is
// a full visit, as in the reference engine. With Options.Workers > 1, each
// rule's visit is sharded across the worker pool and committed through the
// deterministic merge (see parallel.go); rules still run one after another,
// so the result is identical either way.
func (e *Engine) CRepair() {
	for {
		// Cancellation points sit at round granularity: a round already in
		// flight finishes (or is rewound whole by the parallel layer), so a
		// cancel can never expose a half-committed round.
		if e.interrupted() || e.exhausted() {
			return
		}
		e.res.Rounds++
		seeded := e.cSeeded
		progress := 0
		for ri, r := range e.rules {
			if e.interrupted() {
				return
			}
			if e.opts.Rescan || !seeded {
				progress += e.applyRuleFull(ri, r)
			} else {
				progress += e.applyRuleDelta(ri, r)
			}
		}
		e.cSeeded = true
		if progress == 0 || (e.opts.MaxRounds > 0 && e.res.Rounds >= e.opts.MaxRounds) {
			return
		}
	}
}

// applyRuleFull applies one rule to the whole relation: every rescan-mode
// round, and the delta engine's seeding round. The seeding round first
// drops the rule's pending cRepair marks (the full visit covers them) and
// reads variable-CFD groups out of the persistent index instead of
// re-grouping the relation; the reference engine has no scheduler and
// re-derives the grouping with cfd.Groups, which keeps it independent of
// the index it is the oracle for.
func (e *Engine) applyRuleFull(ri int, r rule.Rule) int {
	switch r.Kind {
	case rule.ConstantCFD:
		if e.sched != nil {
			e.sched.clearTuples(phaseC, ri)
		}
		return e.applyTuples(phaseC, ri, e.allTupleIDs(), func(ap *applier, i int) int {
			return ap.constantCFDTuple(ri, r.CFD, i)
		})
	case rule.VariableCFD:
		if e.sched != nil {
			e.sched.clearGroups(phaseC, ri)
			return e.applyGroups(phaseC, ri, e.sched.allGroups(ri), func(ap *applier, members []int) int {
				return ap.variableCFDGroup(ri, r.CFD, members)
			})
		}
		progress := 0
		for _, g := range cfd.Groups(e.data, r.CFD) {
			progress += e.ap.variableCFDGroup(ri, r.CFD, g.Members)
		}
		return progress
	case rule.MatchMD:
		if e.sched != nil {
			e.sched.clearTuples(phaseC, ri)
		}
		return e.applyTuples(phaseC, ri, e.allTupleIDs(), func(ap *applier, i int) int {
			return ap.matchMDTuple(ri, r.MD, i)
		})
	}
	return 0
}

// applyRuleDelta applies one rule to exactly the tuples/groups enqueued for
// it since its last visit. Writes made while processing re-enqueue their
// targets, so interacting rules still chase each other to the fixpoint.
func (e *Engine) applyRuleDelta(ri int, r rule.Rule) int {
	switch r.Kind {
	case rule.ConstantCFD:
		return e.applyTuples(phaseC, ri, e.sched.takeTuples(phaseC, ri), func(ap *applier, i int) int {
			return ap.constantCFDTuple(ri, r.CFD, i)
		})
	case rule.VariableCFD:
		return e.applyGroups(phaseC, ri, e.sched.takeGroups(phaseC, ri), func(ap *applier, members []int) int {
			return ap.variableCFDGroup(ri, r.CFD, members)
		})
	case rule.MatchMD:
		return e.applyTuples(phaseC, ri, e.sched.takeTuples(phaseC, ri), func(ap *applier, i int) int {
			return ap.matchMDTuple(ri, r.MD, i)
		})
	}
	return 0
}

// constantCFDTuple writes the pattern constant tp[A] to tuple i if it
// matches tp[X] and its premise cells are trusted (min confidence >= η), per
// Section 3.1 rule (2).
func (ap *applier) constantCFDTuple(ri int, c *cfd.CFD, i int) int {
	ap.stat(ri).CTuples++
	e := ap.e
	t := e.data.Tuples[i]
	if !c.MatchLHS(t) {
		return 0
	}
	conf := minConfAt(t, c.LHS)
	if conf < e.opts.Eta {
		return 0
	}
	switch {
	case t.Values[c.RHS] == c.RHSPattern:
		return ap.assert(i, c.RHS, conf)
	case t.Marks[c.RHS] == relation.FixDeterministic:
		ap.conflictf("%s: t%d[%s] is frozen at %q, cannot write %q",
			c.Name, i, e.data.Schema.Attrs[c.RHS], t.Values[c.RHS], c.RHSPattern)
		return 0
	default:
		return ap.fix(i, c.RHS, c.RHSPattern, conf, c.Name)
	}
}

// variableCFDGroup propagates high-confidence RHS values within one
// LHS-equal group, per Section 3.1 rule (3): if the trusted cells of the
// group agree on a value, every member whose premise is trusted is updated
// to it. Groups whose trusted cells disagree are left for eRepair.
func (ap *applier) variableCFDGroup(ri int, c *cfd.CFD, members []int) int {
	ap.stat(ri).CGroups++
	ap.stat(ri).CTuples += len(members)
	e := ap.e
	// Pick the highest-confidence non-null RHS value as the source.
	bestConf, bestVal := -1.0, ""
	for _, i := range members {
		t := e.data.Tuples[i]
		if v := t.Values[c.RHS]; !relation.IsNull(v) && t.Conf[c.RHS] > bestConf {
			bestConf, bestVal = t.Conf[c.RHS], v
		}
	}
	if bestConf < e.opts.Eta {
		return 0
	}
	// If another trusted cell disagrees, the group is ambiguous: no
	// deterministic fix exists (eRepair will weigh the evidence).
	for _, i := range members {
		t := e.data.Tuples[i]
		v := t.Values[c.RHS]
		if !relation.IsNull(v) && v != bestVal && t.Conf[c.RHS] >= e.opts.Eta {
			ap.conflictf("%s: group %q has trusted values %q and %q",
				c.Name, e.data.Tuples[members[0]].Key(c.LHS), bestVal, v)
			return 0
		}
	}
	progress := 0
	for _, i := range members {
		t := e.data.Tuples[i]
		pc := minConfAt(t, c.LHS)
		if pc < e.opts.Eta {
			continue
		}
		conf := pc
		if bestConf < conf {
			conf = bestConf
		}
		if t.Values[c.RHS] == bestVal {
			progress += ap.assert(i, c.RHS, conf)
		} else if t.Marks[c.RHS] != relation.FixDeterministic {
			progress += ap.fix(i, c.RHS, bestVal, conf, c.Name)
		}
	}
	return progress
}

// matchMDTuple copies master values into data tuple i when the MD premise
// matches, per Section 3.1 rule (1). Matching goes through the blocking
// indexes; the fix confidence is the fuzzy minimum over the
// equality-premise cells of the data tuple (similarity-tested cells
// contribute no confidence, and master data is clean by assumption).
func (ap *applier) matchMDTuple(ri int, m *md.MD, i int) int {
	x := ap.matchers[ri]
	if x == nil {
		return 0 // no master data: the MD is vacuous
	}
	ap.stat(ri).CTuples++
	e := ap.e
	e.fj.At(fault.SiteProbe, ri, i)
	t := e.data.Tuples[i]
	conf := minConfAt(t, x.eqDataAttrs)
	if conf < e.opts.Eta {
		return 0
	}
	progress := 0
	for _, j := range x.candidates(t, e.opts.TopL) {
		s := e.master.Tuples[j]
		for _, p := range m.RHS {
			v := s.Values[p.MasterAttr]
			if relation.IsNull(v) {
				continue
			}
			switch {
			case t.Values[p.DataAttr] == v:
				progress += ap.assert(i, p.DataAttr, conf)
			case t.Marks[p.DataAttr] == relation.FixDeterministic:
				ap.conflictf("%s: t%d[%s] is frozen at %q, master tuple %d says %q",
					m.Name, i, e.data.Schema.Attrs[p.DataAttr], t.Values[p.DataAttr], j, v)
			default:
				progress += ap.fix(i, p.DataAttr, v, conf, m.Name)
			}
		}
	}
	return progress
}
