package clean

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cfd"
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/rule"
	"repro/internal/similarity"
)

// figure1 builds the dirty-transactions example modeled on the paper's
// Figure 1: transaction records tran(FN, LN, St, city, AC, post, phn)
// cleaned against master cards card(FN, LN, St, city, AC, zip, tel).
func figure1(t testing.TB) (data, master *relation.Relation, rules []rule.Rule) {
	t.Helper()
	tran := relation.NewSchema("tran", "FN", "LN", "St", "city", "AC", "post", "phn")
	card := relation.NewSchema("card", "FN", "LN", "St", "city", "AC", "zip", "tel")

	data = relation.New(tran)
	add := func(vals []string, confs []float64) {
		tp := data.Append(vals...)
		copy(tp.Conf, confs)
	}
	add([]string{"Rob", "Brady", "", "Edi", "131", "EH7 4AH", "3887644"},
		[]float64{0.6, 0.9, 0, 0.9, 0.9, 0.9, 0.9})
	add([]string{"Robert", "Brady", "501 Elm Row", "Ldn", "131", "EH7 4AH", "3887644"},
		[]float64{0.9, 0.9, 0.9, 0.3, 0.9, 0.9, 0.9})
	add([]string{"Robert", "Brady", "501 Elm St", "Edi", "131", "EH7 4AH", "9999999"},
		[]float64{0.9, 0.9, 0.4, 0.9, 0.9, 0.9, 0.2})
	add([]string{"Mary", "Smith", "20 Baker St", "Ldn", "020", "NW1 6XE", "7654321"},
		[]float64{0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9})
	add([]string{"Robert", "Brady", "501 Elm Row", "Edi", "131", "", "3887644"},
		[]float64{0.9, 0.9, 0.9, 0.9, 0.9, 0, 0.5})

	master = relation.New(card)
	master.Append("Robert", "Brady", "501 Elm Row", "Edi", "131", "EH7 4AH", "3887644")
	master.Append("Mary", "Smith", "20 Baker St", "Ldn", "020", "NW1 6XE", "7654321")
	master.SetAllConf(1)

	text := `
# Area code determines city (constant CFDs, Fig. 1 phi1/phi2).
cfd AC=131 -> city=Edi
cfd AC=020 -> city=Ldn
# Postal code determines street; phone determines postal code.
cfd post -> St
cfd phn -> post
# Match transactions against master cards (MD psi of Fig. 1).
md LN=LN, city=city, post=zip, FN~FN(edit<=3) -> FN=FN, St=St, phn=tel
`
	cfds, mds, err := rule.ParseRules(tran, card, text)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	return data, master, rule.Derive(cfds, mds)
}

func TestGoldenFigure1(t *testing.T) {
	data, master, rules := figure1(t)
	opts := DefaultOptions()
	res := Run(data, master, rules, opts)

	want := [][]string{
		{"Robert", "Brady", "501 Elm Row", "Edi", "131", "EH7 4AH", "3887644"},
		{"Robert", "Brady", "501 Elm Row", "Edi", "131", "EH7 4AH", "3887644"},
		{"Robert", "Brady", "501 Elm Row", "Edi", "131", "EH7 4AH", "3887644"},
		{"Mary", "Smith", "20 Baker St", "Ldn", "020", "NW1 6XE", "7654321"},
		{"Robert", "Brady", "501 Elm Row", "Edi", "131", "EH7 4AH", "3887644"},
	}
	for i, w := range want {
		if got := res.Data.Tuples[i].Values; !reflect.DeepEqual(got, w) {
			t.Errorf("tuple %d = %v, want %v", i, got, w)
		}
	}

	// Every cell changed by cRepair is FixDeterministic with conf >= eta,
	// and the relation agrees with the recorded fix.
	det := res.DeterministicFixes()
	for _, f := range det {
		if f.Conf < opts.Eta {
			t.Errorf("deterministic fix %v has confidence below eta", f)
		}
		tp := res.Data.Tuples[f.Tuple]
		if tp.Marks[f.Attr] != relation.FixDeterministic || tp.Conf[f.Attr] < opts.Eta {
			t.Errorf("cell t%d[%s] not frozen with conf >= eta after fix %v", f.Tuple, f.Attribute, f)
		}
	}
	wantDet := map[string]string{
		"t1.city": "Edi",
		"t0.FN":   "Robert",
		"t0.St":   "501 Elm Row",
		"t2.St":   "501 Elm Row",
		"t2.phn":  "3887644",
	}
	gotDet := make(map[string]string)
	for _, f := range det {
		gotDet[fmt.Sprintf("t%d.%s", f.Tuple, f.Attribute)] = f.New
	}
	if !reflect.DeepEqual(gotDet, wantDet) {
		t.Errorf("cRepair fixes = %v, want %v", gotDet, wantDet)
	}

	// t4's post is unreachable by cRepair (its premise cells are below eta)
	// and must come from eRepair as a reliable fix.
	if got := res.Data.Tuples[4].Marks[data.Schema.MustIndex("post")]; got != relation.FixReliable {
		t.Errorf("t4.post mark = %v, want reliable", got)
	}
	if res.GroupsResolved == 0 {
		t.Error("eRepair resolved no groups")
	}

	// The engine's resolution claims must be verifiable independently.
	if len(res.Unresolved) != 0 {
		t.Errorf("unresolved rules: %v", res.Unresolved)
	}
	for _, r := range rules {
		switch r.Kind {
		case rule.MatchMD:
			if !md.Satisfies(res.Data, master, r.MD) {
				t.Errorf("repair does not satisfy %s", r.Name())
			}
		default:
			if !cfd.Satisfies(res.Data, r.CFD) {
				t.Errorf("repair does not satisfy %s", r.Name())
			}
		}
	}

	// MD matching must have gone through the equality index: no full scans,
	// and far fewer candidates than lookups x |Dm|.
	for name, st := range res.Match { //det:ok maporder per-rule assertions are independent; order affects only failure-message order
		if st.FullScans != 0 {
			t.Errorf("%s: %d full scans", name, st.FullScans)
		}
		if st.Lookups == 0 || st.Candidates > st.Lookups {
			t.Errorf("%s: %d candidates for %d lookups, equality index not used", name, st.Candidates, st.Lookups)
		}
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	data, master, rules := figure1(t)
	before := data.Clone()
	Run(data, master, rules, DefaultOptions())
	if data.DiffCells(before) != 0 {
		t.Error("Run mutated its input relation")
	}
	for i, tp := range data.Tuples {
		for a := range tp.Marks {
			//det:ok floateq bit-exact no-mutation check: the input confidences must be untouched, not approximately equal
			if tp.Marks[a] != relation.FixNone || tp.Conf[a] != before.Tuples[i].Conf[a] {
				t.Fatalf("Run mutated marks/confs of input tuple %d", i)
			}
		}
	}
}

// TestEqualityIndexBlocking checks that an MD whose premise has equality
// clauses is matched through the hash index: the candidate set stays far
// below |Dm| even though the premise also has a similarity clause.
func TestEqualityIndexBlocking(t *testing.T) {
	const n = 200
	dschema := relation.NewSchema("R", "name", "code")
	mschema := relation.NewSchema("M", "name", "code")
	master := relation.New(mschema)
	for i := 0; i < n; i++ {
		master.Append(fmt.Sprintf("name-%03d", i), fmt.Sprintf("code-%03d", i))
	}
	master.SetAllConf(1)
	data := relation.New(dschema)
	for i := 0; i < 5; i++ {
		data.Append(fmt.Sprintf("name-%03d", i*17), "wrong")
	}
	data.SetAllConf(0.9)
	m := md.New("psi", dschema, mschema,
		[]md.ClauseSpec{md.Eq("name", "name")},
		[]md.PairSpec{{Data: "code", Master: "code"}})
	res := Run(data, master, rule.Derive(nil, []*md.MD{m}), DefaultOptions())

	for i := 0; i < 5; i++ {
		if got, want := res.Data.Tuples[i].Values[1], fmt.Sprintf("code-%03d", i*17); got != want {
			t.Errorf("tuple %d code = %q, want %q", i, got, want)
		}
	}
	st := res.Match["psi"]
	if st.FullScans != 0 {
		t.Fatalf("%d full scans, want 0", st.FullScans)
	}
	if st.Candidates > st.Lookups {
		t.Errorf("candidates = %d for %d lookups over |Dm| = %d: index not selective",
			st.Candidates, st.Lookups, st.MasterSize)
	}
	if naive := st.Lookups * st.MasterSize; st.Candidates*10 >= naive {
		t.Errorf("candidate set %d not << naive %d", st.Candidates, naive)
	}
}

// TestSuffixTreeBlocking checks that an MD with only an edit-distance clause
// is matched through the suffix tree: candidates are bounded by TopL per
// lookup and stay far below |Dm|, while typo'd names still match.
func TestSuffixTreeBlocking(t *testing.T) {
	const n = 200
	dschema := relation.NewSchema("R", "name", "code")
	mschema := relation.NewSchema("M", "name", "code")
	master := relation.New(mschema)
	for i := 0; i < n; i++ {
		master.Append(fmt.Sprintf("%c%c%c-%03d", 'a'+i%26, 'a'+(i/3)%26, 'a'+(i/7)%26, i),
			fmt.Sprintf("code-%03d", i))
	}
	master.SetAllConf(1)
	data := relation.New(dschema)
	// Tuple names are one edit away from master names 0, 51, 102, 153.
	for i := 0; i < 4; i++ {
		j := i * 51
		name := master.Tuples[j].Values[0]
		data.Append("X"+name[1:], "unknown")
	}
	data.SetAllConf(0.9)
	m := md.New("psi", dschema, mschema,
		[]md.ClauseSpec{md.Sim("name", "name", similarity.EditWithin(2))},
		[]md.PairSpec{{Data: "code", Master: "code"}})
	opts := DefaultOptions()
	res := Run(data, master, rule.Derive(nil, []*md.MD{m}), opts)

	for i := 0; i < 4; i++ {
		if got, want := res.Data.Tuples[i].Values[1], fmt.Sprintf("code-%03d", i*51); got != want {
			t.Errorf("tuple %d code = %q, want %q", i, got, want)
		}
	}
	st := res.Match["psi"]
	if st.FullScans != 0 {
		t.Fatalf("%d full scans, want 0", st.FullScans)
	}
	if st.Candidates > st.Lookups*opts.TopL {
		t.Errorf("candidates = %d exceed TopL bound %d", st.Candidates, st.Lookups*opts.TopL)
	}
	if naive := st.Lookups * st.MasterSize; st.Candidates*3 >= naive {
		t.Errorf("candidate set %d not << naive %d", st.Candidates, naive)
	}
}

// TestSuffixTreeBlockingIsSound checks the blocking bound against its worst
// case: k edits spread evenly across the string leave only pieces of length
// floor(|v|/(k+1)) intact, and such matches must still be found.
func TestSuffixTreeBlockingIsSound(t *testing.T) {
	dschema := relation.NewSchema("R", "name", "code")
	mschema := relation.NewSchema("M", "name", "code")
	master := relation.New(mschema)
	master.Append("abcde", "right") // edit distance 1 via the middle char
	master.Append("vwxyz", "other")
	master.SetAllConf(1)
	data := relation.New(dschema)
	data.Append("abXde", "unknown") // longest common substring is only 2
	data.SetAllConf(0.9)
	m := md.New("psi", dschema, mschema,
		[]md.ClauseSpec{md.Sim("name", "name", similarity.EditWithin(1))},
		[]md.PairSpec{{Data: "code", Master: "code"}})
	res := Run(data, master, rule.Derive(nil, []*md.MD{m}), DefaultOptions())
	if got := res.Data.Tuples[0].Values[1]; got != "right" {
		t.Errorf("code = %q, want %q: blocking pruned a true edit<=1 match", got, "right")
	}
}

// TestERepairEntropyOrderAndRekeying drives eRepair alone: cRepair is inert
// because no cell reaches eta. The lower-entropy group must be resolved
// first, and its resolution re-keys the groups of the downstream CFD.
func TestERepairEntropyOrderAndRekeying(t *testing.T) {
	schema := relation.NewSchema("R", "a", "b", "c")
	data := relation.New(schema)
	data.Append("x", "p", "m")
	data.Append("x", "p", "m")
	data.Append("x", "q", "m")
	data.Append("y", "r", "n")
	data.Append("y", "r", "o")
	rules := rule.Derive([]*cfd.CFD{
		cfd.FD("fd1", schema, []string{"a"}, "b"),
		cfd.FD("fd2", schema, []string{"b"}, "c"),
	}, nil)
	res := Run(data, nil, rules, DefaultOptions())

	if len(res.DeterministicFixes()) != 0 {
		t.Fatalf("unexpected deterministic fixes: %v", res.Fixes)
	}
	want := [][]string{
		{"x", "p", "m"},
		{"x", "p", "m"},
		{"x", "p", "m"},
		{"y", "r", "n"},
		{"y", "r", "n"},
	}
	for i, w := range want {
		if got := res.Data.Tuples[i].Values; !reflect.DeepEqual(got, w) {
			t.Errorf("tuple %d = %v, want %v", i, got, w)
		}
	}
	if res.GroupsResolved != 2 {
		t.Errorf("GroupsResolved = %d, want 2", res.GroupsResolved)
	}
	for _, f := range res.Fixes {
		if f.Mark != relation.FixReliable {
			t.Errorf("fix %v not marked reliable", f)
		}
	}
	// The (a=x -> b) group has entropy ~0.92, the (b=r -> c) group 1.0, so
	// the b-fix must be recorded before the c-fix.
	if len(res.Fixes) != 2 || res.Fixes[0].Attribute != "b" || res.Fixes[1].Attribute != "c" {
		t.Errorf("fixes = %v, want b resolved before c", res.Fixes)
	}
	if !cfd.SatisfiesAll(res.Data, []*cfd.CFD{rules[0].CFD, rules[1].CFD}) {
		t.Error("repair does not satisfy the FDs")
	}
}

// TestFrozenCellsAreImmutable: once cRepair freezes a cell, a later
// conflicting rule must record a conflict instead of overwriting it.
func TestFrozenCellsAreImmutable(t *testing.T) {
	schema := relation.NewSchema("R", "A", "B")
	data := relation.New(schema)
	data.Append("1", "zzz")
	data.SetAllConf(0.9)
	rules := rule.Derive([]*cfd.CFD{
		cfd.New("phi1", schema, []string{"A"}, []string{"1"}, "B", "x"),
		cfd.New("phi2", schema, []string{"A"}, []string{"1"}, "B", "y"),
	}, nil)
	res := Run(data, nil, rules, DefaultOptions())
	if got := res.Data.Tuples[0].Values[1]; got != "x" && got != "y" {
		t.Errorf("B = %q, want one of the rule constants", got)
	}
	if got := res.Data.Tuples[0].Marks[1]; got != relation.FixDeterministic {
		t.Errorf("B mark = %v, want deterministic (frozen)", got)
	}
	if len(res.DeterministicFixes()) != 1 {
		t.Errorf("fixes = %v, want exactly one write to the frozen cell", res.Fixes)
	}
	if len(res.Conflicts) != 1 {
		t.Errorf("conflicts = %v, want exactly one record (not re-recorded per round)", res.Conflicts)
	}
}

// TestMDVacuousWithoutMaster: MD rules are skipped when no master relation
// is supplied, and reported as resolved (vacuously).
func TestMDVacuousWithoutMaster(t *testing.T) {
	dschema := relation.NewSchema("R", "name", "code")
	mschema := relation.NewSchema("M", "name", "code")
	data := relation.New(dschema)
	data.Append("bob", "k1")
	data.SetAllConf(0.9)
	m := md.New("psi", dschema, mschema,
		[]md.ClauseSpec{md.Eq("name", "name")},
		[]md.PairSpec{{Data: "code", Master: "code"}})
	res := Run(data, nil, rule.Derive(nil, []*md.MD{m}), DefaultOptions())
	if len(res.Fixes) != 0 || len(res.Unresolved) != 0 {
		t.Errorf("vacuous MD produced fixes %v, unresolved %v", res.Fixes, res.Unresolved)
	}
}

// TestConfidencePropagation: the fix confidence is the fuzzy minimum of the
// equality-premise cells, so a premise cell just above eta caps the fix.
func TestConfidencePropagation(t *testing.T) {
	dschema := relation.NewSchema("R", "name", "code")
	mschema := relation.NewSchema("M", "name", "code")
	data := relation.New(dschema)
	tp := data.Append("bob", "wrong")
	tp.Conf[0] = 0.85
	tp.Conf[1] = 0.99
	master := relation.New(mschema)
	master.Append("bob", "right")
	master.SetAllConf(1)
	m := md.New("psi", dschema, mschema,
		[]md.ClauseSpec{md.Eq("name", "name")},
		[]md.PairSpec{{Data: "code", Master: "code"}})
	res := Run(data, master, rule.Derive(nil, []*md.MD{m}), DefaultOptions())
	det := res.DeterministicFixes()
	if len(det) != 1 || det[0].Conf != 0.85 { //det:ok floateq exact propagation check: the conf is copied from the premise, not recomputed
		t.Fatalf("fixes = %v, want one fix with conf 0.85", det)
	}
}

// TestRunOuterFixpoint pins the outer loop of Run: an eRepair write whose
// plurality confidence reaches eta enables an MD premise no rule could use
// in the first pass, so only a second cRepair pass can apply the master
// value. A single-pass pipeline certifies this instance dirty even though
// the engine itself can clean it on a re-run.
func TestRunOuterFixpoint(t *testing.T) {
	dschema := relation.NewSchema("R", "K", "A", "B")
	mschema := relation.NewSchema("M", "A", "B")

	data := relation.New(dschema)
	for i := 0; i < 4; i++ {
		data.Append("k", "a0", "b0")
	}
	data.Append("k", "ax", "bx")
	data.SetAllConf(0.5)

	master := relation.New(mschema)
	master.Append("a0", "b0")
	master.SetAllConf(1)

	cfds, mds, err := rule.ParseRules(dschema, mschema, `
cfd K -> A
md A=A -> B=B
`)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	res := Run(data, master, rule.Derive(cfds, mds), DefaultOptions())

	// eRepair equalizes A on "a0" with plurality confidence 4/5 = 0.8 = eta;
	// the next pass's cRepair matches t4 against master through that cell
	// and repairs B deterministically.
	got := res.Data.Tuples[4]
	if got.Values[2] != "b0" {
		t.Errorf("t4[B] = %q, want %q via the second cRepair pass", got.Values[2], "b0")
	}
	if got.Marks[2] != relation.FixDeterministic {
		t.Errorf("t4[B] mark = %v, want deterministic", got.Marks[2])
	}
	if len(res.Unresolved) != 0 {
		t.Errorf("unresolved = %v, want none", res.Unresolved)
	}
	if !res.Report.Clean() {
		t.Errorf("report not certified clean:\n%s", res.Report)
	}
}
