package clean

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/avl"
	"repro/internal/cfd"
	"repro/internal/relation"
	"repro/internal/rule"
)

// egroup is one LHS-equal group of a variable CFD: the equivalence class of
// Section 6.1 whose RHS distribution entropy measures how certain the
// correct value is.
type egroup struct {
	ci      int    // index into the engine's variable-CFD list
	id      string // "<ci>|<LHS key>", the AVL tie-break key
	members []int  // tuple indexes, in relation order
	entropy float64
}

// ERepair is the entropy-based phase of Section 6: variable-CFD groups with
// more than one RHS value are keyed by (entropy, id) in an AVL tree (the
// "2-in-1" structure of Section 6.3), and the minimum-entropy group — the
// one whose plurality value is most certain — is resolved first. Resolving a
// group rewrites mutable cells, so the groups of every rule reading or
// writing the changed attribute are re-grouped and re-keyed before the next
// extraction. Fixes are marked FixReliable and carry the plurality fraction
// as confidence; frozen cells are never overwritten.
func (e *Engine) ERepair() {
	var varCFDs []*cfd.CFD
	for _, r := range e.rules {
		if r.Kind == rule.VariableCFD {
			varCFDs = append(varCFDs, r.CFD)
		}
	}
	if len(varCFDs) == 0 {
		return
	}

	var tree avl.Tree
	groups := make(map[string]*egroup) // id -> group currently keyed in tree
	done := make(map[string]bool)      // ids already resolved, never re-keyed

	// rebuild re-groups one CFD from the current relation state, replacing
	// any of its groups still keyed in the tree.
	rebuild := func(ci int) {
		prefix := strconv.Itoa(ci) + "|"
		for id, g := range groups {
			if strings.HasPrefix(id, prefix) {
				tree.Delete(avl.Key{Entropy: g.entropy, ID: id})
				delete(groups, id)
			}
		}
		c := varCFDs[ci]
		for _, cg := range cfd.Groups(e.data, c) {
			g := &egroup{ci: ci, id: prefix + cg.Key, members: cg.Members}
			if done[g.id] {
				continue
			}
			var distinct int
			g.entropy, distinct = groupEntropy(e.data, c.RHS, g.members)
			if distinct < 2 {
				continue // already conflict-free
			}
			groups[g.id] = g
			tree.Insert(avl.Key{Entropy: g.entropy, ID: g.id})
		}
	}

	for ci := range varCFDs {
		rebuild(ci)
	}
	for tree.Len() > 0 {
		k, _ := tree.Min()
		tree.Delete(k)
		g := groups[k.ID]
		delete(groups, k.ID)
		done[g.id] = true
		c := varCFDs[g.ci]
		if !e.resolveGroup(c, g) {
			continue
		}
		e.res.GroupsResolved++
		for cj, c2 := range varCFDs {
			if c2.RHS == c.RHS || hasAttr(c2.LHS, c.RHS) {
				rebuild(cj)
			}
		}
	}
}

// resolveGroup rewrites the group's mutable RHS cells to a single target
// value and reports whether anything changed. A frozen (deterministically
// fixed) cell dictates the target; otherwise the plurality value wins, with
// ties broken by total confidence and then lexicographically, so resolution
// is deterministic.
func (e *Engine) resolveGroup(c *cfd.CFD, g *egroup) bool {
	a := c.RHS
	frozen := make(map[string]bool)
	for _, i := range g.members {
		t := e.data.Tuples[i]
		if t.Marks[a] == relation.FixDeterministic {
			frozen[t.Values[a]] = true
		}
	}
	if len(frozen) > 1 {
		e.conflictf("%s: group %s has conflicting frozen values, cannot resolve", c.Name, g.id)
		return false
	}
	count := make(map[string]int)
	confSum := make(map[string]float64)
	for _, i := range g.members {
		t := e.data.Tuples[i]
		if v := t.Values[a]; !relation.IsNull(v) {
			count[v]++
			confSum[v] += t.Conf[a]
		}
	}
	var target string
	if len(frozen) == 1 {
		for v := range frozen {
			target = v
		}
	} else {
		for v, n := range count {
			switch m := count[target]; {
			case target == "" || n > m,
				n == m && quantConf(confSum[v]) > quantConf(confSum[target]),
				n == m && quantConf(confSum[v]) == quantConf(confSum[target]) && v < target:
				target = v
			}
		}
		if target == "" {
			return false // every cell is null: no evidence to propagate
		}
	}
	conf := float64(count[target]) / float64(len(g.members))
	changed := false
	for _, i := range g.members {
		t := e.data.Tuples[i]
		if t.Values[a] == target || t.Marks[a] == relation.FixDeterministic {
			continue
		}
		e.res.Fixes = append(e.res.Fixes, Fix{
			Tuple: i, Attr: a, Attribute: e.data.Schema.Attrs[a],
			Old: t.Values[a], New: target, Conf: conf,
			Mark: relation.FixReliable, Rule: c.Name,
		})
		t.Set(a, target, conf, relation.FixReliable)
		changed = true
	}
	return changed
}

// groupEntropy returns the Shannon entropy (base 2) of the RHS value
// distribution over the group members, and the number of distinct values.
// Null counts as a value: a group of one constant plus nulls is uncertain.
func groupEntropy(d *relation.Relation, a int, members []int) (float64, int) {
	count := make(map[string]int)
	for _, i := range members {
		count[d.Tuples[i].Values[a]]++
	}
	h := 0.0
	n := float64(len(members))
	for _, c := range count {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h, len(count)
}

func hasAttr(attrs []int, a int) bool {
	for _, x := range attrs {
		if x == a {
			return true
		}
	}
	return false
}
