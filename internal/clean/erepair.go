package clean

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/avl"
	"repro/internal/cfd"
	"repro/internal/fault"
	"repro/internal/relation"
	"repro/internal/rule"
)

// egroup is one LHS-equal group of a variable CFD: the equivalence class of
// Section 6.1 whose RHS distribution entropy measures how certain the
// correct value is.
type egroup struct {
	ci      int    // index into the engine's variable-CFD list
	id      string // "<ci>|<LHS key>", the AVL tie-break key
	key     int32  // interned LHS key, for re-keying via the group index
	members []int  // tuple indexes, in relation order
	entropy float64
}

// eref names one group for re-keying at the next ERepair call. The key is
// the group index's interned symbol; the rescan engine, which has no group
// indexes, never records refs.
type eref struct {
	ci  int
	key int32
}

// ERepair is the entropy-based phase of Section 6: variable-CFD groups with
// more than one RHS value are keyed by (entropy, id) in an AVL tree (the
// "2-in-1" structure of Section 6.3), and the minimum-entropy group — the
// one whose plurality value is most certain — is resolved first. Resolving a
// group rewrites mutable cells, so the groups whose read attributes changed
// are re-keyed before the next extraction. Fixes are marked FixReliable and
// carry the plurality fraction as confidence; frozen cells are never
// overwritten.
//
// Scheduling: the delta-driven engine re-keys exactly the groups the
// scheduler marked dirty under the resolution's writes — the groups of
// every rule reading the changed attribute that contain a changed tuple.
// With Options.Rescan, every group of every affected rule is re-grouped from
// the relation with cfd.Groups, as in the reference engine; the tree ends up
// identical either way, since unchanged groups keep their (entropy, id) key.
//
// Streaming updates (stream.go) never mutate a live tree: the AVL has no
// removal path keyed by external writes, and none is needed, because an
// Upsert/Delete reruns the pipeline on a fresh sub-engine whose tree is
// seeded from the updated base — a deleted tuple's entropy contribution is
// evicted and its group re-keyed simply by never being seeded (tombstoned
// cells are Null, which matches no LHS pattern). The shell engine then
// adopts that tree wholesale. TestDeleteEvictsFrozenEntropyGroup pins the
// observable consequence: deleting a member whose value anchored a frozen
// group resolution flips the survivors' resolution exactly as a
// from-scratch run would.
func (e *Engine) ERepair() {
	if e.interrupted() || e.exhausted() {
		return
	}
	var varCFDs []*cfd.CFD
	var varRules []int // rule indexes parallel to varCFDs
	for ri, r := range e.rules {
		if r.Kind == rule.VariableCFD {
			varCFDs = append(varCFDs, r.CFD)
			varRules = append(varRules, ri)
		}
	}
	if len(varCFDs) == 0 {
		return
	}

	var tree *avl.Tree
	var groups map[string]*egroup // id -> group currently keyed in tree
	done := make(map[string]bool) // ids already resolved this call, never re-keyed

	if e.opts.Rescan {
		tree, groups = &avl.Tree{}, make(map[string]*egroup)
	} else {
		if e.etree == nil {
			e.etree, e.egroups = &avl.Tree{}, make(map[string]*egroup)
		}
		tree, groups = e.etree, e.egroups
	}

	// rekey re-evaluates one group of one CFD from the current relation
	// state: its stale tree entry is removed and, unless the group is done,
	// dissolved, or conflict-free, a fresh entry is inserted. The AVL
	// tie-break id stays the raw "<ci>|<LHS key>" string — both engines must
	// resolve ties in the same order, and the rescan reference never sees
	// the group index's interned symbols.
	rekey := func(vi int, key string, kid int32, members []int) {
		id := strconv.Itoa(vi) + "|" + key
		if g := groups[id]; g != nil {
			tree.Delete(avl.Key{Entropy: g.entropy, ID: id})
			delete(groups, id)
		}
		if done[id] || len(members) == 0 {
			return
		}
		e.apply[varRules[vi]].ETuples += len(members)
		g := &egroup{ci: vi, id: id, key: kid, members: members}
		var distinct int
		g.entropy, distinct = groupEntropy(e.data, varCFDs[vi].RHS, g.members)
		if distinct < 2 {
			return // already conflict-free
		}
		groups[id] = g
		tree.Insert(avl.Key{Entropy: g.entropy, ID: g.id})
	}

	// rekeyFromIndex snapshots the group's current members out of the
	// scheduler's persistent index. Snapshotting matters: the index slices
	// mutate under later writes, while a tree entry must keep the
	// membership it was keyed with until re-keyed — the same staleness
	// contract the rescan path gets from its cfd.Groups snapshots.
	rekeyFromIndex := func(vi int, kid int32) {
		gi := e.sched.gidx[varRules[vi]]
		var members []int
		if cg := gi.groups[kid]; cg != nil {
			members = append([]int(nil), cg.members...)
		}
		rekey(vi, gi.syms.str(kid), kid, members)
	}

	// rebuild re-groups one whole CFD from the current relation state — the
	// full-rescan reference path, O(|D|) per call.
	rebuild := func(vi int) {
		prefix := strconv.Itoa(vi) + "|"
		for id, g := range groups { //det:ok maporder keyed deletions; the set of removed entries does not depend on visit order
			if strings.HasPrefix(id, prefix) {
				tree.Delete(avl.Key{Entropy: g.entropy, ID: id})
				delete(groups, id)
			}
		}
		for _, cg := range cfd.Groups(e.data, varCFDs[vi]) {
			rekey(vi, cg.Key, -1, cg.Members)
		}
	}

	switch {
	case e.opts.Rescan:
		for vi := range varCFDs {
			rebuild(vi)
		}
	case !e.eSeeded:
		// First call: seed every group of every variable CFD out of the
		// group indexes — no relation scan — after dropping the marks the
		// seed is about to cover. The entropy pass over the groups is
		// embarrassingly parallel — each task reads only its own member
		// snapshot and the live relation, which nothing writes during the
		// fan-out — so above the sequential cutoff it runs through the
		// pool, with per-task result slots merged afterwards. The merge is
		// order-independent (the AVL keys by (entropy, id), ETuples is a
		// sum), so the map iteration and the fan-out schedule never show.
		e.sched.resetE()
		type seedTask struct {
			vi       int
			key      string
			kid      int32
			members  []int
			entropy  float64
			distinct int
		}
		var tasks []seedTask
		work := 0
		for vi, ri := range varRules {
			gi := e.sched.gidx[ri]
			for kid, cg := range gi.groups { //det:ok maporder task slots are merged order-independently into the AVL by (entropy, id) key; summed counters commute
				if cg == nil || len(cg.members) == 0 {
					continue
				}
				tasks = append(tasks, seedTask{
					vi:      vi,
					key:     gi.syms.str(kid),
					kid:     kid,
					members: append([]int(nil), cg.members...),
				})
				work += len(cg.members)
			}
		}
		if e.inline(work) {
			for ti, t := range tasks {
				e.fj.At(fault.SiteSeed, ti, 0)
				rekey(t.vi, t.key, t.kid, t.members)
			}
		} else {
			if err := fanOut(e.ctx, "eRepair", len(e.pool.workers), len(tasks), func(ti int) {
				t := &tasks[ti]
				e.fj.At(fault.SiteSeed, ti, 0)
				t.entropy, t.distinct = groupEntropy(e.data, varCFDs[t.vi].RHS, t.members)
			}); err != nil {
				// Seeding never wrote the relation — the tasks only fill
				// their own slots — so poisoning the engine and leaving
				// eSeeded false is a consistent stop.
				if e.fail == nil {
					e.fail = err
				}
				return
			}
			// Replay rekey's bookkeeping per task, in slice order: count the
			// members examined, then key the still-conflicted groups. The
			// tree and groups map start empty on the seeding call and done
			// is empty, so rekey's stale-delete and done checks are no-ops
			// here by construction.
			for ti := range tasks {
				t := &tasks[ti]
				e.apply[varRules[t.vi]].ETuples += len(t.members)
				if t.distinct < 2 {
					continue
				}
				id := strconv.Itoa(t.vi) + "|" + t.key
				g := &egroup{ci: t.vi, id: id, key: t.kid, members: t.members, entropy: t.entropy}
				groups[id] = g
				tree.Insert(avl.Key{Entropy: g.entropy, ID: g.id})
			}
		}
		e.eSeeded = true
	default:
		// Later call: the previous call drained the tree, recording every
		// extracted group in eredo. Groups untouched since keep their keys;
		// re-evaluate the extracted ones and anything written since.
		redo := e.eredo
		e.eredo = nil
		for _, p := range redo {
			rekeyFromIndex(p.ci, p.key)
		}
		for vj, ri := range varRules {
			for _, kid := range e.sched.gidx[ri].takeKeys(phaseE) {
				rekeyFromIndex(vj, kid)
			}
		}
	}
	for tree.Len() > 0 {
		// Each resolution is one committed transaction (sequential writes
		// plus re-keying); checking between them keeps the tree and the
		// relation mutually consistent at every possible stop.
		if e.interrupted() || e.exhausted() {
			return
		}
		k, _ := tree.Min()
		tree.Delete(k)
		g := groups[k.ID]
		delete(groups, k.ID)
		done[g.id] = true
		if !e.opts.Rescan {
			e.eredo = append(e.eredo, eref{ci: g.ci, key: g.key})
		}
		c := varCFDs[g.ci]
		if !e.resolveGroup(c, g) {
			continue
		}
		e.res.GroupsResolved++
		if e.opts.Rescan {
			for vj, c2 := range varCFDs {
				if c2.RHS == c.RHS || hasAttr(c2.LHS, c.RHS) {
					rebuild(vj)
				}
			}
		} else {
			for vj, ri := range varRules {
				for _, kid := range e.sched.gidx[ri].takeKeys(phaseE) {
					rekeyFromIndex(vj, kid)
				}
			}
		}
	}
}

// resolveGroup rewrites the group's mutable RHS cells to a single target
// value and reports whether anything changed. A frozen (deterministically
// fixed) cell dictates the target; otherwise the plurality value wins, with
// ties broken by total confidence and then lexicographically, so resolution
// is deterministic.
func (e *Engine) resolveGroup(c *cfd.CFD, g *egroup) bool {
	a := c.RHS
	frozen := make(map[string]bool)
	for _, i := range g.members {
		t := e.data.Tuples[i]
		if t.Marks[a] == relation.FixDeterministic {
			frozen[t.Values[a]] = true
		}
	}
	if len(frozen) > 1 {
		e.conflictf("%s: group %s has conflicting frozen values, cannot resolve", c.Name, g.id)
		return false
	}
	count := make(map[string]int)
	confSum := make(map[string]float64)
	for _, i := range g.members {
		t := e.data.Tuples[i]
		if v := t.Values[a]; !relation.IsNull(v) {
			count[v]++
			confSum[v] += t.Conf[a]
		}
	}
	var target string
	if len(frozen) == 1 {
		for v := range frozen { //det:ok maporder single-entry map: len(frozen) == 1 on this branch
			target = v
		}
	} else {
		for v, n := range count { //det:ok maporder strict total order (count, quantized conf, value) picks the same target from any visit order
			switch m := count[target]; {
			case target == "" || n > m,
				n == m && quantConf(confSum[v]) > quantConf(confSum[target]),
				n == m && quantConf(confSum[v]) == quantConf(confSum[target]) && v < target:
				target = v
			}
		}
		if target == "" {
			return false // every cell is null: no evidence to propagate
		}
	}
	conf := float64(count[target]) / float64(len(g.members))
	changed := false
	for _, i := range g.members {
		t := e.data.Tuples[i]
		if t.Values[a] == target || t.Marks[a] == relation.FixDeterministic {
			continue
		}
		e.res.Fixes = append(e.res.Fixes, Fix{
			Tuple: i, Attr: a, Attribute: e.data.Schema.Attrs[a],
			Old: t.Values[a], New: target, Conf: conf,
			Mark: relation.FixReliable, Rule: c.Name,
		})
		t.Set(a, target, conf, relation.FixReliable)
		e.noteWrite(i, a)
		changed = true
	}
	return changed
}

// groupEntropy returns the Shannon entropy (base 2) of the RHS value
// distribution over the group members, and the number of distinct values.
// Null counts as a value: a group of one constant plus nulls is uncertain.
//
// The terms are summed in first-appearance order of the values, not map
// order: floating-point addition is order-sensitive in the last ulp, and the
// AVL resolution order breaks entropy ties bit-exactly, so a map-order sum
// would make the resolution sequence vary run to run whenever two groups
// share a distribution shape.
func groupEntropy(d *relation.Relation, a int, members []int) (float64, int) {
	count := make(map[string]int)
	order := make([]string, 0, 8)
	for _, i := range members {
		v := d.Tuples[i].Values[a]
		if _, ok := count[v]; !ok {
			order = append(order, v)
		}
		count[v]++
	}
	h := 0.0
	n := float64(len(members))
	for _, v := range order {
		p := float64(count[v]) / n
		h -= p * math.Log2(p)
	}
	return h, len(count)
}

func hasAttr(attrs []int, a int) bool {
	for _, x := range attrs {
		if x == a {
			return true
		}
	}
	return false
}
