package clean

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cfd"
	"repro/internal/relation"
	"repro/internal/rule"
)

// propInstance is one randomized dirty instance: a relation over small
// attribute domains plus a CFD rule set. Confidences stay below eta, so no
// cell ever freezes and the tri-level pipeline is obliged to reach a fully
// consistent instance (hRepair's retraction fallback is always available).
type propInstance struct {
	seed   int64
	schema *relation.Schema
	rows   [][]string
	confs  [][]float64
	rules  []rule.Rule
}

// genInstance derives a dirty instance deterministically from seed.
func genInstance(seed int64) *propInstance {
	rng := rand.New(rand.NewSource(seed))
	attrs := []string{"A", "B", "C", "D"}
	schema := relation.NewSchema("R", attrs...)

	// Small active domains force collisions, hence CFD conflicts.
	domains := make([][]string, len(attrs))
	for a := range attrs {
		n := 2 + rng.Intn(3)
		for v := 0; v < n; v++ {
			domains[a] = append(domains[a], fmt.Sprintf("%s%d", strings.ToLower(attrs[a]), v))
		}
	}

	inst := &propInstance{seed: seed, schema: schema}
	tuples := 4 + rng.Intn(21)
	for i := 0; i < tuples; i++ {
		row := make([]string, len(attrs))
		conf := make([]float64, len(attrs))
		for a := range attrs {
			if rng.Intn(12) == 0 {
				row[a] = relation.Null
			} else {
				row[a] = domains[a][rng.Intn(len(domains[a]))]
			}
			conf[a] = rng.Float64() * 0.75 // below eta: nothing freezes
		}
		inst.rows = append(inst.rows, row)
		inst.confs = append(inst.confs, conf)
	}

	var cfds []*cfd.CFD
	nConst := rng.Intn(3)
	for k := 0; k < nConst; k++ {
		lhs, rhs := rng.Intn(len(attrs)), rng.Intn(len(attrs))
		if lhs == rhs {
			rhs = (rhs + 1) % len(attrs)
		}
		cfds = append(cfds, cfd.New(fmt.Sprintf("const%d", k), schema,
			[]string{attrs[lhs]}, []string{domains[lhs][rng.Intn(len(domains[lhs]))]},
			attrs[rhs], domains[rhs][rng.Intn(len(domains[rhs]))]))
	}
	nVar := 1 + rng.Intn(2)
	for k := 0; k < nVar; k++ {
		lhs, rhs := rng.Intn(len(attrs)), rng.Intn(len(attrs))
		if lhs == rhs {
			rhs = (rhs + 1) % len(attrs)
		}
		cfds = append(cfds, cfd.FD(fmt.Sprintf("fd%d", k), schema,
			[]string{attrs[lhs]}, attrs[rhs]))
	}
	inst.rules = rule.Derive(cfds, nil)
	return inst
}

// relation builds the instance's data relation, optionally keeping only the
// tuples whose index is marked in keep (nil keeps all) — the handle the
// shrinker uses to drop tuples.
func (in *propInstance) relation(keep []bool) *relation.Relation {
	d := relation.New(in.schema)
	for i, row := range in.rows {
		if keep != nil && !keep[i] {
			continue
		}
		t := d.Append(row...)
		copy(t.Conf, in.confs[i])
	}
	return d
}

// check runs the pipeline on the (possibly shrunk) instance and returns a
// description of the first property violation, or "" when all hold.
func (in *propInstance) check(keep []bool) string {
	data := in.relation(keep)
	res := Run(data, nil, in.rules, DefaultOptions())

	if rep := NewChecker(in.rules, nil).Check(res.Data); len(rep.CFDViolations()) > 0 {
		return fmt.Sprintf("checker reports %d CFD violations after full pipeline:\n%s",
			len(rep.CFDViolations()), rep)
	}
	// Marks follow the last writer: a cell hRepair wrote stays FixPossible
	// unless a later pass upgraded it — by overwriting it (a newer fix
	// record carrying its own mark) or by deterministically asserting its
	// value once rising confidences allowed. Marks never fall back to
	// untouched.
	last := make(map[[2]int]relation.FixMark)
	for _, f := range res.Fixes {
		last[[2]int{f.Tuple, f.Attr}] = f.Mark
	}
	for k, want := range last { //det:ok maporder each cell check is independent; pass/fail is identical for any order
		got := res.Data.Tuples[k[0]].Marks[k[1]]
		if got != want && got != relation.FixDeterministic {
			return fmt.Sprintf("cell t%d[%s] has mark %v, want %v (its last writer) or an assert upgrade",
				k[0], res.Data.Schema.Attrs[k[1]], got, want)
		}
	}
	// Cleaning is idempotent: a second run over the repaired instance finds
	// nothing left to fix.
	if again := Run(res.Data, nil, in.rules, DefaultOptions()); len(again.Fixes) > 0 {
		return fmt.Sprintf("second run is not a no-op: %v", again.Fixes)
	}
	return ""
}

// shrink greedily removes tuples while the failure persists and returns the
// minimized keep mask plus the failure it still exhibits.
func (in *propInstance) shrink() ([]bool, string) {
	keep := make([]bool, len(in.rows))
	for i := range keep {
		keep[i] = true
	}
	fail := in.check(keep)
	for changed := true; changed; {
		changed = false
		for i := range keep {
			if !keep[i] {
				continue
			}
			keep[i] = false
			if f := in.check(keep); f != "" {
				fail = f
				changed = true
			} else {
				keep[i] = true
			}
		}
	}
	return keep, fail
}

// TestPropertyPipelineReachesConsistency is the randomized oracle for the
// tri-level pipeline: over seeded dirty instances, Run (cRepair → eRepair →
// hRepair, looped to the outer fixpoint) must yield a relation the Checker
// certifies free of CFD violations, every written cell must carry its last
// writer's mark (possibly upgraded to deterministic by a later assert), and
// re-running must be a no-op. On failure the instance is shrunk and printed
// with its seed so the run can be replayed.
func TestPropertyPipelineReachesConsistency(t *testing.T) {
	const seeds = 400
	for seed := int64(0); seed < seeds; seed++ {
		in := genInstance(seed)
		if fail := in.check(nil); fail != "" {
			keep, minFail := in.shrink()
			var b strings.Builder
			fmt.Fprintf(&b, "seed %d fails: %s\nminimized instance:\n", seed, minFail)
			for _, r := range in.rules {
				fmt.Fprintf(&b, "  rule %s: %s\n", r.Name(), r.CFD)
			}
			for i, row := range in.rows {
				if keep[i] {
					fmt.Fprintf(&b, "  t%d: %v (conf %.2f)\n", i, row, in.confs[i])
				}
			}
			t.Fatal(b.String())
		}
	}
}

// TestPropertyRetractionRespectsTrust pins hRepair's only destructive move:
// with a frozen RHS forcing retraction, an untrusted LHS cell is nulled —
// but when every LHS cell is trusted (conf >= eta), the violation must be
// left standing rather than destroy trusted data.
func TestPropertyRetractionRespectsTrust(t *testing.T) {
	schema := relation.NewSchema("R", "A", "B")
	rules := rule.Derive([]*cfd.CFD{
		cfd.New("phi1", schema, []string{"A"}, []string{"1"}, "B", "x"),
		cfd.New("phi2", schema, []string{"A"}, []string{"1"}, "B", "y"),
	}, nil)

	// Untrusted LHS: phi1 freezes B at eta, phi2 retracts A to null.
	data := relation.New(schema)
	tp := data.Append("1", "zzz")
	tp.Conf[0], tp.Conf[1] = 0.79, 0.9
	res := Run(data, nil, rules, DefaultOptions())
	if got := res.Data.Tuples[0].Values[0]; !relation.IsNull(got) {
		t.Errorf("A = %q, want null (retracted)", got)
	}
	if got := res.Data.Tuples[0].Marks[0]; got != relation.FixPossible {
		t.Errorf("A mark = %v, want possible", got)
	}
	if len(res.Unresolved) != 0 {
		t.Errorf("unresolved = %v, want none after retraction", res.Unresolved)
	}

	// Trusted LHS: no retraction; the losing rule stays unresolved and the
	// checker certifies the violation.
	data = relation.New(schema)
	data.Append("1", "zzz")
	data.SetAllConf(0.9)
	res = Run(data, nil, rules, DefaultOptions())
	if got := res.Data.Tuples[0].Values[0]; got != "1" {
		t.Errorf("trusted A = %q, want untouched", got)
	}
	if len(res.Unresolved) != 1 {
		t.Errorf("unresolved = %v, want exactly the losing constant CFD", res.Unresolved)
	}
	if res.Report.Clean() {
		t.Error("report must certify the remaining violation")
	}
}
