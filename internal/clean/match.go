package clean

import (
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/suffixtree"
)

// matcher finds, for a data tuple, the master tuples on which an MD premise
// holds, without scanning all of Dm (Section 5.2). Two blocking indexes are
// built over the master relation:
//
//   - a hash index keyed on the projection of the master attributes of the
//     equality clauses, when the MD has any;
//   - otherwise, a generalized suffix tree over the active domain of the
//     master attribute of the first edit-distance clause, queried with the
//     LCS bound LCSubstring >= max(|a|,|b|)/(K+1).
//
// Candidates from either index are then verified against the full premise.
// MDs with neither index (e.g. a single Jaro-Winkler clause) fall back to a
// full scan, which the stats expose so callers can notice.
type matcher struct {
	m      *md.MD
	master *relation.Relation

	eqDataAttrs   []int // data attrs of equality clauses
	eqMasterAttrs []int // master attrs of equality clauses
	eqIndex       map[string][]int

	simData   int // data attr of the blockable edit clause, -1 if none
	simMaster int
	simK      int
	tree      *suffixtree.Tree
	treeIDs   [][]int // suffix-tree string id -> master tuple indexes

	// allIDs is the identity list the index-less fallback scans, built once
	// and shared read-only with every fork.
	allIDs []int

	// Lookup scratch, reused across probes so the hot path does not
	// allocate per tuple: idsBuf backs the candidate list, keyBuf backs the
	// equality-index key (probed as string(keyBuf), which allocates
	// nothing), seen/seenGen dedupe candidates produced by several
	// blocking keys (first occurrence wins, preserving the verification
	// order) so no master tuple is verified twice for one probe, and
	// certLists backs the per-string id lists certCandidates merges.
	// Scratch is private per matcher; pool workers probe through forks.
	idsBuf    []int
	keyBuf    []byte
	seen      []uint64
	seenGen   uint64
	certLists [][]int

	stats MatchStats
}

// fork returns a matcher sharing x's immutable blocking indexes — the
// equality buckets, the suffix tree and its id lists, the fallback identity
// list — with private lookup scratch and statistics, so pool workers can
// probe concurrently. Fork statistics are merged back into x.stats by
// order-independent sums after each parallel phase.
func (x *matcher) fork() *matcher {
	f := *x
	f.idsBuf, f.keyBuf, f.seen, f.seenGen, f.certLists = nil, nil, nil, 0, nil
	f.stats = MatchStats{MasterSize: x.stats.MasterSize}
	return &f
}

// eqClauses returns the data- and master-side attributes of an MD's
// equality clauses — the premise part an exact-match blocking index can key
// on.
func eqClauses(m *md.MD) (data, master []int) {
	for _, cl := range m.LHS {
		if cl.Pred.Exact {
			data = append(data, cl.DataAttr)
			master = append(master, cl.MasterAttr)
		}
	}
	return data, master
}

// buildEqIndex indexes the master relation by its projection on attrs. The
// buckets hold ascending tuple indexes, which blocked enumerations rely on
// to preserve the (T, S) order of a nested scan.
func buildEqIndex(master *relation.Relation, attrs []int) map[string][]int {
	idx := make(map[string][]int, master.Len())
	for j, s := range master.Tuples {
		key := s.Key(attrs)
		idx[key] = append(idx[key], j)
	}
	return idx
}

func newMatcher(m *md.MD, master *relation.Relation) *matcher {
	x := &matcher{m: m, master: master, simData: -1}
	x.stats.MasterSize = master.Len()
	x.eqDataAttrs, x.eqMasterAttrs = eqClauses(m)
	for _, cl := range m.LHS {
		if k, ok := cl.Pred.EditThreshold(); ok && !cl.Pred.Exact && x.simData < 0 {
			x.simData, x.simMaster, x.simK = cl.DataAttr, cl.MasterAttr, k
		}
	}
	switch {
	case len(x.eqDataAttrs) > 0:
		x.eqIndex = buildEqIndex(master, x.eqMasterAttrs)
	case x.simData >= 0:
		x.tree = suffixtree.New()
		byValue := make(map[string]int)
		for j, s := range master.Tuples {
			v := s.Values[x.simMaster]
			if relation.IsNull(v) {
				continue
			}
			id, ok := byValue[v]
			if !ok {
				id = x.tree.Add(v)
				byValue[v] = id
				x.treeIDs = append(x.treeIDs, nil)
			}
			x.treeIDs[id] = append(x.treeIDs[id], j)
		}
	default:
		// No usable index: every lookup scans Dm. The identity list is
		// built here, not lazily in block, so forks can share it.
		x.allIDs = make([]int, master.Len())
		for j := range x.allIDs {
			x.allIDs[j] = j
		}
	}
	return x
}

// candidates returns the master tuple indexes on which the full MD premise
// holds for t, going through the blocking indexes when available, and counts
// the query in the matcher's statistics.
func (x *matcher) candidates(t *relation.Tuple, topL int) []int {
	x.stats.Lookups++
	ids, scanned := x.block(t, topL)
	if scanned {
		x.stats.FullScans++
	}
	x.stats.Candidates += len(ids)
	out := x.verify(t, ids)
	x.stats.Verified += len(out)
	return out
}

// probe is candidates without the statistics. hRepair's master-data
// tie-breaking uses it so the per-MD stats keep measuring matching work
// only, one lookup per tuple per round.
func (x *matcher) probe(t *relation.Tuple, topL int) []int {
	ids, _ := x.block(t, topL)
	return x.verify(t, ids)
}

// block returns the raw candidate ids for t from the blocking indexes, and
// whether it had to fall back to a full scan of the master relation. The
// returned slice is only valid until the next block call: the equality path
// aliases the index bucket, the suffix-tree path reuses the matcher's
// candidate buffer, and the fallback returns a shared identity list built
// once.
func (x *matcher) block(t *relation.Tuple, topL int) (ids []int, fullScan bool) {
	switch {
	case x.eqIndex != nil:
		x.keyBuf = relation.AppendKey(x.keyBuf[:0], t, x.eqDataAttrs)
		return x.eqIndex[string(x.keyBuf)], false
	case x.tree != nil:
		v := t.Values[x.simData]
		if relation.IsNull(v) {
			return nil, false
		}
		if x.seen == nil {
			x.seen = make([]uint64, x.master.Len())
		}
		x.seenGen++
		ids = x.idsBuf[:0]
		// Partition v into K+1 contiguous pieces: at most K edits touch at
		// most K pieces, so edit(u, v) <= K implies u contains one piece
		// unchanged — a common substring of length >= floor(|v|/(K+1)).
		minLen := len(v) / (x.simK + 1)
		for _, mt := range x.tree.TopL(v, topL, minLen) {
			for _, j := range x.treeIDs[mt.ID] {
				if x.seen[j] != x.seenGen {
					x.seen[j] = x.seenGen
					ids = append(ids, j)
				}
			}
		}
		x.idsBuf = ids
		return ids, false
	default:
		return x.allIDs, true
	}
}

// certCandidates returns, in ascending master-tuple order, an exact blocking
// superset of the master tuples on which x's MD premise can hold for t:
// every (t, s) pair with s outside the returned set fails at least one
// premise clause. ok is false when no index yields an exact superset for
// this tuple — the MD has no equality clause and either no suffix tree was
// built (no edit-distance clause) or t's value is too short for the LCS
// pigeonhole bound to hold (len(v) <= K, where v can be edited into anything
// without leaving a piece intact) — and the caller must fall back to
// scanning Dm for this tuple.
//
// Unlike block it never truncates: block serves repair, where TopL capping a
// candidate list only costs recall, while certCandidates serves the Checker,
// where a dropped candidate would falsify the certified Report. The returned
// slice shares the matcher's scratch and is only valid until the next
// lookup; the matcher's statistics are untouched (certification must not
// count as matching work).
func (x *matcher) certCandidates(t *relation.Tuple) (ids []int, ok bool) {
	switch {
	case x.eqIndex != nil:
		// Exact: a master tuple outside the bucket differs on an equality
		// clause's projection. Buckets hold ascending indexes.
		x.keyBuf = relation.AppendKey(x.keyBuf[:0], t, x.eqDataAttrs)
		return x.eqIndex[string(x.keyBuf)], true
	case x.tree != nil:
		v := t.Values[x.simData]
		if relation.IsNull(v) {
			return nil, true // the edit clause never matches null
		}
		minLen := len(v) / (x.simK + 1)
		if minLen < 1 {
			return nil, false // bound vacuous: K edits can consume all of v
		}
		// Every master value within edit distance K of v contains one of
		// v's K+1 pieces unchanged, i.e. shares a substring of length >=
		// minLen — so the tree enumeration is an exact superset. Each
		// matched string id maps to the ascending list of master tuples
		// holding that value; the lists are pairwise disjoint (one value
		// per tuple), and the order-preserving merge below restores the
		// single ascending order a nested scan would visit.
		lists := x.certLists[:0]
		for _, sid := range x.tree.StringsWithCommonSubstring(v, minLen) {
			if l := x.treeIDs[sid]; len(l) > 0 {
				lists = append(lists, l)
			}
		}
		x.certLists = lists
		x.idsBuf = mergeAscending(lists, x.idsBuf[:0])
		return x.idsBuf, true
	default:
		return nil, false // no usable index (e.g. a lone Jaro clause)
	}
}

// mergeAscending merges ascending, pairwise-disjoint int lists into out,
// preserving ascending order — the order-preserving candidate merge of the
// blocked certification path. A binary min-heap over the list heads keeps
// the merge O(n log k) without materializing and sorting the union. The
// heads of lists are consumed in place; the underlying arrays are not
// touched.
func mergeAscending(lists [][]int, out []int) []int {
	switch len(lists) {
	case 0:
		return out
	case 1:
		return append(out, lists[0]...)
	}
	down := func(k int) {
		for { //det:ok ctxflow heap sift-down: k strictly descends a log-depth heap, bounded without any cancellation concern
			l := 2*k + 1
			if l >= len(lists) {
				return
			}
			if r := l + 1; r < len(lists) && lists[r][0] < lists[l][0] {
				l = r
			}
			if lists[k][0] <= lists[l][0] {
				return
			}
			lists[k], lists[l] = lists[l], lists[k]
			k = l
		}
	}
	for k := len(lists)/2 - 1; k >= 0; k-- {
		down(k)
	}
	for len(lists) > 0 { //det:ok ctxflow bounded merge of precomputed candidate lists: consumes one head per pass, total work is the sum of list lengths
		out = append(out, lists[0][0])
		if rest := lists[0][1:]; len(rest) > 0 {
			lists[0] = rest
		} else {
			lists[0] = lists[len(lists)-1]
			lists = lists[:len(lists)-1]
		}
		down(0)
	}
	return out
}

// verify filters candidate ids down to those on which the full premise
// holds.
func (x *matcher) verify(t *relation.Tuple, ids []int) []int {
	var out []int
	for _, j := range ids {
		if x.m.MatchLHS(t, x.master.Tuples[j]) {
			out = append(out, j)
		}
	}
	return out
}
