package clean

import (
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/suffixtree"
)

// matcher finds, for a data tuple, the master tuples on which an MD premise
// holds, without scanning all of Dm (Section 5.2). Two blocking indexes are
// built over the master relation:
//
//   - a hash index keyed on the projection of the master attributes of the
//     equality clauses, when the MD has any;
//   - otherwise, a generalized suffix tree over the active domain of the
//     master attribute of the first edit-distance clause, queried with the
//     LCS bound LCSubstring >= max(|a|,|b|)/(K+1).
//
// Candidates from either index are then verified against the full premise.
// MDs with neither index (e.g. a single Jaro-Winkler clause) fall back to a
// full scan, which the stats expose so callers can notice.
type matcher struct {
	m      *md.MD
	master *relation.Relation

	eqDataAttrs   []int // data attrs of equality clauses
	eqMasterAttrs []int // master attrs of equality clauses
	eqIndex       map[string][]int

	simData   int // data attr of the blockable edit clause, -1 if none
	simMaster int
	simK      int
	tree      *suffixtree.Tree
	treeIDs   [][]int // suffix-tree string id -> master tuple indexes

	stats MatchStats
}

func newMatcher(m *md.MD, master *relation.Relation) *matcher {
	x := &matcher{m: m, master: master, simData: -1}
	x.stats.MasterSize = master.Len()
	for _, cl := range m.LHS {
		if cl.Pred.Exact {
			x.eqDataAttrs = append(x.eqDataAttrs, cl.DataAttr)
			x.eqMasterAttrs = append(x.eqMasterAttrs, cl.MasterAttr)
		} else if k, ok := cl.Pred.EditThreshold(); ok && x.simData < 0 {
			x.simData, x.simMaster, x.simK = cl.DataAttr, cl.MasterAttr, k
		}
	}
	switch {
	case len(x.eqDataAttrs) > 0:
		x.eqIndex = make(map[string][]int, master.Len())
		for j, s := range master.Tuples {
			key := s.Key(x.eqMasterAttrs)
			x.eqIndex[key] = append(x.eqIndex[key], j)
		}
	case x.simData >= 0:
		x.tree = suffixtree.New()
		byValue := make(map[string]int)
		for j, s := range master.Tuples {
			v := s.Values[x.simMaster]
			if relation.IsNull(v) {
				continue
			}
			id, ok := byValue[v]
			if !ok {
				id = x.tree.Add(v)
				byValue[v] = id
				x.treeIDs = append(x.treeIDs, nil)
			}
			x.treeIDs[id] = append(x.treeIDs[id], j)
		}
	}
	return x
}

// candidates returns the master tuple indexes on which the full MD premise
// holds for t, going through the blocking indexes when available.
func (x *matcher) candidates(t *relation.Tuple, topL int) []int {
	x.stats.Lookups++
	var ids []int
	switch {
	case x.eqIndex != nil:
		ids = x.eqIndex[t.Key(x.eqDataAttrs)]
	case x.tree != nil:
		v := t.Values[x.simData]
		if relation.IsNull(v) {
			return nil
		}
		// Partition v into K+1 contiguous pieces: at most K edits touch at
		// most K pieces, so edit(u, v) <= K implies u contains one piece
		// unchanged — a common substring of length >= floor(|v|/(K+1)).
		minLen := len(v) / (x.simK + 1)
		for _, mt := range x.tree.TopL(v, topL, minLen) {
			ids = append(ids, x.treeIDs[mt.ID]...)
		}
	default:
		x.stats.FullScans++
		ids = make([]int, x.master.Len())
		for j := range ids {
			ids[j] = j
		}
	}
	x.stats.Candidates += len(ids)
	var out []int
	for _, j := range ids {
		if x.m.MatchLHS(t, x.master.Tuples[j]) {
			out = append(out, j)
		}
	}
	x.stats.Verified += len(out)
	return out
}
