package clean

import (
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/suffixtree"
)

// matcher finds, for a data tuple, the master tuples on which an MD premise
// holds, without scanning all of Dm (Section 5.2). Two blocking indexes are
// built over the master relation:
//
//   - a hash index keyed on the projection of the master attributes of the
//     equality clauses, when the MD has any;
//   - otherwise, a generalized suffix tree over the active domain of the
//     master attribute of the first edit-distance clause, queried with the
//     LCS bound LCSubstring >= max(|a|,|b|)/(K+1).
//
// Candidates from either index are then verified against the full premise.
// MDs with neither index (e.g. a single Jaro-Winkler clause) fall back to a
// full scan, which the stats expose so callers can notice.
type matcher struct {
	m      *md.MD
	master *relation.Relation

	eqDataAttrs   []int // data attrs of equality clauses
	eqMasterAttrs []int // master attrs of equality clauses
	eqIndex       map[string][]int

	simData   int // data attr of the blockable edit clause, -1 if none
	simMaster int
	simK      int
	tree      *suffixtree.Tree
	treeIDs   [][]int // suffix-tree string id -> master tuple indexes

	stats MatchStats
}

func newMatcher(m *md.MD, master *relation.Relation) *matcher {
	x := &matcher{m: m, master: master, simData: -1}
	x.stats.MasterSize = master.Len()
	for _, cl := range m.LHS {
		if cl.Pred.Exact {
			x.eqDataAttrs = append(x.eqDataAttrs, cl.DataAttr)
			x.eqMasterAttrs = append(x.eqMasterAttrs, cl.MasterAttr)
		} else if k, ok := cl.Pred.EditThreshold(); ok && x.simData < 0 {
			x.simData, x.simMaster, x.simK = cl.DataAttr, cl.MasterAttr, k
		}
	}
	switch {
	case len(x.eqDataAttrs) > 0:
		x.eqIndex = make(map[string][]int, master.Len())
		for j, s := range master.Tuples {
			key := s.Key(x.eqMasterAttrs)
			x.eqIndex[key] = append(x.eqIndex[key], j)
		}
	case x.simData >= 0:
		x.tree = suffixtree.New()
		byValue := make(map[string]int)
		for j, s := range master.Tuples {
			v := s.Values[x.simMaster]
			if relation.IsNull(v) {
				continue
			}
			id, ok := byValue[v]
			if !ok {
				id = x.tree.Add(v)
				byValue[v] = id
				x.treeIDs = append(x.treeIDs, nil)
			}
			x.treeIDs[id] = append(x.treeIDs[id], j)
		}
	}
	return x
}

// candidates returns the master tuple indexes on which the full MD premise
// holds for t, going through the blocking indexes when available, and counts
// the query in the matcher's statistics.
func (x *matcher) candidates(t *relation.Tuple, topL int) []int {
	x.stats.Lookups++
	ids, scanned := x.block(t, topL)
	if scanned {
		x.stats.FullScans++
	}
	x.stats.Candidates += len(ids)
	out := x.verify(t, ids)
	x.stats.Verified += len(out)
	return out
}

// probe is candidates without the statistics. hRepair's master-data
// tie-breaking uses it so the per-MD stats keep measuring matching work
// only, one lookup per tuple per round.
func (x *matcher) probe(t *relation.Tuple, topL int) []int {
	ids, _ := x.block(t, topL)
	return x.verify(t, ids)
}

// block returns the raw candidate ids for t from the blocking indexes, and
// whether it had to fall back to a full scan of the master relation.
func (x *matcher) block(t *relation.Tuple, topL int) (ids []int, fullScan bool) {
	switch {
	case x.eqIndex != nil:
		ids = x.eqIndex[t.Key(x.eqDataAttrs)]
	case x.tree != nil:
		v := t.Values[x.simData]
		if relation.IsNull(v) {
			return nil, false
		}
		// Partition v into K+1 contiguous pieces: at most K edits touch at
		// most K pieces, so edit(u, v) <= K implies u contains one piece
		// unchanged — a common substring of length >= floor(|v|/(K+1)).
		minLen := len(v) / (x.simK + 1)
		for _, mt := range x.tree.TopL(v, topL, minLen) {
			ids = append(ids, x.treeIDs[mt.ID]...)
		}
	default:
		ids = make([]int, x.master.Len())
		for j := range ids {
			ids[j] = j
		}
		fullScan = true
	}
	return ids, fullScan
}

// verify filters candidate ids down to those on which the full premise
// holds.
func (x *matcher) verify(t *relation.Tuple, ids []int) []int {
	var out []int
	for _, j := range ids {
		if x.m.MatchLHS(t, x.master.Tuples[j]) {
			out = append(out, j)
		}
	}
	return out
}
