package clean

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cfd"
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/rule"
	"repro/internal/similarity"
)

// simInstance is one randomized dirty instance with master data and a
// similarity-only MD (no equality clause): the corpus leg that exercises the
// suffix-tree certify path. Names are short strings over a tiny alphabet, so
// edit-distance matches are frequent (many violating (t, s) pairs — enough
// to cross the per-rule report cap on dirtier seeds), and a few names are
// shorter than the edit threshold itself, defeating the LCS pigeonhole bound
// and forcing the checker's per-tuple full-scan fallback.
type simInstance struct {
	seed    int64
	editK   int
	dschema *relation.Schema
	rows    [][]string
	confs   [][]float64
	master  *relation.Relation
	rules   []rule.Rule
}

// genSimInstance derives a sim-MD instance deterministically from seed.
func genSimInstance(seed int64) *simInstance {
	rng := rand.New(rand.NewSource(seed ^ 0x51517e57))
	in := &simInstance{seed: seed, editK: 1 + rng.Intn(2)}
	in.dschema = relation.NewSchema("R", "A", "B", "name", "C")
	mschema := relation.NewSchema("M", "name", "C")

	// Name stems over a tiny alphabet; variants are a few random edits away,
	// so tuples block to several master candidates at once.
	alphabet := "abc"
	stem := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	stems := make([]string, 2+rng.Intn(3))
	for i := range stems {
		stems[i] = stem(4 + rng.Intn(6))
	}
	mutate := func(s string, ops int) string {
		b := []byte(s)
		for k := 0; k < ops && len(b) > 0; k++ {
			i := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0: // substitute
				b[i] = alphabet[rng.Intn(len(alphabet))]
			case 1: // insert
				b = append(b[:i], append([]byte{alphabet[rng.Intn(len(alphabet))]}, b[i:]...)...)
			case 2: // delete
				b = append(b[:i], b[i+1:]...)
			}
		}
		return string(b)
	}
	name := func() string {
		switch rng.Intn(20) {
		case 0:
			return relation.Null // never matches a premise clause
		case 1, 2:
			// Shorter than editK: the LCS bound |v|/(K+1) is vacuous and
			// certification must fall back to scanning Dm for this tuple.
			return stem(1)[:1]
		default:
			return mutate(stems[rng.Intn(len(stems))], rng.Intn(4))
		}
	}
	domainC := []string{"c0", "c1", "c2"}

	// Dense seeds cluster every name around one stem with at most K edits,
	// so nearly every (tuple, master) pair matches: with well over 100
	// violating pairs for the single MD, they cross the per-rule report cap
	// and pin the truncation accounting of the blocked enumeration.
	dense := rng.Intn(8) == 0
	if dense {
		stems = stems[:1]
		name = func() string {
			return mutate(stems[0], rng.Intn(in.editK+1))
		}
	}

	in.master = relation.New(mschema)
	for j, n := 0, 2+rng.Intn(4); j < n; j++ {
		in.master.Append(name(), domainC[rng.Intn(len(domainC))])
	}
	in.master.SetAllConf(1)

	tuples := 4 + rng.Intn(57)
	if dense {
		tuples = 80 + rng.Intn(60)
	}
	for i := 0; i < tuples; i++ {
		row := []string{
			fmt.Sprintf("a%d", rng.Intn(3)),
			fmt.Sprintf("b%d", rng.Intn(3)),
			name(),
			domainC[rng.Intn(len(domainC))],
		}
		conf := make([]float64, len(row))
		for a := range conf {
			conf[a] = rng.Float64() * 0.75
		}
		in.rows = append(in.rows, row)
		in.confs = append(in.confs, conf)
	}

	var cfds []*cfd.CFD
	if rng.Intn(2) == 0 {
		cfds = append(cfds, cfd.FD("fdBC", in.dschema, []string{"B"}, "C"))
	}
	if rng.Intn(2) == 0 {
		cfds = append(cfds, cfd.New("constAC", in.dschema,
			[]string{"A"}, []string{"a0"}, "C", domainC[rng.Intn(len(domainC))]))
	}
	m := md.New("simMD", in.dschema, mschema,
		[]md.ClauseSpec{md.Sim("name", "name", similarity.EditWithin(in.editK))},
		[]md.PairSpec{{Data: "C", Master: "C"}})
	in.rules = rule.Derive(cfds, []*md.MD{m})
	return in
}

// data builds a fresh copy of the instance's data relation.
func (in *simInstance) data() *relation.Relation {
	d := relation.New(in.dschema)
	for i, row := range in.rows {
		t := d.Append(row...)
		copy(t.Conf, in.confs[i])
	}
	return d
}

// hasShortName reports whether some data tuple's name is short enough to
// defeat the LCS blocking bound (len <= K), i.e. whether this instance
// exercises the per-tuple full-scan fallback.
func (in *simInstance) hasShortName() bool {
	a := in.dschema.MustIndex("name")
	for _, row := range in.rows {
		if !relation.IsNull(row[a]) && len(row[a]) <= in.editK {
			return true
		}
	}
	return false
}

// diffReports returns a description of the first observable difference
// between two certification reports, or "" when they are byte-identical —
// rendering, materialized violations in order, truncation accounting, and
// the per-rule/per-kind counts.
func diffReports(got, want *Report) string {
	if g, w := got.String(), want.String(); g != w {
		return fmt.Sprintf("rendering differs:\ngot:  %s\nwant: %s", g, w)
	}
	if !reflect.DeepEqual(got.Violations, want.Violations) {
		return fmt.Sprintf("violations differ:\ngot:  %v\nwant: %v", got.Violations, want.Violations)
	}
	if got.Truncated != want.Truncated {
		return fmt.Sprintf("Truncated: %d vs %d", got.Truncated, want.Truncated)
	}
	if !reflect.DeepEqual(got.byRule, want.byRule) {
		return fmt.Sprintf("byRule: %v vs %v", got.byRule, want.byRule)
	}
	if got.cfds != want.cfds || got.mds != want.mds {
		return fmt.Sprintf("kind counts: %d/%d vs %d/%d", got.cfds, got.mds, want.cfds, want.mds)
	}
	return ""
}

// TestCheckerBlockedOrderIdentity is the blocked-vs-scan pin of the
// suffix-tree certify path: over the 400-seed sim-MD corpus, the blocked
// enumeration (tree candidates, order-preserving ascending merge, per-tuple
// scan fallback) must produce a Report byte-identical to the naive
// |D|·|Dm| nested scan — same violations in the same (T, S) order, same
// details, same Truncated — while verifying no more pairs than the scan.
// The corpus must cross the per-rule cap (truncation boundary) and include
// bound-defeating short names, or the pin is vacuous there.
func TestCheckerBlockedOrderIdentity(t *testing.T) {
	const seeds = 400
	sawTruncated, sawCapExact, sawShort := false, false, false
	for seed := int64(0); seed < seeds; seed++ {
		in := genSimInstance(seed)
		d := in.data()
		c := NewChecker(in.rules, in.master)
		blocked := c.Check(d)
		c.noBlock = true
		naive := c.Check(d)
		if diff := diffReports(blocked, naive); diff != "" {
			t.Fatalf("seed %d: blocked and scan certification disagree: %s", seed, diff)
		}
		if blocked.CertVisits > naive.CertVisits {
			t.Fatalf("seed %d: blocked certification visited %d pairs, scan only %d",
				seed, blocked.CertVisits, naive.CertVisits)
		}
		if blocked.Truncated > 0 {
			sawTruncated = true
		}
		if n := blocked.NumMD(); n == maxStoredPerRule {
			sawCapExact = true
		}
		if in.hasShortName() {
			sawShort = true
		}
	}
	if !sawTruncated {
		t.Error("corpus never crossed the per-rule violation cap; the truncation boundary is untested")
	}
	_ = sawCapExact // exactly-at-cap is rare; crossing the cap is what matters
	if !sawShort {
		t.Error("corpus has no LCS-bound-defeating short names; the scan fallback is untested")
	}
}

// TestCheckerParallelWorkerSweep pins the worker-count independence of the
// certification fan-out: for every worker count the parallel Check must
// produce a Report deeply identical to the sequential one — violations in
// rule order, truncation, certify visit counter, and the internal per-rule
// accounting. Run under -race, this is also what proves the per-rule
// passes share nothing but forked matchers.
func TestCheckerParallelWorkerSweep(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		in := genSimInstance(seed)
		d := in.data()
		base := NewChecker(in.rules, in.master).Check(d)
		for _, workers := range []int{2, 4, 8} {
			c := NewChecker(in.rules, in.master)
			c.workers = workers
			rep := c.Check(d)
			if diff := diffReports(rep, base); diff != "" {
				t.Fatalf("seed %d, %d workers: %s", seed, workers, diff)
			}
			if rep.CertVisits != base.CertVisits {
				t.Fatalf("seed %d, %d workers: certify visits %d != sequential %d",
					seed, workers, rep.CertVisits, base.CertVisits)
			}
			if !reflect.DeepEqual(rep, base) {
				t.Fatalf("seed %d, %d workers: reports not deeply equal", seed, workers)
			}
		}
	}
	// The MD-heavy figure1 workload, repeated to let goroutine scheduling
	// vary: the ordered merge is the only place report order can come from.
	data, master, rules := figure1(t)
	base := NewChecker(rules, master).Check(data)
	for rep := 0; rep < 20; rep++ {
		c := NewChecker(rules, master)
		c.workers = 4
		if diff := diffReports(c.Check(data), base); diff != "" {
			t.Fatalf("figure1 repetition %d: %s", rep, diff)
		}
	}
}

// TestPropertyIncrementalEquivalenceSimMD runs the three-way engine
// equivalence (full-rescan reference, sequential incremental, 4-worker
// parallel) over the sim-MD corpus: the suffix-tree matching and blocked
// certification paths the nil-master corpus of
// TestPropertyIncrementalEquivalence cannot reach.
func TestPropertyIncrementalEquivalenceSimMD(t *testing.T) {
	const seeds = 400
	popts := DefaultOptions()
	popts.Workers = 4
	// Force the corpus through the pool: see TestPropertyIncrementalEquivalence.
	popts.SeqCutoff = -1
	for seed := int64(0); seed < seeds; seed++ {
		in := genSimInstance(seed)
		inc, ref := runModes(in.data(), in.master, in.rules, DefaultOptions())
		if d := diffResults(inc, ref); d != "" {
			t.Fatalf("seed %d: incremental and rescan engines disagree: %s", seed, d)
		}
		par := Run(in.data(), in.master, in.rules, popts)
		if d := diffParallel(par, inc); d != "" {
			t.Fatalf("seed %d: parallel and sequential engines disagree: %s", seed, d)
		}
	}
}
