package clean

import (
	"context"
	"fmt"

	"repro/internal/relation"
	"repro/internal/rule"
)

// This file implements the streaming update layer: a certified-clean
// instance kept live under external single-tuple writes (ROADMAP (B),
// "Answering FO+MOD queries under updates" in PAPERS.md frames the goal).
//
// The semantics are rebase-and-rerun, not patch-the-cleaned-state. A
// streaming engine keeps the raw base instance — its original input plus
// every accepted update — and each Upsert/Delete stages the raw write into
// that base, runs a fresh sub-engine over a clone of it, and atomically
// adopts the sub-engine's entire state on success. The acceptance bar
// forces this: the repo's contract is that after any update sequence the
// engine's cell state, Fixes, counters and Report are byte-identical to a
// from-scratch Run on the final base, and a delta repair of the *cleaned*
// state cannot meet it. Counterexample: a group {t1, t2} where cRepair
// froze t2[A] as derived from t1[A]; an upsert overwriting t1[A] leaves
// the live state with a frozen t2[A] justified by evidence that no longer
// exists, while the from-scratch run re-derives t2[A] from the new value —
// same fixpoint algorithm, different result. Re-running from base makes
// divergence structurally impossible (every adopted state IS a from-scratch
// run's output), including for degraded runs: a MaxFixes-degraded update
// matches the from-scratch oracle because the oracle degrades identically.
//
// The honest incrementality lives where it cannot bend the output:
//
//   - Certification is patched per rule (Checker.checkPatched). A rule
//     none of whose read columns changed between the previous adopted
//     cleaned relation and the new one is served from the previous run's
//     cached per-rule report — violations, cap, truncation and visit
//     counters verbatim — because rule certification is a pure function of
//     those columns and the immutable master. Report.Patched counts the
//     rules served this way.
//   - The MD blocking indexes (equality buckets, suffix tree) are built
//     once over master at NewStream and forked per sub-run instead of
//     rebuilt; forks share the immutable index structures and carry fresh
//     statistics, so counters still come out identical to a cold build.
//
// Deletes are tombstones: every cell of the tuple becomes Null with zero
// confidence and no fix mark, and the id is recorded in deleted. A null
// value matches no CFD pattern and satisfies no MD premise clause, so a
// tombstone is inert for repair and certification alike — and since the
// oracle Run sees the same tombstoned base, the equivalence is symmetric.
// Tombstoning (rather than splicing the tuple out) keeps every positional
// id stable, which the scheduler's stamp arrays and group indexes assume.
//
// Failure contract (docs/robustness.md extended to updates): a failed
// update — invalid input, cancellation, injected fault, worker panic —
// returns a typed error with the engine bit-unchanged: base, cleaned data,
// Result, Report and the certification cache all stay exactly as the last
// accepted update left them. Staging into base is undone before returning,
// and sub-engine state is adopted only after a fully successful run.

// NewStream builds a streaming engine: it runs the full pipeline over data
// once (exactly as Run would) and returns an engine whose Upsert and
// Delete keep the cleaned, certified state live under external writes.
// Result returns the latest certified state. The initial run's failure
// modes are RunContext's.
func NewStream(data, master *relation.Relation, rules []rule.Rule, opts Options) (*Engine, error) {
	return NewStreamContext(context.Background(), data, master, rules, opts)
}

// NewStreamContext is NewStream with a context attached to the initial
// run. Later updates do not reuse ctx; each UpsertContext/DeleteContext
// call carries its own.
func NewStreamContext(ctx context.Context, data, master *relation.Relation, rules []rule.Rule, opts Options) (*Engine, error) {
	e := NewContext(ctx, data, master, rules, opts)
	e.base = data.Clone()
	// The matchers built by NewContext have done no work yet: they are the
	// prototype indexes every update's sub-run forks.
	e.protos = append([]*matcher(nil), e.matchers...)
	if _, err := e.runAll(); err != nil {
		return nil, err
	}
	e.streaming = true
	e.deleted = make(map[int]bool)
	e.certCache = e.certOut
	return e, nil
}

// Result returns the engine's current certified state: the result of the
// initial run or of the last accepted update — by construction identical
// to what RunContext would return for the current base instance.
func (e *Engine) Result() *Result { return e.res }

// Upsert applies one external write to the streaming engine: it overwrites
// tuple id (0 <= id < Len) or appends a new tuple (id == Len) with the
// given values and per-cell confidences (nil conf means zero confidence
// everywhere), re-cleans, re-certifies, and returns the new Result. An
// upsert to a tombstoned id resurrects it. On error — ErrNotStreaming,
// ErrBadUpdate, or any run failure — the engine is left bit-unchanged.
func (e *Engine) Upsert(id int, values []string, conf []float64) (*Result, error) {
	return e.UpsertContext(context.Background(), id, values, conf)
}

// UpsertContext is Upsert under a context governing this update's re-run.
func (e *Engine) UpsertContext(ctx context.Context, id int, values []string, conf []float64) (*Result, error) {
	undo, err := e.stageUpsert(id, values, conf)
	if err != nil {
		return nil, err
	}
	res, err := e.rebase(ctx)
	if err != nil {
		undo()
		return nil, err
	}
	return res, nil
}

// Delete tombstones tuple id: every cell becomes Null with zero confidence,
// making the tuple invisible to every rule, and the id is remembered so a
// second delete fails. Positional ids of other tuples are unaffected. The
// failure contract is Upsert's.
func (e *Engine) Delete(id int) (*Result, error) {
	return e.DeleteContext(context.Background(), id)
}

// DeleteContext is Delete under a context governing this update's re-run.
func (e *Engine) DeleteContext(ctx context.Context, id int) (*Result, error) {
	undo, err := e.stageDelete(id)
	if err != nil {
		return nil, err
	}
	res, err := e.rebase(ctx)
	if err != nil {
		undo()
		return nil, err
	}
	return res, nil
}

// stageUpsert validates the write and applies it to base, returning the
// closure that reverts it. Validation happens before any mutation, so a
// rejected update touches nothing.
func (e *Engine) stageUpsert(id int, values []string, conf []float64) (func(), error) {
	if !e.streaming {
		return nil, ErrNotStreaming
	}
	arity := e.base.Schema.Arity()
	if len(values) != arity {
		return nil, fmt.Errorf("upsert t%d: %d values for arity %d: %w", id, len(values), arity, ErrBadUpdate)
	}
	if conf != nil && len(conf) != arity {
		return nil, fmt.Errorf("upsert t%d: %d confidences for arity %d: %w", id, len(conf), arity, ErrBadUpdate)
	}
	for a, c := range conf {
		if !(c >= 0 && c <= 1) { // also rejects NaN
			return nil, fmt.Errorf("upsert t%d: confidence %v for %s outside [0,1]: %w",
				id, c, e.base.Schema.Attrs[a], ErrBadUpdate)
		}
	}
	if id < 0 || id > e.base.Len() {
		return nil, fmt.Errorf("upsert t%d: id outside [0, %d]: %w", id, e.base.Len(), ErrBadUpdate)
	}

	if id == e.base.Len() {
		t := e.base.Append(values...)
		for a := range conf {
			t.Conf[a] = conf[a]
		}
		return func() {
			e.base.Tuples = e.base.Tuples[:len(e.base.Tuples)-1]
		}, nil
	}

	t := e.base.Tuples[id]
	saved := t.Clone()
	wasDeleted := e.deleted[id]
	for a := 0; a < arity; a++ {
		c := 0.0
		if conf != nil {
			c = conf[a]
		}
		t.Set(a, values[a], c, relation.FixNone)
	}
	delete(e.deleted, id)
	return func() {
		e.base.Tuples[id] = saved
		if wasDeleted {
			e.deleted[id] = true
		}
	}, nil
}

// stageDelete validates the delete and tombstones tuple id in base,
// returning the closure that reverts it.
func (e *Engine) stageDelete(id int) (func(), error) {
	if !e.streaming {
		return nil, ErrNotStreaming
	}
	if id < 0 || id >= e.base.Len() {
		return nil, fmt.Errorf("delete t%d: id outside [0, %d): %w", id, e.base.Len(), ErrBadUpdate)
	}
	if e.deleted[id] {
		return nil, fmt.Errorf("delete t%d: already deleted: %w", id, ErrBadUpdate)
	}
	t := e.base.Tuples[id]
	saved := t.Clone()
	for a := 0; a < e.base.Schema.Arity(); a++ {
		t.Set(a, relation.Null, 0, relation.FixNone)
	}
	e.deleted[id] = true
	return func() {
		e.base.Tuples[id] = saved
		delete(e.deleted, id)
	}, nil
}

// rebase runs a fresh sub-engine over the staged base and, on success,
// adopts its entire state. The sub-engine inherits the shell's options and
// ordered rules, forks the prototype blocking indexes instead of
// rebuilding them, and hands its certifier the previous adopted run's
// per-rule reports so untouched rules are patched rather than re-checked.
func (e *Engine) rebase(ctx context.Context) (*Result, error) {
	s := newEngine(ctx, e.base, e.master, e.rules, e.protos, e.opts)
	s.certPrev = e.certCache
	s.prevData = e.data
	res, err := s.runAll()
	if err != nil {
		return nil, err
	}
	e.adopt(s)
	return res, nil
}

// adopt makes the shell engine a full mirror of the sub-engine that just
// ran: data, result, certification cache and every piece of scheduler and
// phase state, so any read on the shell observes exactly the state of the
// run that produced the current Result. The raw base, the tombstone set
// and the index prototypes stay the shell's own.
func (e *Engine) adopt(s *Engine) {
	e.data = s.data
	e.res = s.res
	e.matchers = s.matchers
	e.apply = s.apply
	e.seen = s.seen
	e.hleft = s.hleft
	e.sched = s.sched
	e.ap = s.ap
	e.pool = s.pool
	e.allIDs = s.allIDs
	e.cSeeded, e.eSeeded, e.hSeeded = s.cSeeded, s.eSeeded, s.hSeeded
	e.etree, e.egroups, e.eredo = s.etree, s.egroups, s.eredo
	e.degraded = s.degraded
	e.start = s.start
	e.certCache = s.certOut
}

// dirtyRules computes the certification dirty mask of a sub-run: rule ri
// must be re-checked unless none of its read columns differ between the
// previously certified relation (prevData) and the relation just repaired.
// Certification reads cell values only — never confidences or marks — so
// the diff is on Values. A nil return means "re-check everything": batch
// engines (no previous pass) and any cardinality change (positional diff
// would be meaningless) take it.
func (e *Engine) dirtyRules() []bool {
	if e.certPrev == nil || e.prevData == nil || e.prevData.Len() != e.data.Len() {
		return nil
	}
	arity := e.data.Schema.Arity()
	changed := make([]bool, arity)
	for i, t := range e.prevData.Tuples {
		u := e.data.Tuples[i]
		for a := 0; a < arity; a++ {
			if !changed[a] && t.Values[a] != u.Values[a] {
				changed[a] = true
			}
		}
	}
	dirty := make([]bool, len(e.rules))
	for ri, r := range e.rules {
		for a, in := range ruleReadSet(r, arity) {
			if in && changed[a] {
				dirty[ri] = true
				break
			}
		}
	}
	return dirty
}

// Deleted reports whether tuple id is currently tombstoned.
func (e *Engine) Deleted(id int) bool { return e.deleted[id] }
