package clean

import (
	"repro/internal/cfd"
	"repro/internal/relation"
	"repro/internal/rule"
)

// DefaultHBudget is the per-cell change budget of HRepair used when
// Options.HBudget is zero: how many times hRepair may rewrite one cell
// before it stops trusting value propagation for it and falls back to
// retraction.
const DefaultHBudget = 3

// HRepair is the heuristic phase that runs after CRepair and ERepair have
// converged: any CFD violation still standing has no deterministic or
// reliable fix, so the engine picks a repair value heuristically and marks
// the write FixPossible. It iterates to a fixpoint over all CFD rules:
//
//   - a constant-CFD violation writes the pattern constant into the RHS
//     cell;
//   - a variable-CFD group with disagreeing RHS values is rewritten to the
//     majority value weighted by cell confidence, with ties broken first by
//     plain counts, then by master-data support through the MD blocking
//     indexes, then lexicographically;
//   - when the target cell is frozen (FixDeterministic) or its change
//     budget is exhausted, the violation is instead dissolved by retracting
//     an untrusted LHS cell to null — pattern tuples never match null, so
//     the tuple leaves the rule's scope.
//
// Termination is guaranteed: every pass that does not terminate the loop
// performs at least one write, each cell accepts at most HBudget value
// writes, and each retraction nulls a currently non-null cell (a cell is
// only re-nulled after a budgeted rewrite), so the total number of writes
// is bounded by |D|·arity·(2·HBudget+1). A violation whose RHS is frozen
// and whose LHS cells are all trusted (confidence >= Eta) or frozen is left
// standing for the Checker to report.
//
// Scheduling mirrors CRepair: hRepair's first round visits every tuple and
// group (seeding its own worklists, independent of cRepair's); later rounds
// — and later outer passes of Run — visit only the tuples and groups
// written since hRepair last saw them. Options.Rescan restores the full
// re-scan of every round; Options.Workers > 1 shards each rule's visit
// across the pool, with the per-cell budget read during propose and spent
// during the deterministic commit.
func (e *Engine) HRepair() {
	for {
		// Same round-granularity cancellation points as CRepair.
		if e.interrupted() || e.exhausted() {
			return
		}
		e.res.HRounds++
		seeded := e.hSeeded
		writes := 0
		for ri, r := range e.rules {
			if e.interrupted() {
				return
			}
			full := e.opts.Rescan || !seeded
			switch r.Kind {
			case rule.ConstantCFD:
				var ids []int
				if full {
					if e.sched != nil {
						e.sched.clearTuples(phaseH, ri)
					}
					ids = e.allTupleIDs()
				} else {
					ids = e.sched.takeTuples(phaseH, ri)
				}
				writes += e.applyTuples(phaseH, ri, ids, func(ap *applier, i int) int {
					return ap.hConstantTuple(ri, r.CFD, i)
				})
			case rule.VariableCFD:
				switch {
				case full && e.sched != nil:
					// Seeding round: groups come from the persistent index,
					// violating ones filtered the way ViolatingGroups would.
					e.sched.clearGroups(phaseH, ri)
					writes += e.applyGroups(phaseH, ri, e.sched.allGroups(ri), func(ap *applier, members []int) int {
						if !conflictedMembers(ap.e.data, r.CFD.RHS, members) {
							return 0
						}
						return ap.hVariableGroup(ri, r.CFD, members)
					})
				case full:
					for _, g := range cfd.ViolatingGroups(e.data, r.CFD) {
						writes += e.ap.hVariableGroup(ri, r.CFD, g.Members)
					}
				default:
					writes += e.applyGroups(phaseH, ri, e.sched.takeGroups(phaseH, ri), func(ap *applier, members []int) int {
						if !conflictedMembers(ap.e.data, r.CFD.RHS, members) {
							// Examined but conflict-free: counted here, since
							// only hVariableGroup counts the groups it runs on.
							ap.stat(ri).HTuples += len(members)
							return 0
						}
						return ap.hVariableGroup(ri, r.CFD, members)
					})
				}
			}
		}
		e.hSeeded = true
		if writes == 0 {
			return
		}
	}
}

// conflictedMembers reports whether the members hold more than one distinct
// RHS value (null counts as a value), i.e. the group is a standing violation.
func conflictedMembers(d *relation.Relation, a int, members []int) bool {
	first := d.Tuples[members[0]].Values[a]
	for _, i := range members[1:] {
		if d.Tuples[i].Values[a] != first {
			return true
		}
	}
	return false
}

// hConstantTuple repairs tuple i against a constant CFD if it violates it:
// the pattern constant is forced, so the only heuristic decision is whether
// to write it or to retract the tuple from the rule's scope.
func (ap *applier) hConstantTuple(ri int, c *cfd.CFD, i int) int {
	ap.stat(ri).HTuples++
	t := ap.e.data.Tuples[i]
	if !c.MatchLHS(t) || t.Values[c.RHS] == c.RHSPattern {
		return 0
	}
	if t.Marks[c.RHS] != relation.FixDeterministic && ap.spend(i, c.RHS) {
		return ap.hfix(i, c.RHS, c.RHSPattern, minConfAt(t, c.LHS), c.Name)
	}
	return ap.retract(i, c)
}

// hVariableGroup repairs one disagreeing LHS-equal group of a variable CFD
// by equalizing it on a heuristically chosen target value.
func (ap *applier) hVariableGroup(ri int, c *cfd.CFD, members []int) int {
	ap.stat(ri).HTuples += len(members)
	e := ap.e
	writes := 0
	a := c.RHS
	frozen := make(map[string]int) // frozen value -> frozen member count
	for _, i := range members {
		t := e.data.Tuples[i]
		if t.Marks[a] == relation.FixDeterministic {
			frozen[t.Values[a]]++
		}
	}
	if len(frozen) > 1 {
		// Disagreeing deterministic fixes cannot be equalized, only
		// shrunk. Retract only the members frozen at minority values
		// from the rule's scope: the plurality frozen value (ties
		// broken lexicographically) survives as the next round's
		// forced target, so the majority's data is kept.
		keep := ""
		for v, n := range frozen { //det:ok maporder strict total order (count, value) picks the same survivor from any visit order
			if keep == "" || n > frozen[keep] || (n == frozen[keep] && v < keep) {
				keep = v
			}
		}
		for _, i := range members {
			t := e.data.Tuples[i]
			if t.Marks[a] == relation.FixDeterministic && t.Values[a] != keep {
				writes += ap.retract(i, c)
			}
		}
		return writes
	}
	var target string
	var conf float64
	if len(frozen) == 1 {
		// A single frozen value dictates the target; the confidence of
		// the heuristic copies is the plurality fraction of the group,
		// as in eRepair — not the frozen source's, and never 1: the
		// copies are still guesses.
		for v := range frozen { //det:ok maporder single-entry map: len(frozen) == 1 on this branch
			target = v
		}
		n := 0
		for _, i := range members {
			if e.data.Tuples[i].Values[a] == target {
				n++
			}
		}
		conf = float64(n) / float64(len(members))
	} else {
		target, conf = ap.hTarget(c, members)
		if target == "" {
			return 0 // every cell is null: nothing to propagate
		}
	}
	for _, i := range members {
		t := e.data.Tuples[i]
		if t.Values[a] == target {
			continue
		}
		if t.Marks[a] != relation.FixDeterministic && ap.spend(i, a) {
			writes += ap.hfix(i, a, target, conf, c.Name)
		} else {
			writes += ap.retract(i, c)
		}
	}
	return writes
}

// hTarget picks the repair value for a disagreeing group: the value with
// the largest total cell confidence, with ties broken by plain occurrence
// count, then by support from master data via the MD blocking indexes, and
// finally lexicographically so the choice is deterministic — the chain is a
// strict total order, so the map iteration order underneath can never show
// (pinned by TestHTargetTieBreakDeterminism). The returned confidence is
// the plurality fraction of the group, as in eRepair.
func (ap *applier) hTarget(c *cfd.CFD, members []int) (string, float64) {
	e := ap.e
	a := c.RHS
	count := make(map[string]int)
	confSum := make(map[string]float64)
	for _, i := range members {
		t := e.data.Tuples[i]
		if v := t.Values[a]; !relation.IsNull(v) {
			count[v]++
			confSum[v] += t.Conf[a]
		}
	}
	var master map[string]bool // lazily built on the first tie
	inMaster := func(v string) bool {
		if master == nil {
			master = ap.masterSuggestions(a, members)
		}
		return master[v]
	}
	target := ""
	for v := range count { //det:ok maporder strict total order (quantized conf, count, master support, value) pinned by TestHTargetTieBreakDeterminism
		if target == "" {
			target = v
			continue
		}
		qv, qt := quantConf(confSum[v]), quantConf(confSum[target])
		switch {
		case qv > qt,
			qv == qt && count[v] > count[target],
			qv == qt && count[v] == count[target] &&
				inMaster(v) && !inMaster(target),
			qv == qt && count[v] == count[target] &&
				inMaster(v) == inMaster(target) && v < target:
			target = v
		}
	}
	if target == "" {
		return "", 0
	}
	return target, float64(count[target]) / float64(len(members))
}

// masterSuggestions collects the master values offered for data attribute a
// by the MD blocking indexes, restricted to the candidates of the group's
// members. These are the values a match rule would write if its premise
// ever came to hold, so among otherwise equally supported repair values
// they are the better guess.
func (ap *applier) masterSuggestions(a int, members []int) map[string]bool {
	e := ap.e
	out := make(map[string]bool)
	for ri, r := range e.rules {
		if r.Kind != rule.MatchMD || ap.matchers[ri] == nil {
			continue
		}
		for _, p := range r.MD.RHS {
			if p.DataAttr != a {
				continue
			}
			for _, i := range members {
				for _, j := range ap.matchers[ri].probe(e.data.Tuples[i], e.opts.TopL) {
					if v := e.master.Tuples[j].Values[p.MasterAttr]; !relation.IsNull(v) {
						out[v] = true
					}
				}
			}
		}
	}
	return out
}

// retract dissolves a violation involving tuple i of CFD c by nulling one
// of the tuple's LHS cells: pattern tuples never match null, so the tuple
// leaves every group of c. Only untrusted cells are eligible: frozen cells
// never, and untouched source cells only when their confidence is below
// Eta — but cells the engine itself wrote (reliable or possible fixes) are
// always fair game, since their confidence is a derived plurality fraction,
// not source evidence. Among eligible cells the least confident is chosen.
// Returns 0 when no cell is eligible; the violation then stands and the
// Checker will report it.
func (ap *applier) retract(i int, c *cfd.CFD) int {
	t := ap.e.data.Tuples[i]
	pick := -1
	for _, b := range c.LHS {
		if t.Marks[b] == relation.FixDeterministic {
			continue
		}
		if t.Marks[b] == relation.FixNone && t.Conf[b] >= ap.e.opts.Eta {
			continue
		}
		if relation.IsNull(t.Values[b]) {
			continue
		}
		if pick < 0 || t.Conf[b] < t.Conf[pick] {
			pick = b
		}
	}
	if pick < 0 {
		return 0
	}
	return ap.hfix(i, pick, relation.Null, 0, c.Name+" (retract)")
}

// hfix writes value v to cell (i, a) as a possible fix with confidence
// conf, recording it in the result. The caller must have checked that the
// cell is not frozen and that v differs from the current value.
func (e *Engine) hfix(i, a int, v string, conf float64, ruleName string) int {
	t := e.data.Tuples[i]
	e.res.Fixes = append(e.res.Fixes, Fix{
		Tuple: i, Attr: a, Attribute: e.data.Schema.Attrs[a],
		Old: t.Values[a], New: v, Conf: conf,
		Mark: relation.FixPossible, Rule: ruleName,
	})
	t.Set(a, v, conf, relation.FixPossible)
	e.noteWrite(i, a)
	return 1
}
