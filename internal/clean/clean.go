// Package clean implements the unified data-cleaning engine of Sections 5
// and 6 of the paper: cRepair, the confidence-based phase that applies the
// ordered cleaning rules to a fixpoint and produces deterministic fixes;
// eRepair, the entropy-based phase that resolves the remaining variable-CFD
// conflicts in order of increasing entropy and produces reliable fixes; and
// hRepair, the heuristic phase that repairs whatever CFD violations survive
// both and produces possible fixes, so the pipeline terminates in a
// consistent instance. A Checker pass certifies the outcome.
//
// The engine never mutates its inputs: it clones the data relation, applies
// fixes to the clone, and reports every cell it wrote together with the rule
// that wrote it. Cells fixed by cRepair carry confidence at least η and are
// immutable for the rest of the process (Section 5.1); eRepair only touches
// mutable cells (Section 6.1). MD matching goes through blocking indexes —
// per-attribute hash indexes on equality clauses and a generalized suffix
// tree for edit-distance clauses (Section 5.2) — so it is not O(|D|·|Dm|).
package clean

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/avl"
	"repro/internal/fault"
	"repro/internal/relation"
	"repro/internal/rule"
)

// confEps is the resolution at which summed cell confidences are compared:
// quantizing through it absorbs floating-point dust (0.1+0.2 ties with 0.3)
// while remaining a total order, so tie-breaks that the docs promise for
// "equal" confidence actually fire and resolution stays deterministic.
const confEps = 1e-9

// quantConf quantizes a summed confidence for tie-break comparisons.
func quantConf(x float64) int64 { return int64(math.Round(x / confEps)) }

// Options configures the cleaning pipeline.
type Options struct {
	// Eta is the confidence threshold η of Section 5: cRepair only applies
	// fixes whose propagated confidence reaches Eta, and cells at or above
	// Eta written by cRepair become immutable.
	Eta float64
	// TopL bounds the number of blocking candidates returned per
	// suffix-tree lookup during MD matching (the constant l of Section 5.2).
	TopL int
	// MaxRounds bounds the cRepair fixpoint iteration; 0 means no bound.
	// Termination is guaranteed regardless, because every applied fix or
	// assertion freezes a previously mutable cell.
	MaxRounds int
	// HBudget is the per-cell change budget of hRepair: how many times the
	// heuristic phase may rewrite one cell before falling back to
	// retraction, which prevents oscillation between interacting rules.
	// 0 means DefaultHBudget.
	HBudget int
	// Rescan selects the full-rescan reference scheduler: every cRepair and
	// hRepair round re-applies every rule to every tuple, and eRepair
	// re-groups whole rules after each resolution, as in the original
	// engine. The default (false) is the delta-driven scheduler, which after
	// the seeding round hands each rule only the tuples and groups whose
	// read attributes were written since the rule last saw them. Both
	// produce fix-for-fix identical Results; Rescan exists as the
	// correctness reference and the benchmark baseline.
	Rescan bool
	// Workers bounds the applier worker pool: each rule's worklist is
	// sharded across Workers goroutines that propose fixes concurrently,
	// and the proposals are committed through a single deterministic merge
	// (see parallel.go), so any Workers value produces fix-for-fix
	// identical Results — same Fixes order, Asserts, Conflicts, Rounds,
	// work counters and certified Report. 0 means GOMAXPROCS; 1 disables
	// the pool. The Rescan reference engine is always sequential and
	// ignores Workers.
	Workers int
	// SeqCutoff is the work threshold below which a rule's worklist runs
	// inline on the merge goroutine instead of fanning out to the pool:
	// small delta rounds dominate after the seeding round, and spawning
	// workers plus a proposal merge for a handful of tuples costs more
	// than the visits themselves, which is how Workers > 1 used to lose
	// to Workers = 1 on the wall clock. Work is estimated in tuple visits
	// (tuples for per-tuple rules, total members for group rules). 0 means
	// DefaultSeqCutoff; negative forces every nonempty worklist through
	// the pool, which tests use to exercise the parallel path on tiny
	// property-test instances. The fast path cannot change any output —
	// inline and pooled execution are fix-for-fix identical by the
	// propose/commit merge argument.
	SeqCutoff int
	// Deadline is the soft wall-clock budget of the run. Zero means none.
	// Unlike a context deadline — which aborts with ErrDeadline — exceeding
	// the soft budget degrades gracefully: the engine stops proposing new
	// work at the next round boundary, finishes the round already committed,
	// runs the Checker over whatever state it reached, and returns a Result
	// whose Report is flagged Degraded with the exact remaining-violation
	// counts. A truthful partial answer instead of an overrun or a lie.
	// Setting Deadline makes the outcome timing-dependent by design, so the
	// byte-identity suites never set it.
	Deadline time.Duration
	// MaxFixes is the soft resource ceiling on applied fixes: once the run
	// has recorded at least MaxFixes fixes it stops proposing at the next
	// round boundary and degrades exactly like Deadline. Zero means
	// unlimited. Unlike Deadline, MaxFixes is deterministic: the same input
	// and options degrade at the same point every run.
	MaxFixes int
	// Fault arms the deterministic fault injector (internal/fault) on the
	// engine's hook points — applier visits, matcher probes, pool
	// scheduling, certification tasks. Nil (the default) leaves the hooks
	// inert at the cost of one predictable nil-check branch. Only the
	// robustness property suite sets it.
	Fault *fault.Injector
}

// DefaultSeqCutoff is the inline-execution work threshold used when
// Options.SeqCutoff is zero. At ~128 tuple visits the applier work is on the
// order of the fan-out overhead (goroutine wakeups, the proposal slice, the
// counter merge), so smaller worklists are faster inline on every machine.
const DefaultSeqCutoff = 128

// seqCutoff resolves Options.SeqCutoff to the effective inline threshold:
// 0 picks the default, negative disables the fast path entirely.
func (o Options) seqCutoff() int {
	if o.SeqCutoff == 0 {
		return DefaultSeqCutoff
	}
	return o.SeqCutoff
}

// inline reports whether a worklist with the given estimated tuple-visit
// work should bypass the pool and run on the merge goroutine.
func (e *Engine) inline(work int) bool {
	if e.pool == nil || work == 0 {
		return true
	}
	cut := e.opts.seqCutoff()
	if cut < 0 {
		return false // forced pool: the determinism suites' escape hatch
	}
	// A single-P process cannot overlap propose work: the pool would pay
	// op recording, rewind and replay with zero parallelism to show for
	// it, so every worklist runs inline regardless of size — this is what
	// makes Workers > 1 wall-neutral on a single-core machine instead of
	// ~25% slower on the seeding rounds.
	if runtime.GOMAXPROCS(0) == 1 {
		return true
	}
	return work < cut
}

// workerCount resolves Options.Workers to the effective pool size.
func (o Options) workerCount() int {
	if o.Rescan {
		return 1
	}
	if o.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// DefaultOptions returns the thresholds used in the paper's experiments.
func DefaultOptions() Options { return Options{Eta: 0.8, TopL: 32} }

// Fix records one cell write performed by the engine.
type Fix struct {
	Tuple     int     // tuple index in the data relation
	Attr      int     // attribute position
	Attribute string  // attribute name, for reports
	Old, New  string  // value before and after
	Conf      float64 // confidence attached to the new value
	Mark      relation.FixMark
	Rule      string // name of the rule that produced the fix
}

// String renders the fix as "tN[attr]: old -> new (conf, mark, rule)".
func (f Fix) String() string {
	return fmt.Sprintf("t%d[%s]: %q -> %q (conf %.2f, %s, %s)",
		f.Tuple, f.Attribute, f.Old, f.New, f.Conf, f.Mark, f.Rule)
}

// MatchStats counts the work done by one MD's blocking matcher, so that
// tests and reports can verify matching does not degenerate to a full scan.
type MatchStats struct {
	Lookups    int // candidate queries issued (one per tuple visit)
	Candidates int // master tuples examined across all lookups
	Verified   int // candidates on which the full premise held
	FullScans  int // lookups that had no usable index and scanned Dm
	MasterSize int // |Dm|
}

// ApplyStats counts, per rule, the tuples and groups its appliers examined
// across the whole run. It is the scheduler's analogue of MatchStats: the
// deterministic work measure that benchmarks and the CI gate compare between
// the delta-driven and full-rescan schedulers, free of timing noise.
type ApplyStats struct {
	CTuples int // tuples (or group members) examined by the cRepair applier
	CGroups int // variable-CFD groups examined by the cRepair applier
	ETuples int // group members examined while (re)keying eRepair's tree
	HTuples int // tuples (or group members) examined by the hRepair applier
}

// Visits returns the rule's total tuple visits across all phases.
func (s *ApplyStats) Visits() int { return s.CTuples + s.ETuples + s.HTuples }

// Result is the outcome of a cleaning run.
type Result struct {
	// Data is the repaired relation (a clone of the input).
	Data *relation.Relation
	// Fixes lists every cell whose value changed, in application order.
	Fixes []Fix
	// Asserts counts cells whose value was confirmed (not changed) by a
	// deterministic rule and thereby frozen with confidence >= Eta.
	Asserts int
	// Conflicts describes fixes the engine refused to apply because they
	// would overwrite an immutable cell or because high-confidence
	// evidence disagreed.
	Conflicts []string
	// Rounds is the number of cRepair fixpoint passes executed.
	Rounds int
	// HRounds is the number of hRepair fixpoint passes executed.
	HRounds int
	// GroupsResolved counts the variable-CFD groups resolved by eRepair.
	GroupsResolved int
	// Match maps MD rule names to their blocking statistics.
	Match map[string]*MatchStats
	// Apply maps rule names to their applier work counters.
	Apply map[string]*ApplyStats
	// Resolved and Unresolved partition the rule names by whether the
	// repaired data satisfies the underlying dependency, as certified by
	// Report.
	Resolved, Unresolved []string
	// Report is the Checker's certification of Data against the rule set:
	// the structured violations behind Resolved/Unresolved.
	Report *Report
	// WorkerVisits records, per pool worker, the applier tuple visits that
	// worker proposed. Nil when the pool was off (Workers <= 1). The sum is
	// at most TotalVisits — trivial worklists run inline on the merge
	// goroutine — and the split across workers depends on runtime
	// scheduling, so it is reported (uniclean -bench) but never gated.
	WorkerVisits []int64
	// Degraded reports that a soft budget (Options.Deadline or
	// Options.MaxFixes) stopped the run before the pipeline's fixpoint:
	// every committed round is complete and certified, but violations the
	// engine could have repaired may remain, counted exactly in Report.
	// DegradeReason names the exhausted budget ("deadline", "max-fixes").
	Degraded      bool
	DegradeReason string
}

// FixesMarked returns the subset of Fixes carrying the given mark, i.e. the
// fixes of one pipeline phase.
func (r *Result) FixesMarked(m relation.FixMark) []Fix {
	var out []Fix
	for _, f := range r.Fixes {
		if f.Mark == m {
			out = append(out, f)
		}
	}
	return out
}

// DeterministicFixes returns the subset of Fixes produced by cRepair.
func (r *Result) DeterministicFixes() []Fix {
	return r.FixesMarked(relation.FixDeterministic)
}

// ReliableFixes returns the subset of Fixes produced by eRepair.
func (r *Result) ReliableFixes() []Fix {
	return r.FixesMarked(relation.FixReliable)
}

// PossibleFixes returns the subset of Fixes produced by hRepair.
func (r *Result) PossibleFixes() []Fix {
	return r.FixesMarked(relation.FixPossible)
}

// TotalVisits sums the applier tuple visits over all rules: the
// scheduler-work measure benchmarks compare between the delta-driven and
// full-rescan engines.
func (r *Result) TotalVisits() int {
	n := 0
	for _, s := range r.Apply { //det:ok maporder integer sum is order-independent
		n += s.Visits()
	}
	return n
}

// Engine runs the cleaning pipeline over a cloned data relation.
type Engine struct {
	data     *relation.Relation
	master   *relation.Relation
	rules    []rule.Rule
	opts     Options
	matchers []*matcher // parallel to rules; nil for CFD rules
	res      *Result
	seen     map[string]bool // conflicts already recorded
	hleft    map[[2]int]int  // hRepair's per-cell budget, shared across passes

	sched   *scheduler    // worklists, group indexes, reverse dependency map
	apply   []*ApplyStats // parallel to rules
	cSeeded bool          // cRepair's first round (visit everything) has run
	hSeeded bool          // hRepair's first round has run

	ap     *applier // the canonical direct-commit applier (see parallel.go)
	pool   *pool    // worker pool; nil when the effective worker count is 1
	allIDs []int    // cached identity worklist for full-visit rounds

	// eRepair's entropy tree, persistent across outer passes in delta mode:
	// later ERepair calls re-key only the groups extracted last call (eredo)
	// plus the groups written since, instead of re-seeding from scratch.
	etree   *avl.Tree
	egroups map[string]*egroup // id -> group currently keyed in etree
	eredo   []eref             // groups extracted by the previous call
	eSeeded bool               // eRepair's full seeding has run

	// ctx carries the run's cooperative cancellation: the round loops, the
	// eRepair resolution loop, the pool's claim loops and the certify tasks
	// all poll it, so a cancel or deadline surfaces as a typed error within
	// one round. Always non-nil (Background for the legacy Run/New API).
	ctx context.Context
	// fail is the first failure observed — ErrCanceled, ErrDeadline, or a
	// contained *WorkerError. Once set it poisons the engine: every phase
	// becomes a no-op and the run returns it. The transaction argument is
	// what makes the poisoned state safe: a failure detected inside a
	// parallel fan-out rewinds every pending proposal before fail is set, so
	// the clone holds exactly the committed rounds, never a prefix of one.
	fail error
	// degraded names the soft budget that stopped proposal ("deadline",
	// "max-fixes"), or "" while the run is within budget. Unlike fail, a
	// degraded engine still certifies: Finish runs the Checker and flags
	// the Result and Report.
	degraded string
	// start anchors the Options.Deadline soft budget.
	start time.Time
	// fj is Options.Fault; nil keeps every hook point inert.
	fj *fault.Injector

	// Streaming state (see stream.go). Zero on batch engines: RunContext
	// never sets any of it, so the one-shot pipeline pays nothing for the
	// update API existing.
	//
	// streaming marks an engine built by NewStream; base is its raw input
	// plus every accepted update (the instance a from-scratch run would be
	// handed); deleted tracks tombstoned tuple ids; protos holds the master
	// blocking indexes built once at construction, which every update's
	// sub-run forks instead of rebuilding.
	streaming bool
	base      *relation.Relation
	deleted   map[int]bool
	protos    []*matcher
	// certPrev/prevData feed the incremental certification of finish: the
	// per-rule reports and final relation of the previously adopted run.
	// A rule none of whose read attributes changed between prevData and the
	// new final relation is served from certPrev instead of being
	// re-checked. certOut is what finish produced, adopted as the next
	// certPrev on success; certCache is the adopted copy on the streaming
	// shell.
	certPrev  []ruleReport
	prevData  *relation.Relation
	certOut   []ruleReport
	certCache []ruleReport
}

// New prepares an engine: it clones data, orders the rules per Section 6.2,
// builds the MD blocking indexes over master, and computes the scheduler
// state (reverse dependency map, variable-CFD group indexes) over the clone.
// master may be nil when the rule set contains no MDs. The engine is not
// cancellable; use NewContext to attach a context.
func New(data, master *relation.Relation, rules []rule.Rule, opts Options) *Engine {
	return NewContext(context.Background(), data, master, rules, opts)
}

// NewContext is New with a context attached: the engine polls ctx at round
// granularity (round loops, the eRepair resolution loop, pool claim loops,
// certify tasks) and fails with ErrCanceled/ErrDeadline once it is done.
func NewContext(ctx context.Context, data, master *relation.Relation, rules []rule.Rule, opts Options) *Engine {
	return newEngine(ctx, data, master, rule.Order(rules), nil, opts)
}

// newEngine wires an engine from already-ordered rules and, when protos is
// non-nil, from prebuilt master blocking indexes (parallel to ordered) that
// are forked instead of rebuilt — the constructor the streaming update path
// uses so each update's sub-run reuses the indexes built once at NewStream.
func newEngine(ctx context.Context, data, master *relation.Relation, ordered []rule.Rule, protos []*matcher, opts Options) *Engine {
	e := &Engine{
		data:   data.Clone(),
		master: master,
		rules:  ordered,
		opts:   opts,
		res:    &Result{Match: make(map[string]*MatchStats), Apply: make(map[string]*ApplyStats)},
		seen:   make(map[string]bool),
		ctx:    ctx,
		start:  time.Now(),
		fj:     opts.Fault,
	}
	e.matchers = make([]*matcher, len(e.rules))
	e.apply = make([]*ApplyStats, len(e.rules))
	for i, r := range e.rules {
		if r.Kind == rule.MatchMD && master != nil {
			if protos != nil && protos[i] != nil {
				// A fork shares the immutable equality buckets and suffix
				// tree with zeroed statistics, so a sub-run's matcher work
				// counters come out identical to a fresh build's.
				e.matchers[i] = protos[i].fork()
			} else {
				e.matchers[i] = newMatcher(r.MD, master)
			}
			e.res.Match[r.Name()] = &e.matchers[i].stats
		}
		e.apply[i] = &ApplyStats{}
		e.res.Apply[r.Name()] = e.apply[i]
	}
	if !opts.Rescan {
		// The reference engine re-derives everything by scanning, so it
		// gets no scheduler at all: building and maintaining indexes it
		// never reads would bill the rescan baseline for delta-engine
		// bookkeeping and flatter the measured speedup.
		e.sched = newScheduler(e.rules, e.data)
	}
	e.ap = &applier{e: e, matchers: e.matchers}
	if n := opts.workerCount(); n > 1 {
		e.pool = newPool(e, n)
	}
	return e
}

// noteWrite tells the scheduler that cell (i, a) changed — value, confidence
// or mark — so the rules reading a get re-enqueued. Every engine write path
// (fix, assert, eRepair's resolveGroup, hRepair's hfix) funnels through it;
// that is what keeps the group indexes and worklists exact.
func (e *Engine) noteWrite(i, a int) {
	if e.sched != nil {
		e.sched.noteWrite(i, a, e.data.Tuples[i])
	}
}

// setActive and clearActive bracket a per-tuple applier run for the
// scheduler's self-write suppression; they are no-ops on the scheduler-less
// reference engine.
func (e *Engine) setActive(phase, ri, i int) {
	if e.sched != nil {
		e.sched.setActive(phase, ri, i)
	}
}

func (e *Engine) clearActive() {
	if e.sched != nil {
		e.sched.clearActive()
	}
}

// Run executes the full tri-level pipeline — cRepair (deterministic fixes),
// eRepair (reliable fixes), hRepair (possible fixes) — to an outer fixpoint
// and returns the certified result.
//
// The phases loop because they feed each other: an eRepair or hRepair write
// carries a derived confidence that can reach Eta and thereby enable a
// deterministic rule (an MD premise, say) that could not fire before, so a
// single pass would certify as dirty data the engine itself can clean on a
// second invocation. Every pass ends with HRepair, so the heuristic phase's
// CFD-consistency guarantee holds for the final instance. hRepair's
// per-cell change budget is shared across passes, and the pass count is
// hard-capped by the cell count as a backstop against write cycles through
// interacting rules.
func Run(data, master *relation.Relation, rules []rule.Rule, opts Options) *Result {
	res, err := RunContext(context.Background(), data, master, rules, opts)
	if err != nil {
		// Unreachable without a cancellable context or an armed fault
		// injector — Background never cancels, so the only failure mode
		// left is a contained panic, which the legacy API re-raises.
		panic(err)
	}
	return res
}

// RunContext is Run under a context: a cancel or deadline stops the run at
// the next cancellation point (round boundaries, pool claim loops, the
// eRepair resolution loop, certify tasks) and returns ErrCanceled or
// ErrDeadline. Panics anywhere in the pipeline are contained and returned as
// a *WorkerError. On any error the caller's input relation is untouched —
// the engine only ever writes its private clone — and no Result is returned:
// a run either completes (possibly Degraded, see Options.Deadline/MaxFixes)
// or fails as a unit.
func RunContext(ctx context.Context, data, master *relation.Relation, rules []rule.Rule, opts Options) (*Result, error) {
	return NewContext(ctx, data, master, rules, opts).runAll()
}

// runAll drives the outer pass loop to its fixpoint and certifies — the body
// of RunContext, shared with the streaming update path, which runs it on a
// fresh sub-engine per update.
func (e *Engine) runAll() (res *Result, err error) {
	defer func() {
		// Containment of last resort: a panic on the merge goroutine — the
		// sequential phase code, an inline applier, the checker driver —
		// surfaces as a structured error instead of tearing down the
		// process. Pool workers have their own recover (see runParallel and
		// fanOut) so a worker panic never reaches the runtime's crash path.
		if r := recover(); r != nil {
			if we, ok := r.(*WorkerError); ok {
				res, err = nil, we
				return
			}
			res, err = nil, newWorkerError(r, "run", "", -1, -1)
		}
	}()
	maxPasses := 1 + e.data.Len()*e.data.Schema.Arity()
	for pass := 0; pass < maxPasses; pass++ {
		before := len(e.res.Fixes) + e.res.Asserts
		e.CRepair()
		e.ERepair()
		e.HRepair()
		if e.fail != nil || e.degraded != "" {
			break
		}
		if len(e.res.Fixes)+e.res.Asserts == before {
			break
		}
	}
	return e.finish()
}

// interrupted reports whether the engine must stop: a prior failure, or the
// context having been canceled (which becomes the failure). Every phase
// checks it at round granularity, which bounds cancellation latency to one
// round of the current worklists.
func (e *Engine) interrupted() bool {
	if e.fail != nil {
		return true
	}
	if err := e.ctx.Err(); err != nil {
		e.fail = ctxErr(err)
		return true
	}
	return false
}

// exhausted reports whether a soft budget has run out, recording the reason
// on first detection. Checked at the same round boundaries as interrupted:
// the round already committed is kept — it is complete — and no new round
// starts, which is the "finish committed rounds, then degrade" contract.
func (e *Engine) exhausted() bool {
	if e.degraded != "" {
		return true
	}
	if e.opts.MaxFixes > 0 && len(e.res.Fixes) >= e.opts.MaxFixes {
		e.degraded = "max-fixes"
		return true
	}
	if e.opts.Deadline > 0 && time.Since(e.start) >= e.opts.Deadline {
		e.degraded = "deadline"
		return true
	}
	return false
}

// Finish certifies the repaired relation with a Checker pass — the
// termination proof of the pipeline: every rule is re-verified from the data
// alone, independently of what the repair phases claim to have fixed — and
// returns the accumulated result. Finish is the legacy non-erroring form: a
// failure (possible only with a cancellable context or injected faults)
// panics, as the pre-context engine would have.
func (e *Engine) Finish() *Result {
	res, err := e.finish()
	if err != nil {
		panic(err)
	}
	return res
}

// finish certifies and assembles the Result, or returns the run's failure.
func (e *Engine) finish() (*Result, error) {
	if e.interrupted() {
		return nil, e.fail
	}
	e.res.Data = e.data
	if e.pool != nil {
		e.res.WorkerVisits = append([]int64(nil), e.pool.visits...)
	}
	// The checker reuses the engine's own blocking matchers (indexes are
	// built once per run) and fans its per-rule passes across the same
	// worker budget the appliers had; the rule-ordered report merge keeps
	// the Report deterministic for any worker count, so -certify output is
	// identical whatever -workers says.
	ck := newChecker(e.rules, e.master, e.matchers, e.opts.workerCount())
	ck.fj = e.fj
	// On the streaming update path (certPrev/prevData set by rebase), rules
	// none of whose read attributes changed since the previously certified
	// relation are served from that run's per-rule reports instead of being
	// re-checked. A batch engine has no previous pass: dirtyRules returns
	// nil and this is a plain full certification.
	rep, perRule, err := ck.checkPatched(e.ctx, e.data, e.dirtyRules(), e.certPrev)
	if err != nil {
		return nil, err
	}
	e.certOut = perRule
	e.res.Report = rep
	if e.degraded != "" {
		e.res.Degraded, e.res.DegradeReason = true, e.degraded
		rep.Degraded, rep.DegradeReason = true, e.degraded
	}
	for _, r := range e.rules {
		if clean, _ := e.res.Report.RuleClean(r.Name()); clean {
			e.res.Resolved = append(e.res.Resolved, r.Name())
		} else {
			e.res.Unresolved = append(e.res.Unresolved, r.Name())
		}
	}
	return e.res, nil
}

// hbudget resolves the per-cell change budget of hRepair.
func (e *Engine) hbudget() int {
	if e.opts.HBudget > 0 {
		return e.opts.HBudget
	}
	return DefaultHBudget
}

// spend consumes one unit of cell (i, a)'s hRepair change budget and
// reports whether a unit was available. The budget map lives on the engine
// so it spans the outer passes of Run: a cell hRepair gave up on is not
// granted a fresh budget just because cRepair ran again.
func (e *Engine) spend(i, a int) bool {
	if e.hleft == nil {
		e.hleft = make(map[[2]int]int)
	}
	k := [2]int{i, a}
	left, ok := e.hleft[k]
	if !ok {
		left = e.hbudget()
	}
	if left == 0 {
		return false
	}
	e.hleft[k] = left - 1
	return true
}

// budgetLeft reads cell (i, a)'s remaining budget without consuming it —
// the propose-side read, safe to run concurrently because all budget
// writes are deferred to the commit step.
func (e *Engine) budgetLeft(i, a int) int {
	if left, ok := e.hleft[[2]int{i, a}]; ok {
		return left
	}
	return e.hbudget()
}

// conflictf records a conflict once: an unresolvable conflict would
// otherwise be re-recorded on every re-visit of its tuple or group.
func (e *Engine) conflictf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if e.seen[msg] {
		return
	}
	e.seen[msg] = true
	e.res.Conflicts = append(e.res.Conflicts, msg)
}

// minConfAt returns the fuzzy minimum of t's confidences at attrs, with the
// same semantics as rule.MinConf (1 when attrs is empty) but computed in
// place: it sits on the hottest path — every tuple visit of every rule — so
// it must not allocate.
func minConfAt(t *relation.Tuple, attrs []int) float64 {
	m := 1.0
	for _, a := range attrs {
		if c := t.Conf[a]; c < m {
			m = c
		}
	}
	return m
}

// assert freezes cell (i, a): the cell keeps its value, its confidence is
// raised to at least conf, and it is marked as a deterministic fix. It
// reports whether anything changed (already-frozen cells are left alone).
func (e *Engine) assert(i, a int, conf float64) int {
	t := e.data.Tuples[i]
	if t.Marks[a] == relation.FixDeterministic {
		return 0
	}
	if conf > t.Conf[a] {
		t.Conf[a] = conf
	}
	t.Marks[a] = relation.FixDeterministic
	e.res.Asserts++
	e.noteWrite(i, a)
	return 1
}

// fix writes value v to cell (i, a) as a deterministic fix with confidence
// conf, recording it in the result. The caller must have checked that the
// cell is mutable and that v differs from the current value.
func (e *Engine) fix(i, a int, v string, conf float64, ruleName string) int {
	t := e.data.Tuples[i]
	e.res.Fixes = append(e.res.Fixes, Fix{
		Tuple: i, Attr: a, Attribute: e.data.Schema.Attrs[a],
		Old: t.Values[a], New: v, Conf: conf,
		Mark: relation.FixDeterministic, Rule: ruleName,
	})
	t.Set(a, v, conf, relation.FixDeterministic)
	e.noteWrite(i, a)
	return 1
}
