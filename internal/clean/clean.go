// Package clean implements the unified data-cleaning engine of Sections 5
// and 6 of the paper: cRepair, the confidence-based phase that applies the
// ordered cleaning rules to a fixpoint and produces deterministic fixes, and
// eRepair, the entropy-based phase that resolves the remaining variable-CFD
// conflicts in order of increasing entropy and produces reliable fixes.
//
// The engine never mutates its inputs: it clones the data relation, applies
// fixes to the clone, and reports every cell it wrote together with the rule
// that wrote it. Cells fixed by cRepair carry confidence at least η and are
// immutable for the rest of the process (Section 5.1); eRepair only touches
// mutable cells (Section 6.1). MD matching goes through blocking indexes —
// per-attribute hash indexes on equality clauses and a generalized suffix
// tree for edit-distance clauses (Section 5.2) — so it is not O(|D|·|Dm|).
package clean

import (
	"fmt"

	"repro/internal/cfd"
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/rule"
)

// Options configures the cleaning pipeline.
type Options struct {
	// Eta is the confidence threshold η of Section 5: cRepair only applies
	// fixes whose propagated confidence reaches Eta, and cells at or above
	// Eta written by cRepair become immutable.
	Eta float64
	// TopL bounds the number of blocking candidates returned per
	// suffix-tree lookup during MD matching (the constant l of Section 5.2).
	TopL int
	// MaxRounds bounds the cRepair fixpoint iteration; 0 means no bound.
	// Termination is guaranteed regardless, because every applied fix or
	// assertion freezes a previously mutable cell.
	MaxRounds int
}

// DefaultOptions returns the thresholds used in the paper's experiments.
func DefaultOptions() Options { return Options{Eta: 0.8, TopL: 32} }

// Fix records one cell write performed by the engine.
type Fix struct {
	Tuple     int     // tuple index in the data relation
	Attr      int     // attribute position
	Attribute string  // attribute name, for reports
	Old, New  string  // value before and after
	Conf      float64 // confidence attached to the new value
	Mark      relation.FixMark
	Rule      string // name of the rule that produced the fix
}

func (f Fix) String() string {
	return fmt.Sprintf("t%d[%s]: %q -> %q (conf %.2f, %s, %s)",
		f.Tuple, f.Attribute, f.Old, f.New, f.Conf, f.Mark, f.Rule)
}

// MatchStats counts the work done by one MD's blocking matcher, so that
// tests and reports can verify matching does not degenerate to a full scan.
type MatchStats struct {
	Lookups    int // candidate queries issued (one per tuple per round)
	Candidates int // master tuples examined across all lookups
	Verified   int // candidates on which the full premise held
	FullScans  int // lookups that had no usable index and scanned Dm
	MasterSize int // |Dm|
}

// Result is the outcome of a cleaning run.
type Result struct {
	// Data is the repaired relation (a clone of the input).
	Data *relation.Relation
	// Fixes lists every cell whose value changed, in application order.
	Fixes []Fix
	// Asserts counts cells whose value was confirmed (not changed) by a
	// deterministic rule and thereby frozen with confidence >= Eta.
	Asserts int
	// Conflicts describes fixes the engine refused to apply because they
	// would overwrite an immutable cell or because high-confidence
	// evidence disagreed.
	Conflicts []string
	// Rounds is the number of cRepair fixpoint passes executed.
	Rounds int
	// GroupsResolved counts the variable-CFD groups resolved by eRepair.
	GroupsResolved int
	// Match maps MD rule names to their blocking statistics.
	Match map[string]*MatchStats
	// Resolved and Unresolved partition the rule names by whether the
	// repaired data satisfies the underlying dependency.
	Resolved, Unresolved []string
}

// DeterministicFixes returns the subset of Fixes produced by cRepair.
func (r *Result) DeterministicFixes() []Fix {
	var out []Fix
	for _, f := range r.Fixes {
		if f.Mark == relation.FixDeterministic {
			out = append(out, f)
		}
	}
	return out
}

// Engine runs the cleaning pipeline over a cloned data relation.
type Engine struct {
	data     *relation.Relation
	master   *relation.Relation
	rules    []rule.Rule
	opts     Options
	matchers []*matcher // parallel to rules; nil for CFD rules
	res      *Result
	seen     map[string]bool // conflicts already recorded
}

// New prepares an engine: it clones data, orders the rules per Section 6.2,
// and builds the MD blocking indexes over master. master may be nil when the
// rule set contains no MDs.
func New(data, master *relation.Relation, rules []rule.Rule, opts Options) *Engine {
	e := &Engine{
		data:   data.Clone(),
		master: master,
		rules:  rule.Order(rules),
		opts:   opts,
		res:    &Result{Match: make(map[string]*MatchStats)},
		seen:   make(map[string]bool),
	}
	e.matchers = make([]*matcher, len(e.rules))
	for i, r := range e.rules {
		if r.Kind == rule.MatchMD && master != nil {
			e.matchers[i] = newMatcher(r.MD, master)
			e.res.Match[r.Name()] = &e.matchers[i].stats
		}
	}
	return e
}

// Run executes the full pipeline on a fresh engine and returns the result.
func Run(data, master *relation.Relation, rules []rule.Rule, opts Options) *Result {
	e := New(data, master, rules, opts)
	e.CRepair()
	e.ERepair()
	return e.Finish()
}

// Finish verifies which dependencies the repaired relation satisfies and
// returns the accumulated result.
func (e *Engine) Finish() *Result {
	e.res.Data = e.data
	for _, r := range e.rules {
		ok := false
		switch r.Kind {
		case rule.MatchMD:
			ok = e.master == nil || md.Satisfies(e.data, e.master, r.MD)
		default:
			ok = cfd.Satisfies(e.data, r.CFD)
		}
		if ok {
			e.res.Resolved = append(e.res.Resolved, r.Name())
		} else {
			e.res.Unresolved = append(e.res.Unresolved, r.Name())
		}
	}
	return e.res
}

// conflictf records a conflict once: cRepair rule appliers rescan the whole
// relation every fixpoint round, so an unresolvable conflict would otherwise
// be re-recorded each round.
func (e *Engine) conflictf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if e.seen[msg] {
		return
	}
	e.seen[msg] = true
	e.res.Conflicts = append(e.res.Conflicts, msg)
}

// minConfAt returns the fuzzy minimum of t's confidences at attrs.
func minConfAt(t *relation.Tuple, attrs []int) float64 {
	confs := make([]float64, len(attrs))
	for i, a := range attrs {
		confs[i] = t.Conf[a]
	}
	return rule.MinConf(confs)
}

// assert freezes cell (i, a): the cell keeps its value, its confidence is
// raised to at least conf, and it is marked as a deterministic fix. It
// reports whether anything changed (already-frozen cells are left alone).
func (e *Engine) assert(i, a int, conf float64) int {
	t := e.data.Tuples[i]
	if t.Marks[a] == relation.FixDeterministic {
		return 0
	}
	if conf > t.Conf[a] {
		t.Conf[a] = conf
	}
	t.Marks[a] = relation.FixDeterministic
	e.res.Asserts++
	return 1
}

// fix writes value v to cell (i, a) as a deterministic fix with confidence
// conf, recording it in the result. The caller must have checked that the
// cell is mutable and that v differs from the current value.
func (e *Engine) fix(i, a int, v string, conf float64, ruleName string) int {
	t := e.data.Tuples[i]
	e.res.Fixes = append(e.res.Fixes, Fix{
		Tuple: i, Attr: a, Attribute: e.data.Schema.Attrs[a],
		Old: t.Values[a], New: v, Conf: conf,
		Mark: relation.FixDeterministic, Rule: ruleName,
	})
	t.Set(a, v, conf, relation.FixDeterministic)
	return 1
}
