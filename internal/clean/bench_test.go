package clean

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/relation"
	"repro/internal/rule"
)

// benchInput builds a synthetic workload: dirty transactions whose city
// disagrees with the area code, whose street drifts within postal groups,
// and whose names match master records through the equality index.
func benchInput(b *testing.B, tuples, masterSize int) (*relation.Relation, *relation.Relation, []rule.Rule) {
	b.Helper()
	dschema := relation.NewSchema("R", "name", "AC", "city", "post", "St")
	mschema := relation.NewSchema("M", "name", "St")
	master := relation.New(mschema)
	for i := 0; i < masterSize; i++ {
		master.Append(fmt.Sprintf("name-%04d", i), fmt.Sprintf("st-%04d", i))
	}
	master.SetAllConf(1)
	data := relation.New(dschema)
	for i := 0; i < tuples; i++ {
		city := "Edi"
		if i%2 == 0 {
			city = "Ldn" // violates the constant CFD
		}
		st := fmt.Sprintf("st-%04d", i%masterSize)
		if i%3 == 0 {
			st = "st-dirty" // fixed via the MD match
		}
		data.Append(fmt.Sprintf("name-%04d", i%masterSize), "131", city,
			fmt.Sprintf("p-%03d", i%100), st)
	}
	data.SetAllConf(0.9)
	text := `
cfd AC=131 -> city=Edi
cfd post -> St
md name=name -> St=St
`
	cfds, mds, err := rule.ParseRules(dschema, mschema, text)
	if err != nil {
		b.Fatalf("ParseRules: %v", err)
	}
	return data, master, rule.Derive(cfds, mds)
}

// BenchmarkCRepair measures one full deterministic-repair fixpoint,
// including the per-iteration relation clone and index build done by New.
func BenchmarkCRepair(b *testing.B) {
	data, master, rules := benchInput(b, 2000, 500)
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(data, master, rules, opts)
		e.CRepair()
	}
}

// BenchmarkERepair measures the entropy-based phase alone on a workload
// whose confidences sit below eta, so cRepair is inert and every
// variable-CFD conflict reaches the AVL-keyed group resolution.
func BenchmarkERepair(b *testing.B) {
	data, master, rules := benchInput(b, 2000, 500)
	data.SetAllConf(0.5)
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := New(data, master, rules, opts)
		e.CRepair()
		b.StartTimer()
		e.ERepair()
	}
}

// BenchmarkRunIncremental measures the full pipeline with the delta-driven
// scheduler (sequential) on the 10k-tuple / 5%-dirty generator config — the
// headline number the CI gate tracks.
func BenchmarkRunIncremental(b *testing.B) {
	benchmarkRun(b, false, 1)
}

// BenchmarkRunRescan measures the full-rescan reference on the same
// workload, so the speedup is a recorded ratio, not a claim.
func BenchmarkRunRescan(b *testing.B) {
	benchmarkRun(b, true, 1)
}

// BenchmarkRunParallel measures the delta-driven engine with the applier
// pool at GOMAXPROCS workers on the same workload. On a single-core runner
// it degenerates to the sequential path (the pool is only built for an
// effective worker count above 1), so compare it against
// BenchmarkRunIncremental on the same machine.
func BenchmarkRunParallel(b *testing.B) {
	benchmarkRun(b, false, 0)
}

func benchmarkRun(b *testing.B, rescan bool, workers int) {
	inst := gen.Generate(gen.DefaultConfig())
	opts := DefaultOptions()
	opts.Rescan = rescan
	opts.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	var visits int
	for i := 0; i < b.N; i++ {
		res := Run(inst.Data, inst.Master, inst.Rules, opts)
		visits = res.TotalVisits()
	}
	b.ReportMetric(float64(visits), "visits/run")
}

// TestIncrementalVisitRatio is the acceptance bar of the delta-driven
// scheduler at the benchmark config: at 10k tuples / 5% dirty, the
// incremental engine must touch at least 5x fewer tuples than the
// full-rescan reference while producing an identical result.
func TestIncrementalVisitRatio(t *testing.T) {
	inst := gen.Generate(gen.DefaultConfig())
	inc, ref := runModes(inst.Data, inst.Master, inst.Rules, DefaultOptions())
	if d := diffResults(inc, ref); d != "" {
		t.Fatalf("engines disagree on the benchmark workload: %s", d)
	}
	iv, rv := inc.TotalVisits(), ref.TotalVisits()
	if iv == 0 || rv == 0 {
		t.Fatalf("visit counters empty: incremental %d, rescan %d", iv, rv)
	}
	if ratio := float64(rv) / float64(iv); ratio < 5 {
		t.Errorf("rescan/incremental visit ratio = %.2f (%d vs %d), want >= 5", ratio, rv, iv)
	}
	if len(inc.Fixes) == 0 {
		t.Error("benchmark workload produced no fixes; the generator is not exercising the engine")
	}
}

// BenchmarkHRepair measures the heuristic phase alone on the same
// below-eta workload: the constant-CFD violations survive cRepair and
// eRepair, so hRepair's violation fixpoint does all the city repairs.
func BenchmarkHRepair(b *testing.B) {
	data, master, rules := benchInput(b, 2000, 500)
	data.SetAllConf(0.5)
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := New(data, master, rules, opts)
		e.CRepair()
		e.ERepair()
		b.StartTimer()
		e.HRepair()
	}
}
