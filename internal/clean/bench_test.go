package clean

import (
	"fmt"
	"testing"

	"repro/internal/relation"
	"repro/internal/rule"
)

// benchInput builds a synthetic workload: dirty transactions whose city
// disagrees with the area code, whose street drifts within postal groups,
// and whose names match master records through the equality index.
func benchInput(b *testing.B, tuples, masterSize int) (*relation.Relation, *relation.Relation, []rule.Rule) {
	b.Helper()
	dschema := relation.NewSchema("R", "name", "AC", "city", "post", "St")
	mschema := relation.NewSchema("M", "name", "St")
	master := relation.New(mschema)
	for i := 0; i < masterSize; i++ {
		master.Append(fmt.Sprintf("name-%04d", i), fmt.Sprintf("st-%04d", i))
	}
	master.SetAllConf(1)
	data := relation.New(dschema)
	for i := 0; i < tuples; i++ {
		city := "Edi"
		if i%2 == 0 {
			city = "Ldn" // violates the constant CFD
		}
		st := fmt.Sprintf("st-%04d", i%masterSize)
		if i%3 == 0 {
			st = "st-dirty" // fixed via the MD match
		}
		data.Append(fmt.Sprintf("name-%04d", i%masterSize), "131", city,
			fmt.Sprintf("p-%03d", i%100), st)
	}
	data.SetAllConf(0.9)
	text := `
cfd AC=131 -> city=Edi
cfd post -> St
md name=name -> St=St
`
	cfds, mds, err := rule.ParseRules(dschema, mschema, text)
	if err != nil {
		b.Fatalf("ParseRules: %v", err)
	}
	return data, master, rule.Derive(cfds, mds)
}

// BenchmarkCRepair measures one full deterministic-repair fixpoint,
// including the per-iteration relation clone and index build done by New.
func BenchmarkCRepair(b *testing.B) {
	data, master, rules := benchInput(b, 2000, 500)
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(data, master, rules, opts)
		e.CRepair()
	}
}

// BenchmarkERepair measures the entropy-based phase alone on a workload
// whose confidences sit below eta, so cRepair is inert and every
// variable-CFD conflict reaches the AVL-keyed group resolution.
func BenchmarkERepair(b *testing.B) {
	data, master, rules := benchInput(b, 2000, 500)
	data.SetAllConf(0.5)
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := New(data, master, rules, opts)
		e.CRepair()
		b.StartTimer()
		e.ERepair()
	}
}

// BenchmarkHRepair measures the heuristic phase alone on the same
// below-eta workload: the constant-CFD violations survive cRepair and
// eRepair, so hRepair's violation fixpoint does all the city repairs.
func BenchmarkHRepair(b *testing.B) {
	data, master, rules := benchInput(b, 2000, 500)
	data.SetAllConf(0.5)
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := New(data, master, rules, opts)
		e.CRepair()
		e.ERepair()
		b.StartTimer()
		e.HRepair()
	}
}
