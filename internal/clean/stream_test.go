package clean

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cfd"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/relation"
	"repro/internal/rule"
)

// genOps derives a deterministic streaming-op sequence for an instance of
// n0 tuples over the propInstance schema (4 attributes A–D with small
// lowercase domains): a mix of overwrites, appends, resurrections and
// deletes, every op valid at its position. Confidences are mostly below
// eta, with an occasional trusted row so updates also exercise freezing.
func genOps(n0 int, seed int64) []gen.Update {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	attrs := []string{"a", "b", "c", "d"}
	live := make([]bool, n0)
	for i := range live {
		live[i] = true
	}
	nLive := n0

	row := func() ([]string, []float64) {
		vals := make([]string, len(attrs))
		conf := make([]float64, len(attrs))
		trusted := rng.Intn(5) == 0
		for a := range attrs {
			if rng.Intn(10) == 0 {
				vals[a] = relation.Null
			} else {
				vals[a] = fmt.Sprintf("%s%d", attrs[a], rng.Intn(4))
			}
			if trusted {
				conf[a] = 0.8 + 0.2*rng.Float64()
			} else {
				conf[a] = rng.Float64() * 0.75
			}
		}
		return vals, conf
	}

	nOps := 3 + rng.Intn(4)
	out := make([]gen.Update, 0, nOps)
	for len(out) < nOps {
		if nLive > 0 && rng.Intn(5) == 0 {
			id := rng.Intn(len(live))
			for !live[id] {
				id = rng.Intn(len(live))
			}
			live[id] = false
			nLive--
			out = append(out, gen.Update{Delete: true, ID: id})
			continue
		}
		vals, conf := row()
		var id int
		if rng.Intn(3) == 0 || len(live) == 0 {
			id = len(live)
			live = append(live, true)
			nLive++
		} else {
			id = rng.Intn(len(live))
			if !live[id] {
				live[id] = true
				nLive++
			}
		}
		out = append(out, gen.Update{ID: id, Values: vals, Conf: conf})
	}
	return out
}

// validOps reports whether ops replays cleanly against an instance of n0
// tuples: deletes hit live ids, appends use the exact next id. The
// shrinker uses it to discard candidate subsequences that would merely
// trip input validation instead of reproducing a failure.
func validOps(n0 int, ops []gen.Update) bool {
	live := make([]bool, n0)
	for i := range live {
		live[i] = true
	}
	for _, u := range ops {
		switch {
		case u.Delete:
			if u.ID < 0 || u.ID >= len(live) || !live[u.ID] {
				return false
			}
			live[u.ID] = false
		case u.ID == len(live):
			live = append(live, true)
		case u.ID < 0 || u.ID > len(live):
			return false
		default:
			live[u.ID] = true
		}
	}
	return true
}

// checkStream replays ops through a streaming engine and, after every
// accepted update, compares the engine's adopted state against a
// from-scratch run on the same accumulated base — the differential oracle.
// The bar is diffParallel's: cell state, Fixes, counters, matcher and
// applier statistics, the certified Report and its CertVisits must all be
// byte-identical. Returns a description of the first divergence, or "".
// patched accumulates Report.Patched across accepted updates, proving the
// certification cache is actually exercised by the corpus.
func checkStream(in *propInstance, ops []gen.Update, opts Options, patched *int) string {
	e, err := NewStream(in.relation(nil), nil, in.rules, opts)
	if err != nil {
		return fmt.Sprintf("NewStream: %v", err)
	}
	if d := diffParallel(e.Result(), Run(in.relation(nil), nil, in.rules, opts)); d != "" {
		return "initial run: " + d
	}
	acc := in.relation(nil)
	for oi, u := range ops {
		var res *Result
		if u.Delete {
			res, err = e.Delete(u.ID)
		} else {
			res, err = e.Upsert(u.ID, u.Values, u.Conf)
		}
		if err != nil {
			return fmt.Sprintf("op %d (%+v) rejected: %v", oi, u, err)
		}
		if res != e.Result() {
			return fmt.Sprintf("op %d: returned Result is not the engine's current Result", oi)
		}
		u.Apply(acc)
		oracle := Run(acc, nil, in.rules, opts)
		if d := diffParallel(res, oracle); d != "" {
			return fmt.Sprintf("op %d (%+v): %s", oi, u, d)
		}
		*patched += res.Report.Patched
	}
	return ""
}

// shrinkOps greedily minimizes a failing op sequence: it keeps dropping
// single ops (and re-validating the remainder) while the failure persists.
func shrinkOps(in *propInstance, ops []gen.Update, opts Options) []gen.Update {
	n0 := len(in.rows)
	dummy := 0
	for i := 0; i < len(ops); {
		cand := append(append([]gen.Update(nil), ops[:i]...), ops[i+1:]...)
		if validOps(n0, cand) && checkStream(in, cand, opts, &dummy) != "" {
			ops = cand
			continue
		}
		i++
	}
	return ops
}

// TestPropertyStreamEquivalence is the streaming layer's acceptance bar:
// over the seeded dirty corpus, random interleaved Upsert/Delete sequences
// must keep the engine fix-for-fix and byte-for-byte identical to a
// from-scratch RunContext on the accumulated base instance — cell state,
// Fixes, conflicts, rounds, work counters, and the incrementally patched
// Report included — under both the sequential and the forced-pool engine.
// CI runs it under -race (the stream-sweep job). The suite also asserts
// the certification cache fired at least once across the corpus: a
// Report.Patched that stayed zero would mean the incremental path is dead
// code and the property vacuous.
func TestPropertyStreamEquivalence(t *testing.T) {
	seeds := int64(400)
	if testing.Short() {
		seeds = 60
	}
	patched := 0
	for _, mode := range faultModes() {
		t.Run(mode.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				in := genInstance(seed)
				ops := genOps(len(in.rows), seed)
				if msg := checkStream(in, ops, mode.opts, &patched); msg != "" {
					ops = shrinkOps(in, ops, mode.opts)
					t.Fatalf("seed %d: %s\nshrunk ops: %+v", seed, msg, ops)
				}
			}
		})
	}
	if patched == 0 {
		t.Error("Report.Patched stayed 0 across the whole corpus: certification caching never fired")
	}
}

// TestPropertyStreamFaultInjection composes the streaming layer with the
// fault injector: with panics, cancellations and delays armed at the
// apply/seed/sched/certify hooks, every update must either fail with a
// typed error and leave the engine bit-unchanged — base, cleaned state and
// Report exactly as the last accepted update left them — or complete and
// stay on the oracle. After the whole sequence, the engine must be
// byte-identical to a fault-free from-scratch run on the accepted base:
// degraded or rewound, never divergent.
func TestPropertyStreamFaultInjection(t *testing.T) {
	seeds := int64(150)
	if testing.Short() {
		seeds = 40
	}
	configs := faultConfigs()
	for _, mode := range faultModes() {
		t.Run(mode.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				in := genInstance(seed)
				ops := genOps(len(in.rows), seed)
				for _, cfg := range configs {
					if cfg.pools && mode.opts.Workers <= 1 {
						continue
					}
					opts := mode.opts
					inj := fault.New(seed, cfg.rules...)
					opts.Fault = inj

					ctx0, cancel0 := context.WithCancel(context.Background())
					inj.OnCancel(cancel0)
					e, err := NewStreamContext(ctx0, in.relation(nil), nil, in.rules, opts)
					cancel0()
					if err != nil {
						if !typedFailure(err) {
							t.Fatalf("seed %d %s: NewStream failed untyped: %v", seed, cfg.name, err)
						}
						continue
					}

					acc := in.relation(nil)
					for oi, u := range ops {
						ctx, cancel := context.WithCancel(context.Background())
						inj.OnCancel(cancel)
						before := snapshot(e.Result().Data)
						beforeRep := e.Result().Report.String()
						var err error
						if u.Delete {
							_, err = e.DeleteContext(ctx, u.ID)
						} else {
							_, err = e.UpsertContext(ctx, u.ID, u.Values, u.Conf)
						}
						cancel()
						if err != nil {
							// A faulted update may abort (typed), and an
							// earlier aborted append can invalidate a later
							// op's id (ErrBadUpdate); both must leave the
							// engine exactly as it was.
							if !typedFailure(err) && !errors.Is(err, ErrBadUpdate) {
								t.Fatalf("seed %d %s op %d: untyped error: %v", seed, cfg.name, oi, err)
							}
							if !reflect.DeepEqual(snapshot(e.Result().Data), before) {
								t.Fatalf("seed %d %s op %d: failed update mutated the cleaned state", seed, cfg.name, oi)
							}
							if e.Result().Report.String() != beforeRep {
								t.Fatalf("seed %d %s op %d: failed update mutated the Report", seed, cfg.name, oi)
							}
							continue
						}
						u.Apply(acc)
					}

					clean := mode.opts // fault-free oracle options
					if d := diffParallel(e.Result(), Run(acc, nil, in.rules, clean)); d != "" {
						t.Fatalf("seed %d %s: final state diverged from the fault-free oracle on the accepted base: %s",
							seed, cfg.name, d)
					}
				}
			}
		})
	}
}

// TestDeleteEvictsFrozenEntropyGroup pins the satellite fix: deleting a
// tuple whose trusted cells dictated a frozen eRepair group resolution
// must evict its entropy contribution and re-key the group, so the
// surviving members resolve from the remaining evidence — exactly as a
// from-scratch run on the post-delete base does. Before the rebase-and-
// rerun semantics, the live AVL had no removal path keyed by external
// deletes and the stale frozen value would have stuck.
func TestDeleteEvictsFrozenEntropyGroup(t *testing.T) {
	schema := relation.NewSchema("R", "A", "B")
	rules := rule.Derive([]*cfd.CFD{cfd.FD("fd", schema, []string{"A"}, "B")}, nil)

	data := relation.New(schema)
	t0 := data.Append("g", "x")
	t0.Conf[0], t0.Conf[1] = 0.5, 0.9 // trusted B: freezes "x"
	t1 := data.Append("g", "x")
	t1.Conf[0], t1.Conf[1] = 0.5, 0.9
	t2 := data.Append("g", "y")
	t2.Conf[0], t2.Conf[1] = 0.5, 0.3 // untrusted dissent

	for _, mode := range faultModes() {
		t.Run(mode.name, func(t *testing.T) {
			e, err := NewStream(data.Clone(), nil, rules, mode.opts)
			if err != nil {
				t.Fatalf("NewStream: %v", err)
			}
			if got := e.Result().Data.Tuples[2].Values[1]; got != "x" {
				t.Fatalf("initial resolution: t2[B] = %q, want %q (frozen plurality)", got, "x")
			}

			// Deleting both trusted members removes the frozen evidence.
			acc := data.Clone()
			for _, id := range []int{0, 1} {
				if _, err := e.Delete(id); err != nil {
					t.Fatalf("Delete(%d): %v", id, err)
				}
				gen.Update{Delete: true, ID: id}.Apply(acc)
				if d := diffParallel(e.Result(), Run(acc, nil, rules, mode.opts)); d != "" {
					t.Fatalf("after Delete(%d): %s", id, d)
				}
			}
			if got := e.Result().Data.Tuples[2].Values[1]; got != "y" {
				t.Errorf("post-delete resolution: t2[B] = %q, want %q (its own value, evidence evicted)", got, "y")
			}
			if !e.Deleted(0) || !e.Deleted(1) || e.Deleted(2) {
				t.Errorf("tombstone set wrong: %v %v %v", e.Deleted(0), e.Deleted(1), e.Deleted(2))
			}
			for _, id := range []int{0, 1} {
				for a := 0; a < 2; a++ {
					if v := e.Result().Data.Tuples[id].Values[a]; !relation.IsNull(v) {
						t.Errorf("tombstoned t%d[%d] = %q, want null", id, a, v)
					}
				}
			}
		})
	}
}

// streamEdgeFixture builds the Report-patching edge workload: two
// contradictory constant CFDs over trusted cells — the engine enforces one
// (phi2's value wins) and the other's violations persist, since the
// trusted LHS may not be retracted — plus an independent clean FD over
// attributes the conflict never reads. conflicts of the tuples match the
// constant pattern; the rest are neutral.
func streamEdgeFixture(tuples, conflicts int) (*relation.Relation, []rule.Rule) {
	schema := relation.NewSchema("R", "A", "B", "C", "D")
	rules := rule.Derive([]*cfd.CFD{
		cfd.New("phi1", schema, []string{"A"}, []string{"1"}, "B", "x"),
		cfd.New("phi2", schema, []string{"A"}, []string{"1"}, "B", "y"),
		cfd.FD("fdCD", schema, []string{"C"}, "D"),
	}, nil)
	data := relation.New(schema)
	for i := 0; i < tuples; i++ {
		a := fmt.Sprintf("a%d", i)
		if i < conflicts {
			a = "1"
		}
		data.Append(a, "zzz", fmt.Sprintf("c%d", i), fmt.Sprintf("d%d", i))
	}
	data.SetAllConf(0.9)
	return data, rules
}

// TestStreamReportPatchingEdges exercises the certification cache's edge
// cases across updates: a rule going dirty→clean→dirty, a rule untouched
// by any update keeping RuleClean's (clean, known) contract while served
// from cache, and Report.Patched proving which certifications were reused.
// Every step is also held to the from-scratch oracle.
func TestStreamReportPatchingEdges(t *testing.T) {
	data, rules := streamEdgeFixture(3, 1)
	opts := DefaultOptions()
	e, err := NewStream(data.Clone(), nil, rules, opts)
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	acc := data.Clone()
	if clean, known := e.Result().Report.RuleClean("phi1"); clean || !known {
		t.Fatalf("phi1 initially (clean=%v, known=%v), want the persistent conflict (false, true)", clean, known)
	}

	step := func(label string, u gen.Update, wantPhi1Clean bool) {
		t.Helper()
		res, err := e.Upsert(u.ID, u.Values, u.Conf)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		u.Apply(acc)
		if d := diffParallel(res, Run(acc, nil, rules, opts)); d != "" {
			t.Fatalf("%s: diverged from oracle: %s", label, d)
		}
		if clean, known := res.Report.RuleClean("phi1"); !known || clean != wantPhi1Clean {
			t.Errorf("%s: phi1 (clean=%v, known=%v), want (%v, true)", label, clean, known, wantPhi1Clean)
		}
		// fdCD's attributes are never written: it must be served from
		// cache, and its (clean, known) contract must survive the patch.
		if clean, known := res.Report.RuleClean("fdCD"); !clean || !known {
			t.Errorf("%s: untouched fdCD (clean=%v, known=%v), want (true, true)", label, clean, known)
		}
		if res.Report.Patched == 0 {
			t.Errorf("%s: Report.Patched = 0, want the untouched FD served from cache", label)
		}
	}

	trusted := []float64{0.9, 0.9, 0.9, 0.9}
	// Clean: t0 leaves the constant pattern, making phi1 vacuous.
	step("phi1 goes clean", gen.Update{ID: 0, Values: []string{"a9", "zzz", "c0", "d0"}, Conf: trusted}, true)
	// Dirty again: the same rule re-dirties on a later update.
	step("phi1 dirty again", gen.Update{ID: 0, Values: []string{"1", "zzz", "c0", "d0"}, Conf: trusted}, false)
}

// TestStreamCapRetruncation drives the per-rule violation cap through the
// patched path: a rule with far more violations than maxStoredPerRule must
// keep its exact count, its capped listing and its Truncated tally when
// served from cache, and re-truncate correctly when a later update forces
// a re-check. The oracle comparison makes the cap byte-identical to a
// from-scratch certification either way.
func TestStreamCapRetruncation(t *testing.T) {
	n := maxStoredPerRule + 20
	data, rules := streamEdgeFixture(n, n)
	opts := DefaultOptions()
	e, err := NewStream(data.Clone(), nil, rules, opts)
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	acc := data.Clone()
	if e.Result().Report.Truncated == 0 {
		t.Fatalf("fixture must overflow the per-rule cap; report: truncated=0, cfd=%d", e.Result().Report.NumCFD())
	}

	apply := func(label string, u gen.Update) *Report {
		t.Helper()
		res, err := e.Upsert(u.ID, u.Values, u.Conf)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		u.Apply(acc)
		if d := diffParallel(res, Run(acc, nil, rules, opts)); d != "" {
			t.Fatalf("%s: diverged from oracle: %s", label, d)
		}
		return res.Report
	}

	trusted := []float64{0.9, 0.9, 0.9, 0.9}
	losing := "phi1" // phi2's value wins the conflict; phi1's violations persist
	if rep := e.Result().Report; rep.byRule[losing] != n {
		t.Fatalf("fixture: byRule[%s] = %d, want %d", losing, rep.byRule[losing], n)
	}
	// Touch only C/D: the overflowing conflict rules are patched from
	// cache, cap and truncation tally intact.
	rep := apply("patched", gen.Update{ID: 0, Values: []string{"1", "zzz", "cQ", "dQ"}, Conf: trusted})
	if rep.Patched == 0 {
		t.Error("update touching only C/D: Patched = 0, want conflict rules served from cache")
	}
	if rep.byRule[losing] != n || rep.Truncated == 0 {
		t.Errorf("patched report: byRule[%s] = %d (want %d), truncated = %d (want > 0)",
			losing, rep.byRule[losing], n, rep.Truncated)
	}
	// Pull t0 out of the constant pattern: the conflict rules re-check,
	// the count drops by one, and the cap re-truncates over the remainder.
	rep = apply("re-checked", gen.Update{ID: 0, Values: []string{"a0", "zzz", "cQ", "dQ"}, Conf: trusted})
	if rep.byRule[losing] != n-1 || rep.Truncated == 0 {
		t.Errorf("re-checked report: byRule[%s] = %d (want %d), truncated = %d (want > 0)",
			losing, rep.byRule[losing], n-1, rep.Truncated)
	}
}

// TestStreamWithMaster runs the streaming layer over the paper's Figure 1
// workload — MD rules, blocking indexes, master data — under the pooled
// engine: upserts and a delete must stay on the from-scratch oracle, with
// the forked prototype indexes reproducing a cold build's match counters.
func TestStreamWithMaster(t *testing.T) {
	data, master, rules := figure1(t)
	opts := DefaultOptions()
	opts.Workers = 4
	opts.SeqCutoff = -1
	e, err := NewStream(data.Clone(), master, rules, opts)
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	acc := data.Clone()
	if d := diffParallel(e.Result(), Run(acc, master, rules, opts)); d != "" {
		t.Fatalf("initial run: %s", d)
	}

	ops := []gen.Update{
		// A new dirty transaction for Mary Smith: wrong city, missing street.
		{ID: 5, Values: []string{"Mary", "Smith", "", "Edi", "020", "NW1 6XE", "7654321"},
			Conf: []float64{0.9, 0.9, 0, 0.3, 0.9, 0.9, 0.9}},
		// Overwrite t2 with a fresh dirty Brady row.
		{ID: 2, Values: []string{"Bob", "Brady", "501 Elm St", "Edi", "131", "EH7 4AH", "3887644"},
			Conf: []float64{0.4, 0.9, 0.4, 0.9, 0.9, 0.9, 0.9}},
		{Delete: true, ID: 1},
	}
	for oi, u := range ops {
		var res *Result
		if u.Delete {
			res, err = e.Delete(u.ID)
		} else {
			res, err = e.Upsert(u.ID, u.Values, u.Conf)
		}
		if err != nil {
			t.Fatalf("op %d: %v", oi, err)
		}
		u.Apply(acc)
		if d := diffParallel(res, Run(acc, master, rules, opts)); d != "" {
			t.Fatalf("op %d: %s", oi, d)
		}
	}
}

// TestStreamRejectsBadUpdates pins the validation surface and the
// bit-unchanged failure contract for rejected inputs, plus ErrNotStreaming
// on batch engines.
func TestStreamRejectsBadUpdates(t *testing.T) {
	in := genInstance(3)
	opts := DefaultOptions()
	e, err := NewStream(in.relation(nil), nil, in.rules, opts)
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	n := e.Result().Data.Len()
	before := snapshot(e.Result().Data)
	beforeRep := e.Result().Report.String()

	vals4 := []string{"a0", "b0", "c0", "d0"}
	bad := []struct {
		name string
		call func() error
	}{
		{"upsert id beyond append", func() error { _, err := e.Upsert(n+1, vals4, nil); return err }},
		{"upsert negative id", func() error { _, err := e.Upsert(-1, vals4, nil); return err }},
		{"upsert arity", func() error { _, err := e.Upsert(0, []string{"a0"}, nil); return err }},
		{"upsert conf arity", func() error { _, err := e.Upsert(0, vals4, []float64{0.5}); return err }},
		{"upsert conf range", func() error { _, err := e.Upsert(0, vals4, []float64{0.5, 2, 0.5, 0.5}); return err }},
		{"delete out of range", func() error { _, err := e.Delete(n); return err }},
		{"delete negative", func() error { _, err := e.Delete(-1); return err }},
	}
	for _, tc := range bad {
		if err := tc.call(); !errors.Is(err, ErrBadUpdate) {
			t.Errorf("%s: err = %v, want ErrBadUpdate", tc.name, err)
		}
	}
	if _, err := e.Delete(0); err != nil {
		t.Fatalf("Delete(0): %v", err)
	}
	if _, err := e.Delete(0); !errors.Is(err, ErrBadUpdate) {
		t.Errorf("double delete: err = %v, want ErrBadUpdate", err)
	}
	if _, err := e.Upsert(0, vals4, nil); err != nil {
		t.Errorf("resurrecting upsert: %v", err)
	}

	// A fresh engine whose every update is rejected stays bit-unchanged.
	e2, err := NewStream(in.relation(nil), nil, in.rules, opts)
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	if _, err := e2.Upsert(-5, vals4, nil); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("err = %v, want ErrBadUpdate", err)
	}
	if !reflect.DeepEqual(snapshot(e2.Result().Data), before) || e2.Result().Report.String() != beforeRep {
		t.Error("rejected update mutated engine state")
	}

	batch := New(in.relation(nil), nil, in.rules, opts)
	if _, err := batch.Upsert(0, vals4, nil); !errors.Is(err, ErrNotStreaming) {
		t.Errorf("batch Upsert: err = %v, want ErrNotStreaming", err)
	}
	if _, err := batch.Delete(0); !errors.Is(err, ErrNotStreaming) {
		t.Errorf("batch Delete: err = %v, want ErrNotStreaming", err)
	}
}

// FuzzUpdateSequence feeds arbitrary encoded upsert/delete streams to a
// streaming engine: one op per line, "u,<id>,<v1>,...,<v4>" or "d,<id>".
// Hostile ids, wrong arities, empty and Unicode values must be rejected
// with ErrBadUpdate — never a panic — and accepted prefixes must hold the
// from-scratch differential oracle.
func FuzzUpdateSequence(f *testing.F) {
	f.Add("u,0,a0,b1,c0,d1\nd,2\nu,99,x,y,z,w")
	f.Add("d,0\nd,0\nd,-1")
	f.Add("u,24,à0,ñ1,, d1")
	f.Add("u,4,a0,b0,c0,d0\nu,5,a1,b1,c1,d1\nd,4")
	f.Add("u,0\nu,0,a0\nu,0,a0,b0,c0,d0,e0")
	f.Fuzz(func(t *testing.T, s string) {
		in := genInstance(7)
		opts := DefaultOptions()
		e, err := NewStream(in.relation(nil), nil, in.rules, opts)
		if err != nil {
			t.Fatalf("NewStream: %v", err)
		}
		acc := in.relation(nil)

		lines := strings.Split(s, "\n")
		if len(lines) > 32 {
			lines = lines[:32]
		}
		dirty := false
		for _, line := range lines {
			fields := strings.Split(line, ",")
			if len(fields) < 2 {
				continue
			}
			id, aerr := strconv.Atoi(fields[1])
			if aerr != nil {
				continue
			}
			switch fields[0] {
			case "d":
				if _, err := e.Delete(id); err != nil {
					if !errors.Is(err, ErrBadUpdate) {
						t.Fatalf("Delete(%d): untyped error %v", id, err)
					}
					continue
				}
				gen.Update{Delete: true, ID: id}.Apply(acc)
				dirty = true
			case "u":
				vals := fields[2:]
				conf := make([]float64, len(vals))
				for i := range conf {
					conf[i] = 0.5
				}
				if _, err := e.Upsert(id, vals, conf); err != nil {
					if !errors.Is(err, ErrBadUpdate) {
						t.Fatalf("Upsert(%d, %q): untyped error %v", id, vals, err)
					}
					continue
				}
				gen.Update{ID: id, Values: vals, Conf: conf}.Apply(acc)
				dirty = true
			}
		}
		if dirty {
			if d := diffParallel(e.Result(), Run(acc, nil, in.rules, opts)); d != "" {
				t.Fatalf("accepted stream diverged from oracle: %s", d)
			}
		}
	})
}
