package clean

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/cfd"
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/rule"
)

// runModes runs the pipeline twice over identical clones of the instance —
// once with the delta-driven scheduler, once with the full-rescan reference
// — and returns both results. Workers is forced to 1 so the incremental
// result is the sequential engine's, whatever the host's GOMAXPROCS.
func runModes(data, master *relation.Relation, rules []rule.Rule, opts Options) (inc, ref *Result) {
	opts.Rescan, opts.Workers = false, 1
	inc = Run(data, master, rules, opts)
	opts.Rescan = true
	ref = Run(data, master, rules, opts)
	return inc, ref
}

// diffResults returns a description of the first observable difference
// between the two results, or "" when they are fix-for-fix identical. The
// work counters (Match, Apply) are excluded: differing is their purpose.
func diffResults(inc, ref *Result) string {
	if !reflect.DeepEqual(inc.Fixes, ref.Fixes) {
		return fmt.Sprintf("Fixes differ:\nincremental: %v\nrescan:      %v", inc.Fixes, ref.Fixes)
	}
	if inc.Asserts != ref.Asserts {
		return fmt.Sprintf("Asserts: %d vs %d", inc.Asserts, ref.Asserts)
	}
	if !reflect.DeepEqual(inc.Conflicts, ref.Conflicts) {
		return fmt.Sprintf("Conflicts differ:\nincremental: %v\nrescan:      %v", inc.Conflicts, ref.Conflicts)
	}
	if inc.GroupsResolved != ref.GroupsResolved {
		return fmt.Sprintf("GroupsResolved: %d vs %d", inc.GroupsResolved, ref.GroupsResolved)
	}
	if inc.Rounds != ref.Rounds || inc.HRounds != ref.HRounds {
		return fmt.Sprintf("rounds: cRepair %d vs %d, hRepair %d vs %d",
			inc.Rounds, ref.Rounds, inc.HRounds, ref.HRounds)
	}
	if !reflect.DeepEqual(inc.Resolved, ref.Resolved) || !reflect.DeepEqual(inc.Unresolved, ref.Unresolved) {
		return fmt.Sprintf("resolution status differs: %v/%v vs %v/%v",
			inc.Resolved, inc.Unresolved, ref.Resolved, ref.Unresolved)
	}
	if got, want := inc.Report.String(), ref.Report.String(); got != want {
		return fmt.Sprintf("Reports differ:\nincremental: %s\nrescan:      %s", got, want)
	}
	if inc.Report.CertVisits != ref.Report.CertVisits {
		// Both engines certify the same repaired relation through the same
		// blocked enumeration, so even this work counter must agree.
		return fmt.Sprintf("certify visits: %d vs %d", inc.Report.CertVisits, ref.Report.CertVisits)
	}
	for i, t := range inc.Data.Tuples {
		u := ref.Data.Tuples[i]
		for a := range t.Values {
			//det:ok floateq bit-for-bit cell identity across engines is the property under test
			if t.Values[a] != u.Values[a] || t.Conf[a] != u.Conf[a] || t.Marks[a] != u.Marks[a] {
				return fmt.Sprintf("cell t%d[%d]: (%q, %.3f, %v) vs (%q, %.3f, %v)",
					i, a, t.Values[a], t.Conf[a], t.Marks[a], u.Values[a], u.Conf[a], u.Marks[a])
			}
		}
	}
	return ""
}

// diffParallel compares a parallel-pool result against the sequential
// incremental result. The bar is stricter than diffResults: the parallel
// engine runs the same scheduler over the same worklists, so even the work
// counters — per-rule applier visits, per-MD matcher statistics — must be
// identical, not just the fixes. (WorkerVisits is exempt: how the visits
// split across workers depends on runtime scheduling.)
func diffParallel(par, seq *Result) string {
	if d := diffResults(par, seq); d != "" {
		return d
	}
	if !reflect.DeepEqual(par.Apply, seq.Apply) {
		return fmt.Sprintf("applier work counters differ:\nparallel:   %v\nsequential: %v",
			statsDump(par.Apply), statsDump(seq.Apply))
	}
	if !reflect.DeepEqual(par.Match, seq.Match) {
		return fmt.Sprintf("matcher statistics differ:\nparallel:   %v\nsequential: %v",
			par.Match, seq.Match)
	}
	return ""
}

func statsDump(m map[string]*ApplyStats) string {
	names := make([]string, 0, len(m))
	for name := range m { //det:ok maporder names are sorted before rendering
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s=%+v ", name, *m[name])
	}
	return b.String()
}

// TestPropertyIncrementalEquivalence is the correctness bar of the
// delta-driven scheduler and of the parallel applier layer on top of it:
// over the seeded dirty corpus, the sequential incremental engine must
// produce fix-for-fix identical results to the full-rescan reference —
// same Fixes in the same order, same Asserts, Conflicts, group
// resolutions, round counts, certified Report, and final cell state — and
// the parallel engine (four workers) must match the sequential incremental
// engine down to the work counters. Run it under -race: the propose step
// is the engine's only concurrency.
func TestPropertyIncrementalEquivalence(t *testing.T) {
	const seeds = 400
	opts := DefaultOptions()
	opts.Workers = 4
	// Negative SeqCutoff forces the corpus — tiny by construction — through
	// the pool; with the default cutoff the fast path would run everything
	// inline and the sweep would prove nothing about the parallel layer.
	opts.SeqCutoff = -1
	for seed := int64(0); seed < seeds; seed++ {
		in := genInstance(seed)
		inc, ref := runModes(in.relation(nil), nil, in.rules, DefaultOptions())
		if d := diffResults(inc, ref); d != "" {
			t.Fatalf("seed %d: incremental and rescan engines disagree: %s", seed, d)
		}
		par := Run(in.relation(nil), nil, in.rules, opts)
		if d := diffParallel(par, inc); d != "" {
			t.Fatalf("seed %d: parallel and sequential engines disagree: %s", seed, d)
		}
	}
}

// TestIncrementalEquivalenceWithMaster covers the MD path the randomized
// corpus lacks: the Figure-1 workload exercises equality- and suffix-tree
// blocking, frozen-cell conflicts and the outer Run fixpoint in all three
// modes.
func TestIncrementalEquivalenceWithMaster(t *testing.T) {
	data, master, rules := figure1(t)
	inc, ref := runModes(data, master, rules, DefaultOptions())
	if d := diffResults(inc, ref); d != "" {
		t.Fatalf("incremental and rescan engines disagree on figure1: %s", d)
	}
	if inc.TotalVisits() >= ref.TotalVisits() {
		t.Errorf("incremental visits %d not below rescan visits %d",
			inc.TotalVisits(), ref.TotalVisits())
	}
	opts := DefaultOptions()
	opts.Workers = 4
	opts.SeqCutoff = -1 // figure1 is tiny: bypass the inline fast path
	data, master, rules = figure1(t)
	par := Run(data, master, rules, opts)
	if d := diffParallel(par, inc); d != "" {
		t.Fatalf("parallel and sequential engines disagree on figure1: %s", d)
	}
}

// TestDeltaOnlyRefiresReadingRules pins the reverse dependency map: after
// the seeding round, a fix to attribute A re-enqueues work only for the
// rules whose premise or conclusion reads A — a rule over disjoint
// attributes must not be visited again.
func TestDeltaOnlyRefiresReadingRules(t *testing.T) {
	schema := relation.NewSchema("R", "A", "B", "C", "D")
	rules := rule.Derive([]*cfd.CFD{
		cfd.FD("fdAB", schema, []string{"A"}, "B"),
		cfd.FD("fdCD", schema, []string{"C"}, "D"),
	}, nil)
	data := relation.New(schema)
	data.Append("a1", "b1", "c1", "d1")
	data.Append("a1", "b1", "c1", "d1")
	data.Append("a2", "b2", "c2", "d2")
	data.SetAllConf(0.9)

	e := New(data, nil, rules, DefaultOptions())
	e.CRepair() // seeding round: every rule visits everything
	ab, cd := *e.res.Apply["fdAB"], *e.res.Apply["fdCD"]

	// A delta write to A moves tuple 0 into a new group of fdAB. Only fdAB
	// reads A, so only fdAB may be handed work by the next CRepair.
	e.fix(0, schema.MustIndex("A"), "a2", 0.9, "delta")
	e.CRepair()

	if got := e.res.Apply["fdAB"].CTuples; got <= ab.CTuples {
		t.Errorf("fdAB visits stayed at %d after a write to A; want re-fired", got)
	}
	if got := e.res.Apply["fdCD"]; got.CTuples != cd.CTuples || got.CGroups != cd.CGroups {
		t.Errorf("fdCD visits changed from %+v to %+v after a write to A; must not re-fire", cd, *got)
	}
}

// TestMasterTieBreakReadsReenqueue pins the scheduler's indirect hRepair
// dependency: hTarget breaks ties by master-data support, probing group
// members through the MD premise — so a write to an MD premise attribute
// must re-enqueue the member's variable-CFD group for the hRepair consumer
// even though the attribute is in neither the CFD's LHS nor its RHS.
func TestMasterTieBreakReadsReenqueue(t *testing.T) {
	dschema := relation.NewSchema("R", "A", "B", "C")
	mschema := relation.NewSchema("M", "A", "C")
	master := relation.New(mschema)
	master.Append("a1", "c1")
	master.SetAllConf(1)
	m := md.New("psi", dschema, mschema,
		[]md.ClauseSpec{md.Eq("A", "A")},
		[]md.PairSpec{{Data: "C", Master: "C"}})
	rules := rule.Derive([]*cfd.CFD{cfd.FD("fd", dschema, []string{"B"}, "C")}, []*md.MD{m})

	data := relation.New(dschema)
	data.Append("a0", "b", "c1")
	data.Append("a0", "b", "c2")
	data.SetAllConf(0.5) // below eta: nothing freezes, groups stay put

	e := New(data, master, rules, DefaultOptions())
	e.CRepair() // seed; no writes at conf 0.5
	var fdIdx int
	for ri, r := range e.rules {
		if r.Kind == rule.VariableCFD {
			fdIdx = ri
		}
	}
	gi := e.sched.gidx[fdIdx]
	gi.dirty[phaseH] = make(map[int32]bool) // drop any seeding marks

	// A is read only by the MD premise — and, transitively, by the fd's
	// hRepair tie-break. Writing it must H-dirty tuple 0's group of fd.
	e.fix(0, dschema.MustIndex("A"), "a1", 0.9, "test")
	key := e.data.Tuples[0].Key([]int{dschema.MustIndex("B")})
	kid, ok := gi.syms.ids[key]
	if !ok {
		t.Fatalf("group key %q was never interned; symbols = %v", key, gi.syms.strs)
	}
	if !gi.dirty[phaseH][kid] {
		t.Fatalf("write to MD premise attr A did not H-dirty the fd group %q; dirty = %v",
			key, gi.dirty[phaseH])
	}
	if gi.dirty[phaseC][kid] {
		t.Errorf("write to A must not C-dirty the fd group: cRepair never reads master suggestions")
	}
}

// TestCheckerMDBlockingIsExact pins the Checker's equality-blocked MD
// certification against the naive nested scan: same violating pairs, same
// (T, S) order, on a dirty instance where premises mix equality and
// similarity clauses.
func TestCheckerMDBlockingIsExact(t *testing.T) {
	data, master, rules := figure1(t)
	// Check the dirty input directly (not a repair) so violations exist.
	c := NewChecker(rules, master)
	for ri, r := range rules {
		if r.Kind != rule.MatchMD {
			continue
		}
		var blocked []md.Violation
		visited := 0
		c.visitMDViolations(data, r.MD, c.matchers[ri], &visited, func(v md.Violation) bool {
			blocked = append(blocked, v)
			return true
		})
		naive := md.Violations(data, master, r.MD)
		if !reflect.DeepEqual(blocked, naive) {
			t.Errorf("%s: blocked enumeration %v != naive %v", r.Name(), blocked, naive)
		}
		if len(naive) == 0 {
			t.Errorf("%s: dirty figure1 input has no MD violations; test is vacuous", r.Name())
		}
		if scan := data.Len() * master.Len(); visited >= scan {
			t.Errorf("%s: blocked certification visited %d pairs, not below the %d-pair scan", r.Name(), visited, scan)
		}
	}
}

// TestGroupIndexStaysExact is the paranoia check behind the scheduler: after
// a full pipeline run, every variable-CFD group index must agree exactly —
// keys, members, order — with cfd.Groups recomputed from the final relation.
func TestGroupIndexStaysExact(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		in := genInstance(seed)
		e := New(in.relation(nil), nil, in.rules, DefaultOptions())
		e.CRepair()
		e.ERepair()
		e.HRepair()
		for ri, r := range e.rules {
			gi := e.sched.gidx[ri]
			if gi == nil {
				continue
			}
			want := cfd.Groups(e.data, r.CFD)
			if len(gi.groups) != len(want) {
				t.Fatalf("seed %d rule %s: index has %d groups, relation has %d",
					seed, r.Name(), len(gi.groups), len(want))
			}
			for _, wg := range want {
				var g *igroup
				if kid, ok := gi.syms.ids[wg.Key]; ok {
					g = gi.groups[kid]
				}
				if g == nil || !reflect.DeepEqual(g.members, wg.Members) {
					t.Fatalf("seed %d rule %s group %q: index members %v, want %v",
						seed, r.Name(), wg.Key, g, wg.Members)
				}
			}
		}
	}
}
