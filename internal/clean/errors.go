package clean

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrCanceled is returned by RunContext and CheckContext when the context is
// canceled before the run completes. The engine guarantees the input
// relation is untouched (it only ever mutates its private clone) and that no
// partially committed round is observable: a cancellation detected while a
// rule's proposals are in flight rewinds them all before returning.
var ErrCanceled = errors.New("clean: run canceled")

// ErrDeadline is the deadline-expired sibling of ErrCanceled, returned when
// the context's deadline passes mid-run. The soft budget Options.Deadline is
// different: it degrades the run to a truthful partial Report instead of
// erroring (see Options).
var ErrDeadline = errors.New("clean: deadline exceeded")

// ErrNotStreaming is returned by Upsert/Delete on an engine that was not
// built by NewStream: a batch engine has no base instance to rebase from,
// so the update API is meaningless on it.
var ErrNotStreaming = errors.New("clean: not a streaming engine (use NewStream)")

// ErrBadUpdate marks a rejected streaming update — id out of range, arity
// mismatch, confidence outside [0,1], delete of an already-deleted tuple.
// It is always wrapped with the specific reason (errors.Is to test), and a
// rejected update is guaranteed to have mutated nothing.
var ErrBadUpdate = errors.New("clean: invalid update")

// ctxErr maps a context error to the engine's typed sentinel.
func ctxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadline
	}
	return ErrCanceled
}

// WorkerError is a panic contained by the engine — in a pool worker, a
// fan-out task, or the sequential phase code — converted into a structured
// error instead of tearing down the process. The run's pending proposals are
// rewound before it is returned, so the engine's clone holds no partial
// round and the caller's input relation is untouched. When several workers
// panic in one fan-out, the failure with the lowest worklist index among
// those recorded is propagated, which is deterministic for a deterministic
// fault source.
type WorkerError struct {
	// Phase is the pipeline phase that panicked: "cRepair", "eRepair",
	// "hRepair", "certify", or "run" for panics outside any fan-out.
	Phase string
	// Rule is the name of the rule being applied, "" when not attributable.
	Rule string
	// Shard is the pool worker index, -1 for inline (sequential) execution.
	Shard int
	// Item is the worklist index of the work item being processed, -1 when
	// the panic fired between items (scheduling, seeding bookkeeping).
	Item int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error renders the contained panic with its blast-radius coordinates.
func (e *WorkerError) Error() string {
	where := e.Phase
	if e.Rule != "" {
		where += " rule " + e.Rule
	}
	if e.Item >= 0 {
		where += fmt.Sprintf(" item %d", e.Item)
	}
	if e.Shard >= 0 {
		where += fmt.Sprintf(" (worker %d)", e.Shard)
	}
	return fmt.Sprintf("clean: panic contained in %s: %v", where, e.Value)
}

// Unwrap exposes a panic value that is itself an error (e.g. the fault
// injector's *Injected) to errors.Is/As.
func (e *WorkerError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err //det:ok errcontract deliberately exposes the raw panic value: *WorkerError is itself the typed wrapper, Unwrap is its errors.Is/As plumbing
	}
	return nil
}

// newWorkerError captures the recovered value r with its coordinates and the
// current stack.
func newWorkerError(r any, phase, ruleName string, shard, item int) *WorkerError {
	return &WorkerError{
		Phase: phase, Rule: ruleName, Shard: shard, Item: item,
		Value: r, Stack: debug.Stack(),
	}
}

// phaseName renders a worklist phase constant for error reports.
func phaseName(phase int) string {
	switch phase {
	case phaseC:
		return "cRepair"
	case phaseE:
		return "eRepair"
	case phaseH:
		return "hRepair"
	default:
		return fmt.Sprintf("phase%d", phase)
	}
}
