package clean

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/relation"
)

// This file implements the parallel applier layer on top of the delta-driven
// scheduler: a bounded worker pool that fans one rule's worklist out as
// shards, computes *proposed* fixes concurrently, and commits the proposals
// through a single deterministic merge step, so the result stays
// fix-for-fix identical to the sequential engine.
//
// The design splits every applier into propose and commit:
//
//   - Propose runs concurrently. Each worker owns a disjoint share of the
//     rule's work items (tuples for per-tuple rules, LHS-equal groups for
//     variable CFDs) and runs the ordinary applier decision logic against
//     the live relation. Writes mutate the owned cells directly — safe,
//     because one rule's items never read each other's cells (per-tuple
//     rules read only their own tuple; groups of one rule partition the
//     relation) — and are recorded as ops carrying the cell's pre-write
//     state. Shared engine state (Fixes, Asserts, Conflicts, the
//     scheduler's worklists and group indexes, hRepair's budget) is never
//     touched during propose.
//
//   - Commit runs on one goroutine after the barrier, merging proposals in
//     worklist order (ascending tuple id / first group member — exactly the
//     order the sequential engine visits). For each item it first rewinds
//     the propose-time cell writes, then replays the ops through the
//     engine's own assert/fix/hfix/conflictf path, so every piece of
//     bookkeeping — fix records, scheduler re-enqueueing with the
//     in-flight-rule suppression, conflict dedup — is produced by the same
//     code the sequential engine runs, observing the same intermediate cell
//     states.
//
// Rules still commit one after another in rule.Order: a later rule's
// propose sees every earlier rule's writes of the same round, which is what
// keeps Rounds and the fix interleaving byte-identical to the sequential
// engine. The parallelism is within a rule, where the sequential visit
// order provably cannot matter.

// opKind enumerates the effects a propose pass records.
type opKind uint8

const (
	opAssert opKind = iota
	opFix
	opHFix
	opSpend
	opConflict
)

// op is one effect proposed by a worker: enough to rewind the propose-time
// cell mutation and to replay the effect through the engine's own write
// path at commit.
type op struct {
	kind opKind
	i, a int     // target cell (unused for opConflict)
	val  string  // value written (opFix, opHFix)
	conf float64 // confidence attached (opAssert, opFix, opHFix)
	rule string  // rule name recorded on the fix
	msg  string  // rendered conflict text (opConflict)

	// Cell (i, a) before this op, captured at propose time. Commit rewinds
	// through these so the replay sees exactly the intermediate states the
	// sequential engine would.
	oldVal  string
	oldConf float64
	oldMark relation.FixMark
}

// proposal collects the ops one work item produced during propose, in
// decision order. Most items propose nothing and stay allocation-free.
type proposal struct {
	ops []op
}

// applier is the execution context of the per-tuple and per-group rule
// appliers: the matcher set to probe and the sink decisions go to. The
// engine's canonical applier (Engine.ap) commits effects immediately; each
// pool worker carries one with forked matchers, private work counters, and
// a proposal buffer switched per item.
type applier struct {
	e        *Engine
	matchers []*matcher  // the engine's own, or per-worker forks
	buf      *proposal   // nil: direct-commit mode
	scratch  *ApplyStats // non-nil on workers: counters merged after the barrier
}

// stat returns where rule ri's work counters go: the engine's per-rule
// counter in direct mode, the worker's scratch in propose mode.
func (ap *applier) stat(ri int) *ApplyStats {
	if ap.scratch != nil {
		return ap.scratch
	}
	return ap.e.apply[ri]
}

// assert freezes cell (i, a) (see Engine.assert). In propose mode the
// mutation lands on the live cell — the item owns it — and is recorded for
// the commit replay.
func (ap *applier) assert(i, a int, conf float64) int {
	if ap.buf == nil {
		return ap.e.assert(i, a, conf)
	}
	t := ap.e.data.Tuples[i]
	if t.Marks[a] == relation.FixDeterministic {
		return 0
	}
	ap.record(op{kind: opAssert, i: i, a: a, conf: conf}, t)
	if conf > t.Conf[a] {
		t.Conf[a] = conf
	}
	t.Marks[a] = relation.FixDeterministic
	return 1
}

// fix writes a deterministic fix to cell (i, a) (see Engine.fix).
func (ap *applier) fix(i, a int, v string, conf float64, ruleName string) int {
	if ap.buf == nil {
		return ap.e.fix(i, a, v, conf, ruleName)
	}
	t := ap.e.data.Tuples[i]
	ap.record(op{kind: opFix, i: i, a: a, val: v, conf: conf, rule: ruleName}, t)
	t.Set(a, v, conf, relation.FixDeterministic)
	return 1
}

// hfix writes a possible fix to cell (i, a) (see Engine.hfix).
func (ap *applier) hfix(i, a int, v string, conf float64, ruleName string) int {
	if ap.buf == nil {
		return ap.e.hfix(i, a, v, conf, ruleName)
	}
	t := ap.e.data.Tuples[i]
	ap.record(op{kind: opHFix, i: i, a: a, val: v, conf: conf, rule: ruleName}, t)
	t.Set(a, v, conf, relation.FixPossible)
	return 1
}

func (ap *applier) record(o op, t *relation.Tuple) {
	o.oldVal, o.oldConf, o.oldMark = t.Values[o.a], t.Conf[o.a], t.Marks[o.a]
	ap.buf.ops = append(ap.buf.ops, o)
}

// conflictf records a refused fix (see Engine.conflictf). Propose renders
// the message immediately — its inputs are the item's own cells — and
// commit dedups in merge order, so the Conflicts list is deterministic.
func (ap *applier) conflictf(format string, args ...any) {
	if ap.buf == nil {
		ap.e.conflictf(format, args...)
		return
	}
	ap.buf.ops = append(ap.buf.ops, op{kind: opConflict, msg: fmt.Sprintf(format, args...)})
}

// spend consumes one unit of cell (i, a)'s hRepair change budget. Propose
// only reads the shared budget map — safe, since commit defers all budget
// writes past the barrier and no two items of one rule touch the same cell
// — and records the decrement for the commit replay.
func (ap *applier) spend(i, a int) bool {
	if ap.buf == nil {
		return ap.e.spend(i, a)
	}
	if ap.e.budgetLeft(i, a) == 0 {
		return false
	}
	ap.buf.ops = append(ap.buf.ops, op{kind: opSpend, i: i, a: a})
	return true
}

// rewind restores the cells a proposal wrote to their pre-propose state, in
// reverse op order, so the commit replay starts from the state the
// sequential engine would see.
func (e *Engine) rewind(ops []op) {
	for k := len(ops) - 1; k >= 0; k-- {
		o := ops[k]
		switch o.kind {
		case opAssert, opFix, opHFix:
			t := e.data.Tuples[o.i]
			t.Values[o.a], t.Conf[o.a], t.Marks[o.a] = o.oldVal, o.oldConf, o.oldMark
		}
	}
}

// replay commits one recorded op through the engine's own write path — the
// code the sequential engine runs — and returns its progress contribution.
func (e *Engine) replay(o op) int {
	switch o.kind {
	case opAssert:
		return e.assert(o.i, o.a, o.conf)
	case opFix:
		return e.fix(o.i, o.a, o.val, o.conf, o.rule)
	case opHFix:
		return e.hfix(o.i, o.a, o.val, o.conf, o.rule)
	case opSpend:
		e.spend(o.i, o.a)
	case opConflict:
		e.conflictf("%s", o.msg)
	}
	return 0
}

// pool is the bounded worker pool of the parallel applier layer: one
// applier per worker, each with forked matchers (shared immutable indexes,
// private scratch and statistics).
type pool struct {
	workers []*applier
	visits  []int64 // per-worker propose tuple visits, reported by -bench
}

func newPool(e *Engine, n int) *pool {
	p := &pool{visits: make([]int64, n)}
	for w := 0; w < n; w++ {
		forks := make([]*matcher, len(e.matchers))
		for ri, x := range e.matchers {
			if x != nil {
				forks[ri] = x.fork()
			}
		}
		p.workers = append(p.workers, &applier{e: e, matchers: forks, scratch: &ApplyStats{}})
	}
	return p
}

// shardQueue is one worker's remaining range of a rule's item index space.
// The owner claims small batches off the front; idle workers steal half of
// the remainder off the back. Both sides go through one mutex per queue —
// claims and steals are rare relative to item processing, and a mutex makes
// the lo/hi crossing race of lock-free deques a non-problem. Which indexes
// end up processed by which worker is scheduling-dependent, but the
// index-ordered commit merge makes that invisible in every output.
type shardQueue struct {
	mu     sync.Mutex
	lo, hi int // remaining items [lo, hi)
}

// claim takes up to n items off the front of the queue (owner side).
func (q *shardQueue) claim(n int) (lo, hi int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.lo >= q.hi {
		return 0, 0, false
	}
	lo = q.lo
	hi = lo + n
	if hi > q.hi {
		hi = q.hi
	}
	q.lo = hi
	return lo, hi, true
}

// steal takes the back half of the remaining range (thief side).
func (q *shardQueue) steal() (lo, hi int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.hi - q.lo
	if n <= 0 {
		return 0, 0, false
	}
	take := (n + 1) / 2
	lo, hi = q.hi-take, q.hi
	q.hi = lo
	return lo, hi, true
}

// put deposits a stolen range into the (empty) queue, making its remainder
// stealable again. Only the owner deposits, and only after its own claim
// failed, so the queue is empty when put runs.
func (q *shardQueue) put(lo, hi int) {
	q.mu.Lock()
	q.lo, q.hi = lo, hi
	q.mu.Unlock()
}

// stealInto moves half of some other worker's remaining range into worker
// w's own queue, scanning victims round-robin from w+1. It reports whether
// any work was found; the caller then claims from its own queue as usual —
// which can fail if another thief raced it there, in which case it simply
// steals again. Work only ever shrinks (nothing enqueues after the fan-out
// starts), so a full scan finding every queue empty is a sound exit.
func stealInto(queues []shardQueue, w int) bool {
	for k := 1; k < len(queues); k++ {
		if lo, hi, ok := queues[(w+k)%len(queues)].steal(); ok {
			queues[w].put(lo, hi)
			return true
		}
	}
	return false
}

// runParallel fans one rule's work items out to the pool and commits the
// proposals in item order. items must already be in sequential visit order
// (ascending tuple id / first group member), and item ownership must be
// disjoint: no two items may read or write the same data tuple — which
// holds for every rule kind, since per-tuple appliers read only their own
// tuple (plus immutable master data) and one rule's groups partition the
// relation. activeTuple reports the tuple to bracket with the scheduler's
// in-flight-rule suppression during commit, mirroring the sequential
// setActive calls (per-tuple rules only).
func runParallel[T any](p *pool, e *Engine, phase, ri int, items []T,
	activeTuple func(T) (int, bool), fn func(*applier, T) int) int {

	props := make([]proposal, len(items))
	// Each worker starts with a contiguous shard of the ordered worklist
	// (locality) and steals from its neighbors once its own shard drains,
	// so one expensive item — a huge variable-CFD group, a full-scan MD
	// probe — strands at most the few items of the claim batch it arrived
	// in, never a whole chunk. The merge below is index-ordered, so neither
	// the initial partition nor the steal schedule ever shows in the output.
	n := len(p.workers)
	if n > len(items) {
		n = len(items)
	}
	queues := make([]shardQueue, n)
	for w := range queues {
		queues[w].lo = w * len(items) / n
		queues[w].hi = (w + 1) * len(items) / n
	}
	// Claim batches trade mutex traffic against stranding: an expensive
	// item blocks only its claimed batch-mates, so batches stay small, and
	// shrink to single items on short worklists where items are big.
	grain := len(items) / (n * 16)
	if grain < 1 {
		grain = 1
	}
	if grain > 8 {
		grain = 8
	}
	// Failure containment: each item runs under its own recover, so one
	// panicking rule application records a structured *WorkerError in its
	// item-indexed slot and trips the abort flag instead of crashing the
	// process. Peers poll the flag (and the run context) between claim
	// batches and drain out; after the barrier the lowest-index recorded
	// failure wins, which is deterministic for a deterministic fault source.
	// Panics outside any item — claim/steal bookkeeping, the scheduling
	// fault hook — land in a per-worker slot instead.
	fails := make([]*WorkerError, len(items))
	schedFails := make([]*WorkerError, n)
	var aborted atomic.Bool
	ruleName := e.rules[ri].Name()
	runItem := func(w int, ap *applier, idx int) {
		defer func() {
			ap.buf = nil
			if r := recover(); r != nil {
				fails[idx] = newWorkerError(r, phaseName(phase), ruleName, w, idx)
				aborted.Store(true)
			}
		}()
		ap.buf = &props[idx]
		e.fj.At(fault.SiteApply, ri, idx)
		fn(ap, items[idx])
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int, ap *applier) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					schedFails[w] = newWorkerError(r, phaseName(phase), ruleName, w, -1)
					aborted.Store(true)
				}
			}()
			for {
				if aborted.Load() || e.ctx.Err() != nil {
					return
				}
				lo, hi, ok := queues[w].claim(grain)
				if !ok {
					if !stealInto(queues, w) {
						return
					}
					continue
				}
				e.fj.At(fault.SiteSched, ri, lo)
				for idx := lo; idx < hi; idx++ {
					if aborted.Load() {
						return
					}
					runItem(w, ap, idx)
				}
			}
		}(w, p.workers[w])
	}
	wg.Wait()

	// Merge the deterministic work counters: order-independent sums into
	// the same per-rule and per-MD counters the sequential engine bumps.
	// This runs even on a failed fan-out so the worker scratch is zeroed
	// for whoever runs the pool next.
	for w, ap := range p.workers[:n] {
		p.visits[w] += int64(ap.scratch.Visits())
		e.apply[ri].add(ap.scratch)
		*ap.scratch = ApplyStats{}
		for rj, x := range e.matchers {
			if f := ap.matchers[rj]; f != nil && x != nil {
				x.stats.add(&f.stats)
				f.stats = MatchStats{MasterSize: x.stats.MasterSize}
			}
		}
	}

	// Failed or canceled fan-out: the round is a transaction, so rewind
	// every proposal's propose-time cell writes — committing a prefix is
	// exactly the inconsistency the commit boundary exists to rule out —
	// and poison the engine with the failure. Items own disjoint cells, so
	// the per-item reverse-order rewinds compose in any item order.
	if aborted.Load() || e.interrupted() {
		var werr *WorkerError
		for _, f := range fails {
			if f != nil {
				werr = f
				break
			}
		}
		if werr == nil {
			for _, f := range schedFails {
				if f != nil {
					werr = f
					break
				}
			}
		}
		if werr != nil && e.fail == nil {
			e.fail = werr
		}
		e.interrupted() // no worker error: record the context cancellation
		for idx := range props {
			e.rewind(props[idx].ops)
		}
		return 0
	}

	// Commit: rewind each item's propose-time writes and replay its ops
	// through the engine's own write path, in worklist order.
	progress := 0
	for idx := range props {
		ops := props[idx].ops
		if len(ops) == 0 {
			continue
		}
		if i, ok := activeTuple(items[idx]); ok {
			e.setActive(phase, ri, i)
		}
		e.rewind(ops)
		for _, o := range ops {
			progress += e.replay(o)
		}
	}
	e.clearActive()
	return progress
}

// fanOut runs fn(task) for every task in [0, tasks) across up to workers
// goroutines pulling task indexes from an atomic cursor. It is the
// read-only sibling of runParallel for passes with no proposals to merge —
// the Checker's per-rule certification fan-out and eRepair's seeding pass —
// where tasks write only their own task-indexed result slot and the caller
// merges in task order afterwards, so the outcome is identical for any
// worker count. Each task runs under its own recover; on a panic or a
// context cancellation the remaining tasks are skipped and the error —
// the lowest-index *WorkerError, else the typed cancellation — is returned.
// The caller must discard the partially filled result slots on error.
func fanOut(ctx context.Context, phase string, workers, tasks int, fn func(task int)) error {
	if workers > tasks {
		workers = tasks
	}
	fails := make([]*WorkerError, tasks)
	var aborted atomic.Bool
	runTask := func(shard, task int) {
		defer func() {
			if r := recover(); r != nil {
				fails[task] = newWorkerError(r, phase, "", shard, task)
				aborted.Store(true)
			}
		}()
		fn(task)
	}
	if workers <= 1 {
		for task := 0; task < tasks && !aborted.Load() && ctx.Err() == nil; task++ {
			runTask(-1, task)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					if aborted.Load() || ctx.Err() != nil {
						return
					}
					task := int(cursor.Add(1)) - 1
					if task >= tasks {
						return
					}
					runTask(w, task)
				}
			}(w)
		}
		wg.Wait()
	}
	for _, f := range fails {
		if f != nil {
			return f
		}
	}
	if err := ctx.Err(); err != nil {
		return ctxErr(err)
	}
	return nil
}

// applyTuples runs one per-tuple rule over the given tuple ids (ascending),
// inline when the pool is off or the worklist is under the sequential
// cutoff (small delta rounds pay fan-out overhead, not win from it),
// sharded through the pool otherwise.
func (e *Engine) applyTuples(phase, ri int, ids []int, fn func(*applier, int) int) int {
	if e.inline(len(ids)) {
		progress := 0
		for ii, i := range ids {
			// Same (rule, worklist-index) fault coordinates as the pool
			// path, so a seed fires the same faults inline and sharded.
			e.fj.At(fault.SiteApply, ri, ii)
			e.setActive(phase, ri, i)
			progress += fn(e.ap, i)
		}
		e.clearActive()
		return progress
	}
	return runParallel(e.pool, e, phase, ri, ids,
		func(i int) (int, bool) { return i, true }, fn)
}

// applyGroups runs one variable-CFD rule over the given group snapshots
// (ordered by first member), inline or through the pool; the work estimate
// for the sequential cutoff is the total member count, since group applier
// cost scales with members visited, not group count. Group appliers run
// without the scheduler's in-flight-tuple suppression, exactly like the
// sequential loops.
func (e *Engine) applyGroups(phase, ri int, groups [][]int, fn func(*applier, []int) int) int {
	work := 0
	for _, g := range groups {
		work += len(g)
	}
	if e.inline(work) {
		progress := 0
		for gi, g := range groups {
			e.fj.At(fault.SiteApply, ri, gi)
			progress += fn(e.ap, g)
		}
		return progress
	}
	return runParallel(e.pool, e, phase, ri, groups,
		func([]int) (int, bool) { return 0, false }, fn)
}

// allTupleIDs returns the cached identity worklist 0..Len-1 that full-visit
// seeding rounds iterate.
func (e *Engine) allTupleIDs() []int {
	if e.allIDs == nil {
		e.allIDs = make([]int, e.data.Len())
		for i := range e.allIDs {
			e.allIDs[i] = i
		}
	}
	return e.allIDs
}

// add accumulates o's counters into s.
func (s *ApplyStats) add(o *ApplyStats) {
	s.CTuples += o.CTuples
	s.CGroups += o.CGroups
	s.ETuples += o.ETuples
	s.HTuples += o.HTuples
}

// add accumulates o's work counters into s. MasterSize is a property of the
// master relation, not a counter, and is left alone.
func (s *MatchStats) add(o *MatchStats) {
	s.Lookups += o.Lookups
	s.Candidates += o.Candidates
	s.Verified += o.Verified
	s.FullScans += o.FullScans
}
