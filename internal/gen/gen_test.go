package gen

import (
	"testing"

	"repro/internal/cfd"
	"repro/internal/md"
	"repro/internal/rule"
)

// TestGenerateDeterministic: equal configs must yield cell-identical
// instances — the benchmark gate depends on it.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Tuples: 500, MasterSize: 100, ErrorRate: 0.1, RuleFanout: 2, Seed: 7}
	a, b := Generate(cfg), Generate(cfg)
	if a.Data.DiffCells(b.Data) != 0 || a.Master.DiffCells(b.Master) != 0 {
		t.Fatal("same seed generated different relations")
	}
	if a.Dirtied != b.Dirtied || a.Stubborn != b.Stubborn || len(a.Rules) != len(b.Rules) {
		t.Fatalf("same seed generated different metadata: %+v vs %+v", a, b)
	}
	if c := Generate(Config{Tuples: 500, MasterSize: 100, ErrorRate: 0.1, RuleFanout: 2, Seed: 8}); a.Data.DiffCells(c.Data) == 0 {
		t.Fatal("different seeds generated identical data")
	}
}

// TestGenerateCleanWorldIsConsistent: at zero error rate the instance must
// satisfy every generated rule — the dirt comes only from injection.
func TestGenerateCleanWorldIsConsistent(t *testing.T) {
	inst := Generate(Config{Tuples: 1000, MasterSize: 200, ErrorRate: 0, RuleFanout: 3, Seed: 3})
	if inst.Dirtied != 0 {
		t.Fatalf("Dirtied = %d at zero error rate", inst.Dirtied)
	}
	for _, r := range inst.Rules {
		switch r.Kind {
		case rule.MatchMD:
			if !md.Satisfies(inst.Data, inst.Master, r.MD) {
				t.Errorf("clean world violates %s", r.Name())
			}
		default:
			if !cfd.Satisfies(inst.Data, r.CFD) {
				t.Errorf("clean world violates %s", r.Name())
			}
		}
	}
}

// TestGenerateErrorRate: the injected error count must track the configured
// rate over the dirtiable cells (5 per tuple), and some dirt must be
// stubborn (trusted wrong values) so eRepair/hRepair have work.
func TestGenerateErrorRate(t *testing.T) {
	inst := Generate(Config{Tuples: 5000, MasterSize: 500, ErrorRate: 0.05, RuleFanout: 3, Seed: 1, StubbornRate: 0.1})
	want := float64(5000*5) * 0.05
	if got := float64(inst.Dirtied); got < want*0.8 || got > want*1.2 {
		t.Errorf("Dirtied = %d, want about %.0f", inst.Dirtied, want)
	}
	if inst.Stubborn == 0 || inst.Stubborn >= inst.Dirtied {
		t.Errorf("Stubborn = %d of %d dirtied, want a strict nonzero fraction", inst.Stubborn, inst.Dirtied)
	}
	clean := true
	for _, r := range inst.Rules {
		if r.Kind != rule.MatchMD && !cfd.Satisfies(inst.Data, r.CFD) {
			clean = false
		}
	}
	if clean {
		t.Error("5% dirty instance satisfies all CFDs; injection did not create violations")
	}
}
