package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// This file generates deterministic update streams for the streaming
// cleaning layer (internal/clean's NewStream): sequences of upserts and
// deletes against a generated Instance, with the same HOSP world model and
// error injection as Generate, so replayed updates exercise exactly the
// rule set the base instance was built for.

// Update is one streaming operation against an Instance's data relation.
type Update struct {
	// Delete tombstones tuple ID; Values/Conf are nil.
	Delete bool
	// ID is the target tuple: an existing id to overwrite or delete, or
	// the current relation length to append.
	ID int
	// Values and Conf are the upserted row, parallel to the data schema.
	Values []string
	Conf   []float64
}

// UpdateConfig shapes a generated update stream.
type UpdateConfig struct {
	// Updates is the stream length.
	Updates int
	// DeleteRate is the fraction of operations that tombstone a live
	// tuple; the rest are upserts.
	DeleteRate float64
	// AppendRate is the fraction of upserts that append a new tuple
	// instead of overwriting an existing id.
	AppendRate float64
	// HotGroupRate is the fraction of upserted rows forced into the
	// hottest zip (the one the constant CFDs target), concentrating
	// updates onto the same dependency groups.
	HotGroupRate float64
	// Seed drives the stream's private generator; the same (Instance,
	// UpdateConfig) always yields the same stream.
	Seed int64
}

// DefaultUpdateConfig returns the benchmark update-stream shape.
func DefaultUpdateConfig() UpdateConfig {
	return UpdateConfig{Updates: 100, DeleteRate: 0.15, AppendRate: 0.25, HotGroupRate: 0.2, Seed: 1}
}

// GenerateUpdates derives a deterministic update stream for inst. Every
// operation is valid at its position when replayed in order against
// inst.Data: deletes target live (never already-tombstoned) ids, appends
// use the exact next id, and rows match the schema arity. Upserted rows
// are drawn from the same clean world as Generate — a master provider plus
// the zip-determined city/state — then damaged at the instance's error
// rate, so a replayed stream keeps the cleaner busy without drifting from
// the generated rule set.
func GenerateUpdates(inst *Instance, cfg UpdateConfig) []Update {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gcfg := inst.Config

	// Recompute the clean-world formulas of Generate.
	nZip := gcfg.Tuples / 50
	if nZip < 8 {
		nZip = 8
	}
	nCity := nZip / 4
	if nCity < 4 {
		nCity = 4
	}
	city := func(z int) string { return fmt.Sprintf("city-%03d", z%nCity) }
	state := func(z int) string { return fmt.Sprintf("ST%02d", z%50) }

	arity := inst.Data.Schema.Arity()
	dirtiable := inst.Data.Schema.MustIndexAll("name", "phone", "zip", "city", "state")

	live := make([]bool, inst.Data.Len())
	for i := range live {
		live[i] = true
	}
	nLive := len(live)

	row := func() ([]string, []float64) {
		p := rng.Intn(inst.Master.Len())
		mt := inst.Master.Tuples[p]
		z := rng.Intn(nZip)
		if cfg.HotGroupRate > 0 && rng.Float64() < cfg.HotGroupRate {
			z = 0
		}
		vals := []string{
			mt.Values[0], // provider
			mt.Values[1], // name
			mt.Values[2], // phone
			fmt.Sprintf("z%05d", z),
			city(z),
			state(z),
		}
		conf := make([]float64, arity)
		for a := range conf {
			conf[a] = gcfg.Conf
		}
		for _, a := range dirtiable {
			if rng.Float64() >= gcfg.ErrorRate {
				continue
			}
			switch inst.Data.Schema.Attrs[a] {
			case "zip":
				vals[a] = fmt.Sprintf("z%05d", rng.Intn(nZip))
			case "city":
				vals[a] = city(rng.Intn(nCity))
			case "state":
				vals[a] = state(rng.Intn(50))
			default:
				vals[a] += fmt.Sprintf("~%d", rng.Intn(10))
			}
			if rng.Float64() >= gcfg.StubbornRate {
				conf[a] = gcfg.DirtyConf
			}
		}
		return vals, conf
	}

	out := make([]Update, 0, cfg.Updates)
	for len(out) < cfg.Updates {
		if nLive > 0 && rng.Float64() < cfg.DeleteRate {
			// Pick a live id uniformly by rejection; live tuples dominate
			// in every realistic stream, so this terminates fast.
			id := rng.Intn(len(live))
			for !live[id] {
				id = rng.Intn(len(live))
			}
			live[id] = false
			nLive--
			out = append(out, Update{Delete: true, ID: id})
			continue
		}
		vals, conf := row()
		id := len(live)
		if rng.Float64() >= cfg.AppendRate && len(live) > 0 {
			id = rng.Intn(len(live))
			if !live[id] {
				live[id] = true // resurrecting a tombstone is a legal upsert
				nLive++
			}
		} else {
			live = append(live, true)
			nLive++
		}
		out = append(out, Update{ID: id, Values: vals, Conf: conf})
	}
	return out
}

// Apply replays u against d, mirroring the staging semantics of the
// streaming engine: overwrite or append for upserts, all-cells-to-Null
// tombstoning for deletes. It is the from-scratch oracle's way of building
// the final base instance without a streaming engine.
func (u Update) Apply(d *relation.Relation) {
	if u.Delete {
		t := d.Tuples[u.ID]
		for a := 0; a < d.Schema.Arity(); a++ {
			t.Set(a, relation.Null, 0, relation.FixNone)
		}
		return
	}
	if u.ID == d.Len() {
		t := d.Append(u.Values...)
		copy(t.Conf, u.Conf)
		return
	}
	t := d.Tuples[u.ID]
	for a := 0; a < d.Schema.Arity(); a++ {
		c := 0.0
		if u.Conf != nil {
			c = u.Conf[a]
		}
		t.Set(a, u.Values[a], c, relation.FixNone)
	}
}
