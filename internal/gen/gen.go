// Package gen builds synthetic dirty instances shaped like the paper's
// Section 7 experiments on the HOSP (hospital) data: a consistent clean
// world is derived deterministically from a seed, master records are drawn
// from it, and cell errors are injected at a configurable rate. The
// generator exists so performance numbers are measured on a reproducible
// workload whose size, dirtiness and rule fanout are knobs, not on whatever
// CSV happens to be lying around.
//
// The schema is R(provider, name, phone, zip, city, state) with master
// M(provider, name, phone, zip). The rule set exercises all three rule
// kinds and both MD blocking indexes: variable CFDs zip -> city and
// zip -> state, RuleFanout constant CFDs pinning hot zip codes to their
// city, an equality-premise MD matching provider numbers against the master
// to repair name, phone and zip, and a similarity-only MD (edit distance on
// name, no equality clause) repairing phone — the workload that drives the
// suffix-tree blocking and the blocked certification path. Master names are
// long random strings, pairwise far apart in edit distance, so the
// similarity premise matches a name only against its own (possibly typo'd)
// master record, never a neighbor's.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/cfd"
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/rule"
	"repro/internal/similarity"
)

// Config parameterizes one synthetic instance.
type Config struct {
	// Tuples is the data relation cardinality.
	Tuples int
	// MasterSize is the master relation cardinality (distinct providers).
	MasterSize int
	// ErrorRate is the per-cell probability of injecting an error into the
	// dirtiable attributes (name, phone, zip, city, state).
	ErrorRate float64
	// RuleFanout is the number of constant CFDs generated over hot zip
	// codes, controlling how many rules read the same attributes.
	RuleFanout int
	// Seed drives the RNG; equal configs generate identical instances.
	Seed int64
	// Conf is the confidence of undamaged cells. Default 0.9 — above the
	// default η, so deterministic repair has trusted premises to stand on.
	Conf float64
	// DirtyConf is the confidence of damaged cells. Default 0.3 — below η,
	// so the error is untrusted and repairable without conflicts.
	DirtyConf float64
	// StubbornRate is the fraction of damaged cells that keep confidence
	// Conf: trusted wrong values, which force conflicts into eRepair and
	// hRepair instead of being deterministically overwritten.
	StubbornRate float64
	// HotZipRate, when positive, is the probability that a master provider
	// is re-homed to zip 0 after its uniform draw: the adversarial skew
	// knob. At 0.5 half the providers — and with them roughly half the data
	// tuples — share a single zip, so the variable CFDs get one giant
	// LHS-equal group next to many tiny ones: the worst case for chunked
	// shard claiming and the workload the work-stealing sweep tests run.
	// Zero (the default) skips the skew draw entirely, leaving the RNG
	// stream — and therefore every previously committed instance and
	// baseline — bit-identical.
	HotZipRate float64
}

// DefaultConfig is the 10k-tuple / 5%-dirty configuration the benchmarks
// and the CI regression gate run.
func DefaultConfig() Config {
	return Config{
		Tuples:       10000,
		MasterSize:   1000,
		ErrorRate:    0.05,
		RuleFanout:   3,
		Seed:         1,
		Conf:         0.9,
		DirtyConf:    0.3,
		StubbornRate: 0.1,
	}
}

func (c Config) withDefaults() Config {
	if c.Tuples <= 0 {
		c.Tuples = 10000
	}
	if c.MasterSize <= 0 {
		c.MasterSize = 1000
	}
	if c.RuleFanout < 0 {
		c.RuleFanout = 0
	}
	if c.Conf == 0 {
		c.Conf = 0.9
	}
	if c.DirtyConf == 0 {
		c.DirtyConf = 0.3
	}
	return c
}

// Instance is one generated workload.
type Instance struct {
	Config Config
	Data   *relation.Relation
	Master *relation.Relation
	Rules  []rule.Rule
	// Dirtied is the number of cells the generator damaged.
	Dirtied int
	// Stubborn is the number of damaged cells left at full confidence.
	Stubborn int
}

// Generate builds a deterministic dirty instance from cfg.
func Generate(cfg Config) *Instance {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	dschema := relation.NewSchema("hosp", "provider", "name", "phone", "zip", "city", "state")
	mschema := relation.NewSchema("master", "provider", "name", "phone", "zip")

	// The clean world: zip determines city and state; a provider determines
	// name, phone and zip.
	nZip := cfg.Tuples / 50
	if nZip < 8 {
		nZip = 8
	}
	nCity := nZip / 4
	if nCity < 4 {
		nCity = 4
	}
	zips := make([]string, nZip)
	zipCity := make([]string, nZip)
	zipState := make([]string, nZip)
	for z := range zips {
		zips[z] = fmt.Sprintf("z%05d", z)
		zipCity[z] = fmt.Sprintf("city-%03d", z%nCity)
		zipState[z] = fmt.Sprintf("ST%02d", z%50)
	}
	// Names are 12 random letters: two distinct names are then far beyond
	// any small edit threshold with overwhelming probability (sequential
	// name-%06d codes would sit at edit distance 1–2 from their neighbors
	// and make the similarity MD cross-match providers). Uniqueness is
	// enforced so the clean world satisfies the MD by construction.
	usedNames := make(map[string]bool, cfg.MasterSize)
	randName := func() string {
		for {
			b := []byte("nm-............")
			for k := 3; k < len(b); k++ {
				b[k] = byte('a' + rng.Intn(26))
			}
			if n := string(b); !usedNames[n] {
				usedNames[n] = true
				return n
			}
		}
	}
	provZip := make([]int, cfg.MasterSize)
	master := relation.New(mschema)
	for p := 0; p < cfg.MasterSize; p++ {
		z := rng.Intn(nZip)
		if cfg.HotZipRate > 0 && rng.Float64() < cfg.HotZipRate {
			z = 0
		}
		provZip[p] = z
		master.Append(
			fmt.Sprintf("prov-%06d", p),
			randName(),
			fmt.Sprintf("555-%07d", p),
			zips[provZip[p]],
		)
	}
	master.SetAllConf(1)

	inst := &Instance{Config: cfg, Master: master}
	data := relation.New(dschema)
	for i := 0; i < cfg.Tuples; i++ {
		p := rng.Intn(cfg.MasterSize)
		z := provZip[p]
		data.Append(
			master.Tuples[p].Values[0],
			master.Tuples[p].Values[1],
			master.Tuples[p].Values[2],
			zips[z],
			zipCity[z],
			zipState[z],
		)
	}
	data.SetAllConf(cfg.Conf)

	// Error injection over the repairable attributes. A damaged value is
	// swapped within its domain (zip/city/state) or typo'd (name/phone), so
	// the rules have both plausible and implausible dirt to untangle.
	dirtiable := dschema.MustIndexAll("name", "phone", "zip", "city", "state")
	for _, t := range data.Tuples {
		for _, a := range dirtiable {
			if rng.Float64() >= cfg.ErrorRate {
				continue
			}
			switch dschema.Attrs[a] {
			case "zip":
				t.Values[a] = zips[rng.Intn(nZip)]
			case "city":
				t.Values[a] = fmt.Sprintf("city-%03d", rng.Intn(nCity))
			case "state":
				t.Values[a] = fmt.Sprintf("ST%02d", rng.Intn(50))
			default:
				t.Values[a] += fmt.Sprintf("~%d", rng.Intn(10))
			}
			inst.Dirtied++
			if rng.Float64() < cfg.StubbornRate {
				inst.Stubborn++ // keep cfg.Conf: a trusted wrong value
			} else {
				t.Conf[a] = cfg.DirtyConf
			}
		}
	}
	inst.Data = data

	// Rules: the zip FDs, RuleFanout constant CFDs over the hottest zips,
	// and the provider MD against the master.
	cfds := []*cfd.CFD{
		cfd.FD("fd_zip_city", dschema, []string{"zip"}, "city"),
		cfd.FD("fd_zip_state", dschema, []string{"zip"}, "state"),
	}
	for k := 0; k < cfg.RuleFanout; k++ {
		z := k % nZip
		cfds = append(cfds, cfd.New(fmt.Sprintf("cfd_hot_zip_%d", k), dschema,
			[]string{"zip"}, []string{zips[z]}, "city", zipCity[z]))
	}
	m := md.New("md_provider", dschema, mschema,
		[]md.ClauseSpec{md.Eq("provider", "provider")},
		[]md.PairSpec{
			{Data: "name", Master: "name"},
			{Data: "phone", Master: "phone"},
			{Data: "zip", Master: "zip"},
		})
	// The similarity-only MD has no equality clause, so it matches and
	// certifies through the generalized suffix tree: a typo'd name (two
	// appended characters, edit distance 2) still reaches its own master
	// record, while distinct random names stay unmatched.
	sim := md.New("md_name_sim", dschema, mschema,
		[]md.ClauseSpec{md.Sim("name", "name", similarity.EditWithin(2))},
		[]md.PairSpec{{Data: "phone", Master: "phone"}})
	inst.Rules = rule.Derive(cfds, append(m.Normalize(), sim))
	return inst
}
