package relation

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSchemaIndex(t *testing.T) {
	s := NewSchema("tran", "FN", "LN", "city")
	if got := s.Arity(); got != 3 {
		t.Fatalf("Arity = %d, want 3", got)
	}
	if got := s.Index("LN"); got != 1 {
		t.Errorf("Index(LN) = %d, want 1", got)
	}
	if got := s.Index("missing"); got != -1 {
		t.Errorf("Index(missing) = %d, want -1", got)
	}
	if got := s.MustIndex("city"); got != 2 {
		t.Errorf("MustIndex(city) = %d, want 2", got)
	}
	if got := s.String(); got != "tran(FN, LN, city)" {
		t.Errorf("String = %q", got)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSchema with duplicate attrs did not panic")
		}
	}()
	NewSchema("r", "A", "A")
}

func TestMustIndexUnknownPanics(t *testing.T) {
	s := NewSchema("r", "A")
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex on unknown attr did not panic")
		}
	}()
	s.MustIndex("B")
}

func TestMustIndexAll(t *testing.T) {
	s := NewSchema("r", "A", "B", "C")
	if got := s.MustIndexAll("C", "A"); !reflect.DeepEqual(got, []int{2, 0}) {
		t.Errorf("MustIndexAll = %v", got)
	}
}

func TestAppendAndIDs(t *testing.T) {
	r := New(NewSchema("r", "A", "B"))
	t0 := r.Append("x", "y")
	t1 := r.Append("z", "w")
	if t0.ID != 0 || t1.ID != 1 {
		t.Errorf("IDs = %d,%d, want 0,1", t0.ID, t1.ID)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestAppendWrongArityPanics(t *testing.T) {
	r := New(NewSchema("r", "A", "B"))
	defer func() {
		if recover() == nil {
			t.Fatal("Append with wrong arity did not panic")
		}
	}()
	r.Append("only one")
}

func TestTupleCloneIndependent(t *testing.T) {
	r := New(NewSchema("r", "A", "B"))
	tup := r.Append("x", "y")
	tup.Conf[0] = 0.5
	c := tup.Clone()
	c.Values[0] = "changed"
	c.Conf[0] = 0.9
	c.Marks[1] = FixReliable
	if tup.Values[0] != "x" || tup.Conf[0] != 0.5 || tup.Marks[1] != FixNone {
		t.Errorf("Clone mutated original: %v %v %v", tup.Values, tup.Conf, tup.Marks)
	}
}

func TestRelationCloneIndependent(t *testing.T) {
	r := New(NewSchema("r", "A"))
	r.Append("x")
	c := r.Clone()
	c.Tuples[0].Values[0] = "y"
	if r.Tuples[0].Values[0] != "x" {
		t.Error("Relation.Clone shares tuple storage")
	}
}

func TestProjectAndKey(t *testing.T) {
	r := New(NewSchema("r", "A", "B", "C"))
	tup := r.Append("1", "2", "3")
	if got := tup.Project([]int{2, 0}); !reflect.DeepEqual(got, []string{"3", "1"}) {
		t.Errorf("Project = %v", got)
	}
	k1 := tup.Key([]int{0, 1})
	k2 := tup.Key([]int{0, 1})
	if k1 != k2 {
		t.Error("Key not deterministic")
	}
}

func TestKeyCollisionResistance(t *testing.T) {
	// ("a\x1f", "b") must not collide with ("a", "\x1fb").
	r := New(NewSchema("r", "A", "B"))
	t1 := r.Append("a\x1f", "b")
	t2 := r.Append("a", "\x1fb")
	if t1.Key([]int{0, 1}) == t2.Key([]int{0, 1}) {
		t.Error("Key collides on separator-containing values")
	}
}

func TestActiveDomain(t *testing.T) {
	r := New(NewSchema("r", "A"))
	r.Append("b")
	r.Append("a")
	r.Append("b")
	r.Append(Null)
	if got := r.ActiveDomain(0); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("ActiveDomain = %v", got)
	}
}

func TestDiffCells(t *testing.T) {
	r := New(NewSchema("r", "A", "B"))
	r.Append("x", "y")
	r.Append("z", "w")
	c := r.Clone()
	c.Tuples[0].Values[1] = "Y"
	c.Tuples[1].Values[0] = "Z"
	if got := r.DiffCells(c); got != 2 {
		t.Errorf("DiffCells = %d, want 2", got)
	}
}

func TestSetAllConf(t *testing.T) {
	r := New(NewSchema("r", "A", "B"))
	r.Append("x", "y")
	r.SetAllConf(0.7)
	if r.Tuples[0].Conf[1] != 0.7 {
		t.Errorf("Conf = %v", r.Tuples[0].Conf)
	}
}

func TestTupleSet(t *testing.T) {
	r := New(NewSchema("r", "A"))
	tup := r.Append("x")
	tup.Set(0, "y", 0.8, FixDeterministic)
	if tup.Values[0] != "y" || tup.Conf[0] != 0.8 || tup.Marks[0] != FixDeterministic {
		t.Errorf("Set: %v %v %v", tup.Values, tup.Conf, tup.Marks)
	}
}

func TestFixMarkString(t *testing.T) {
	cases := map[FixMark]string{
		FixNone: "none", FixDeterministic: "deterministic",
		FixReliable: "reliable", FixPossible: "possible", FixMark(9): "FixMark(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := New(NewSchema("tran", "A", "B"))
	r.Append("hello, world", "x\"quoted\"")
	r.Append(Null, "plain")
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("tran", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip Len = %d", back.Len())
	}
	if !reflect.DeepEqual(back.Tuples[0].Values, r.Tuples[0].Values) {
		t.Errorf("row0 = %v, want %v", back.Tuples[0].Values, r.Tuples[0].Values)
	}
	if !IsNull(back.Tuples[1].Values[0]) {
		t.Errorf("null not round-tripped: %q", back.Tuples[1].Values[0])
	}
}

func TestConfCSVRoundTrip(t *testing.T) {
	r := New(NewSchema("r", "A", "B"))
	tu := r.Append("x", "y")
	tu.Conf[0], tu.Conf[1] = 0.25, 1
	var buf bytes.Buffer
	if err := r.WriteConfCSV(&buf); err != nil {
		t.Fatal(err)
	}
	c := r.Clone()
	c.SetAllConf(0)
	if err := ReadConfCSV(c, &buf); err != nil {
		t.Fatal(err)
	}
	if c.Tuples[0].Conf[0] != 0.25 || c.Tuples[0].Conf[1] != 1 {
		t.Errorf("Conf = %v", c.Tuples[0].Conf)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("r", strings.NewReader("")); err == nil {
		t.Error("empty input: want error")
	}
}

func TestKeyInjectiveProperty(t *testing.T) {
	// Property: distinct value slices yield distinct keys (escaping works).
	f := func(a1, a2, b1, b2 string) bool {
		r := New(NewSchema("r", "A", "B"))
		t1 := r.Append(a1, a2)
		t2 := r.Append(b1, b2)
		same := a1 == b1 && a2 == b2
		return (t1.Key([]int{0, 1}) == t2.Key([]int{0, 1})) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarkCounts(t *testing.T) {
	r := New(NewSchema("r", "A", "B", "C"))
	r.Append("1", "2", "3")
	r.Append("4", "5", "6")
	if got := r.MarkCounts(); got != [4]int{6, 0, 0, 0} {
		t.Errorf("fresh MarkCounts = %v, want all none", got)
	}
	r.Tuples[0].Set(0, "x", 0.9, FixDeterministic)
	r.Tuples[0].Set(1, "y", 0.7, FixReliable)
	r.Tuples[1].Set(2, "z", 0.5, FixPossible)
	r.Tuples[1].Set(0, "w", 0.5, FixPossible)
	got := r.MarkCounts()
	want := [4]int{2, 1, 1, 2}
	if got != want {
		t.Errorf("MarkCounts = %v, want %v", got, want)
	}
	n := 0
	for _, c := range got {
		n += c
	}
	if n != r.Len()*r.Schema.Arity() {
		t.Errorf("MarkCounts sums to %d, want %d cells", n, r.Len()*r.Schema.Arity())
	}
}
