package relation

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV reader and checks two
// properties. First, no panic escapes: malformed headers (duplicate
// columns), ragged rows and CSV syntax errors must all surface as errors —
// the malformed-input hardening contract of ReadCSV. Second, any relation it
// accepts round-trips: WriteCSV renders it back to CSV and re-reading yields
// the same schema and cell values (null normalization is idempotent).
func FuzzReadCSV(f *testing.F) {
	f.Add("A,B\n1,2\n")
	f.Add("A,A\n1,2\n")          // duplicate header attribute
	f.Add("A,B\n1\n")            // wrong arity
	f.Add("A,B\n1,2,3\n")        // wrong arity, too many
	f.Add("A,B\nnull,x\n")       // null literal
	f.Add("A,B\n\"q,w\",x\n")    // quoted separator
	f.Add("A,B\n\"unclosed\n")   // CSV syntax error
	f.Add("\n")                  // empty header line
	f.Add("A,B\r\n1,2\r\n")      // CRLF endings
	f.Add("A;B\n")               // no separator match
	f.Add("A,B\n1,2\n3,null\n4") // missing trailing newline + arity

	f.Fuzz(func(t *testing.T, text string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadCSV panicked on %q: %v", text, r)
			}
		}()
		r, err := ReadCSV("fuzz", strings.NewReader(text))
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of accepted input failed: %v\ninput: %q", err, text)
		}
		r2, err := ReadCSV("fuzz", &buf)
		if err != nil {
			t.Fatalf("re-read of written CSV failed: %v\ninput: %q", err, text)
		}
		// encoding/csv normalizes \r\n to \n inside quoted fields on every
		// read, so cells containing bare \r cannot round-trip byte-exactly
		// by design; for those only the error-freedom above is asserted.
		for _, a := range r.Schema.Attrs {
			if strings.ContainsRune(a, '\r') {
				return
			}
		}
		for _, tp := range r.Tuples {
			for _, v := range tp.Values {
				if strings.ContainsRune(v, '\r') {
					return
				}
			}
		}
		if got, want := r2.Schema.String(), r.Schema.String(); got != want {
			t.Fatalf("round-trip changed schema: %s, want %s\ninput: %q", got, want, text)
		}
		if r2.Len() != r.Len() {
			t.Fatalf("round-trip changed cardinality: %d, want %d\ninput: %q", r2.Len(), r.Len(), text)
		}
		for i, tp := range r.Tuples {
			for a, v := range tp.Values {
				if got := r2.Tuples[i].Values[a]; got != v {
					t.Fatalf("round-trip changed t%d[%d]: %q, want %q\ninput: %q", i, a, got, v, text)
				}
			}
		}
	})
}
