package relation

import (
	"fmt"
	"sort"
)

// Relation is an instance of a schema: an ordered collection of tuples.
type Relation struct {
	Schema *Schema
	Tuples []*Tuple
}

// New creates an empty relation over the given schema.
func New(schema *Schema) *Relation {
	return &Relation{Schema: schema}
}

// Append adds a new tuple with the given values, assigning it the next ID.
// It panics if the number of values does not match the schema arity, since
// that is a programming error, not a data error.
func (r *Relation) Append(values ...string) *Tuple {
	if len(values) != r.Schema.Arity() {
		panic(fmt.Sprintf("relation: %d values for schema %s of arity %d", //det:ok panicfree invariant: ReadCSV validates row arity before Append; direct callers pass literal rows
			len(values), r.Schema.Name, r.Schema.Arity()))
	}
	t := NewTuple(len(r.Tuples), values)
	r.Tuples = append(r.Tuples, t)
	return t
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Clone returns a deep copy of the relation sharing the schema.
func (r *Relation) Clone() *Relation {
	out := &Relation{Schema: r.Schema, Tuples: make([]*Tuple, len(r.Tuples))}
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// ActiveDomain returns the sorted distinct non-null values of attribute a.
func (r *Relation) ActiveDomain(a int) []string {
	seen := make(map[string]struct{})
	for _, t := range r.Tuples {
		v := t.Values[a]
		if IsNull(v) {
			continue
		}
		seen[v] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// SetAllConf assigns confidence cf to every cell of the relation.
func (r *Relation) SetAllConf(cf float64) {
	for _, t := range r.Tuples {
		for i := range t.Conf {
			t.Conf[i] = cf
		}
	}
}

// MarkCounts returns, indexed by FixMark, the number of cells carrying each
// fix mark — the tri-level accounting of how much of the relation each
// cleaning phase wrote. Summing the counts gives the total cell count.
func (r *Relation) MarkCounts() [4]int {
	var out [4]int
	for _, t := range r.Tuples {
		for _, m := range t.Marks {
			out[m]++
		}
	}
	return out
}

// DiffCells counts cells on which r and other disagree. Both relations must
// have the same schema and cardinality; tuples are compared by position.
func (r *Relation) DiffCells(other *Relation) int {
	if r.Schema.Arity() != other.Schema.Arity() || r.Len() != other.Len() {
		panic("relation: DiffCells on incompatible relations") //det:ok panicfree invariant: callers diff a relation against its own clone
	}
	n := 0
	for i, t := range r.Tuples {
		u := other.Tuples[i]
		for a := range t.Values {
			if t.Values[a] != u.Values[a] {
				n++
			}
		}
	}
	return n
}
