package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the relation as CSV with a header row of attribute names.
// Null values are written as the literal string "null".
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Attrs); err != nil {
		return err
	}
	row := make([]string, r.Schema.Arity())
	for _, t := range r.Tuples {
		for i, v := range t.Values {
			if IsNull(v) {
				v = "null"
			}
			row[i] = v
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteConfCSV writes the per-cell confidences of the relation as CSV with
// the same header and shape as WriteCSV.
func (r *Relation) WriteConfCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Attrs); err != nil {
		return err
	}
	row := make([]string, r.Schema.Arity())
	for _, t := range r.Tuples {
		for i, c := range t.Conf {
			row[i] = strconv.FormatFloat(c, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a relation from CSV. The first row is the header and defines
// the schema (with the given relation name). The literal value "null" is
// read as Null. All confidences are zero; use ReadConfCSV to attach them.
//
// The input is untrusted: a duplicated header column, a row of the wrong
// arity, or a CSV syntax error all come back as errors carrying the
// offending line, never as a panic (pinned by FuzzReadCSV).
func ReadCSV(name string, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	schema, err := NewSchemaChecked(name, header...)
	if err != nil {
		return nil, fmt.Errorf("relation: CSV header line 1: %w", err)
	}
	r := New(schema)
	for row := 2; ; row++ { // row counts CSV records, header included
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV row: %w", err) // csv.ParseError carries the line
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: row %d has %d fields, header has %d", row, len(rec), len(header))
		}
		for i, v := range rec {
			if v == "null" {
				rec[i] = Null
			}
		}
		r.Append(rec...)
	}
	return r, nil
}

// ReadConfCSV reads per-cell confidences (same shape as the relation, with a
// header row) into r.
func ReadConfCSV(r *Relation, rd io.Reader) error {
	cr := csv.NewReader(rd)
	if _, err := cr.Read(); err != nil {
		return fmt.Errorf("relation: reading confidence header: %w", err)
	}
	for _, t := range r.Tuples {
		rec, err := cr.Read()
		if err != nil {
			return fmt.Errorf("relation: reading confidence row for tuple %d: %w", t.ID, err)
		}
		if len(rec) != r.Schema.Arity() {
			return fmt.Errorf("relation: confidence row has %d fields, want %d", len(rec), r.Schema.Arity())
		}
		for i, s := range rec {
			c, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("relation: bad confidence %q for tuple %d: %w", s, t.ID, err)
			}
			t.Conf[i] = c
		}
	}
	return nil
}
