// Package relation implements the relational data model used throughout
// UniClean: schemas, tuples with per-cell confidence values and fix marks,
// relations, active domains and CSV input/output.
//
// Values are strings, as in the paper's data model. A cell additionally
// carries a confidence in [0,1] (the cf rows of Fig. 1(b) in the paper) and a
// fix mark recording which cleaning phase, if any, last wrote it.
package relation

import "fmt"

// Null is the representation of SQL null. Pattern tuples never match Null,
// while equality comparisons against Null succeed under the simple SQL
// semantics adopted in Section 7 of the paper.
const Null = ""

// IsNull reports whether v is the null value.
func IsNull(v string) bool { return v == Null }

// Schema describes a relation: a name and an ordered list of attributes.
type Schema struct {
	Name  string
	Attrs []string
	index map[string]int
}

// NewSchema creates a schema with the given relation name and attributes.
// Attribute names must be unique; NewSchema panics otherwise and is therefore
// only for schemas that are static program data. Anything derived from user
// input — a CSV header, a config file — must go through NewSchemaChecked.
func NewSchema(name string, attrs ...string) *Schema {
	s, err := NewSchemaChecked(name, attrs...)
	if err != nil {
		panic(err.Error()) //det:ok panicfree static-schema constructor; input-derived schemas use NewSchemaChecked
	}
	return s
}

// NewSchemaChecked creates a schema from possibly untrusted attribute names,
// returning an error (instead of panicking) on the malformed-input paths a
// CSV header reaches: two columns with the same name, or a column with no
// name at all (rules and reports address attributes by name, and a nameless
// column cannot round-trip through CSV output).
func NewSchemaChecked(name string, attrs ...string) (*Schema, error) {
	s := &Schema{Name: name, Attrs: attrs, index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation: empty attribute name in schema %s (column %d)", name, i+1)
		}
		if j, dup := s.index[a]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q in schema %s (columns %d and %d)", a, name, j+1, i+1)
		}
		s.index[a] = i
	}
	return s, nil
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.Attrs) }

// Index returns the position of attr, or -1 if the schema has no such
// attribute.
func (s *Schema) Index(attr string) int {
	if i, ok := s.index[attr]; ok {
		return i
	}
	return -1
}

// MustIndex is like Index but panics on unknown attributes. It is intended
// for statically known rule definitions.
func (s *Schema) MustIndex(attr string) int {
	i := s.Index(attr)
	if i < 0 {
		panic(fmt.Sprintf("relation: schema %s has no attribute %q", s.Name, attr)) //det:ok panicfree invariant: rule definitions are static program data, validated at parse time
	}
	return i
}

// MustIndexAll maps a list of attribute names to positions, panicking on any
// unknown name.
func (s *Schema) MustIndexAll(attrs ...string) []int {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		out[i] = s.MustIndex(a)
	}
	return out
}

// String returns the schema in R(A1,...,An) form.
func (s *Schema) String() string {
	out := s.Name + "("
	for i, a := range s.Attrs {
		if i > 0 {
			out += ", "
		}
		out += a
	}
	return out + ")"
}
