package relation

import (
	"fmt"
	"strings"
)

// FixMark records which cleaning phase last wrote a cell. The three non-zero
// marks correspond to the tri-level accuracy classification of Section 3.2.
type FixMark uint8

const (
	// FixNone marks a cell never touched by the cleaning process.
	FixNone FixMark = iota
	// FixDeterministic marks a confidence-based fix found by cRepair.
	FixDeterministic
	// FixReliable marks an entropy-based fix found by eRepair.
	FixReliable
	// FixPossible marks a heuristic fix found by hRepair.
	FixPossible
)

// String returns a short human-readable name for the mark.
func (m FixMark) String() string {
	switch m {
	case FixNone:
		return "none"
	case FixDeterministic:
		return "deterministic"
	case FixReliable:
		return "reliable"
	case FixPossible:
		return "possible"
	default:
		return fmt.Sprintf("FixMark(%d)", uint8(m))
	}
}

// Tuple is a row of a relation. Values, Conf and Marks are parallel slices
// indexed by attribute position. ID identifies the tuple within its relation
// and is stable across cloning, so that repairs can be compared cell-by-cell
// with the original data.
type Tuple struct {
	ID     int
	Values []string
	Conf   []float64
	Marks  []FixMark
}

// NewTuple creates a tuple with the given values, zero confidences and no
// fix marks.
func NewTuple(id int, values []string) *Tuple {
	return &Tuple{
		ID:     id,
		Values: append([]string(nil), values...),
		Conf:   make([]float64, len(values)),
		Marks:  make([]FixMark, len(values)),
	}
}

// Clone returns a deep copy of t.
func (t *Tuple) Clone() *Tuple {
	return &Tuple{
		ID:     t.ID,
		Values: append([]string(nil), t.Values...),
		Conf:   append([]float64(nil), t.Conf...),
		Marks:  append([]FixMark(nil), t.Marks...),
	}
}

// Project returns the values of t at the given attribute positions.
func (t *Tuple) Project(attrs []int) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = t.Values[a]
	}
	return out
}

// Key returns a canonical string key for the projection of t on attrs,
// suitable for map indexing. The encoding is injective: fields are joined by
// an ASCII unit separator, and occurrences of the separator or the escape
// byte inside values are escaped.
func (t *Tuple) Key(attrs []int) string {
	return string(AppendKey(nil, t, attrs))
}

// AppendKey appends the canonical projection key of t on attrs (the same
// encoding as Key) to dst and returns the extended slice. Hot paths — the
// scheduler's group-key interner, the MD equality-blocking lookup — build
// keys into a reusable buffer and probe maps with string(buf), so a key
// lookup allocates nothing.
func AppendKey(dst []byte, t *Tuple, attrs []int) []byte {
	for i, a := range attrs {
		if i > 0 {
			dst = append(dst, 0x1f) // ASCII unit separator
		}
		v := t.Values[a]
		if strings.IndexByte(v, 0x1f) >= 0 || strings.IndexByte(v, 0x1e) >= 0 {
			v = strings.ReplaceAll(v, "\x1e", "\x1e\x02")
			v = strings.ReplaceAll(v, "\x1f", "\x1e\x01")
		}
		dst = append(dst, v...)
	}
	return dst
}

// Set assigns value v to attribute a with confidence cf and mark m.
func (t *Tuple) Set(a int, v string, cf float64, m FixMark) {
	t.Values[a] = v
	t.Conf[a] = cf
	t.Marks[a] = m
}

// String formats the tuple as (v1, v2, ...).
func (t *Tuple) String() string {
	return "(" + strings.Join(t.Values, ", ") + ")"
}
