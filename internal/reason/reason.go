// Package reason implements the static analyses of Section 4.1 of the
// paper: the consistency and implication problems for CFDs and MDs taken
// together. Both are intractable (NP-complete and coNP-complete), so the
// checkers here are exact exponential-time procedures based on the
// small-model properties established in the proofs of Theorems 4.1 and 4.2:
//
//   - Σ ∪ Γ is consistent iff some single-tuple instance over the active
//     domains satisfies it;
//   - Σ ∪ Γ does not imply a CFD ξ iff some two-tuple instance over the
//     active domains satisfies Σ ∪ Γ and violates ξ (single-tuple for MDs).
//
// They are intended for rule validation at design time, where rule sets and
// active domains are small.
package reason

import (
	"repro/internal/cfd"
	"repro/internal/md"
	"repro/internal/relation"
)

// Problem bundles the input common to all analyses: the data schema, a set
// of CFDs on it, a set of normalized positive MDs, and the master relation.
type Problem struct {
	Schema *relation.Schema
	Sigma  []*cfd.CFD
	Gamma  []*md.MD
	Master *relation.Relation
}

// activeDomains returns, per data attribute, the candidate values from the
// small-model construction: constants appearing in Σ (and optionally extra
// CFDs/MDs) for that attribute, constants of master attributes related to it
// by an MD clause or conclusion, plus fresh values not occurring anywhere.
// A k-tuple model needs k fresh values per attribute so that tuples can
// disagree on attributes no rule constrains.
func (p Problem) activeDomains(extraCFDs []*cfd.CFD, extraMDs []*md.MD, fresh int) [][]string {
	n := p.Schema.Arity()
	sets := make([]map[string]struct{}, n)
	for i := range sets {
		sets[i] = make(map[string]struct{})
	}
	addCFD := func(c *cfd.CFD) {
		for i, a := range c.LHS {
			if v := c.LHSPattern[i]; v != cfd.Wildcard {
				sets[a][v] = struct{}{}
			}
		}
		if c.RHSPattern != cfd.Wildcard {
			sets[c.RHS][c.RHSPattern] = struct{}{}
		}
	}
	addMD := func(m *md.MD) {
		if p.Master == nil {
			return
		}
		for _, cl := range m.LHS {
			for _, s := range p.Master.Tuples {
				sets[cl.DataAttr][s.Values[cl.MasterAttr]] = struct{}{}
			}
		}
		for _, pr := range m.RHS {
			for _, s := range p.Master.Tuples {
				sets[pr.DataAttr][s.Values[pr.MasterAttr]] = struct{}{}
			}
		}
	}
	for _, c := range p.Sigma {
		addCFD(c)
	}
	for _, c := range extraCFDs {
		addCFD(c)
	}
	for _, m := range p.Gamma {
		addMD(m)
	}
	for _, m := range extraMDs {
		addMD(m)
	}
	out := make([][]string, n)
	for i, set := range sets {
		vals := make([]string, 0, len(set)+fresh)
		for v := range set {
			vals = append(vals, v)
		}
		f := "\x00fresh"
		for j := 0; j < fresh; j++ {
			for {
				if _, taken := set[f]; !taken {
					break
				}
				f += "'"
			}
			vals = append(vals, f)
			f += "'"
		}
		out[i] = vals
	}
	return out
}

// satisfied reports whether the instance d satisfies Σ ∪ Γ (with respect to
// the master relation).
func (p Problem) satisfied(d *relation.Relation) bool {
	if !cfd.SatisfiesAll(d, p.Sigma) {
		return false
	}
	if p.Master == nil {
		// MDs are vacuous without master data: no (t, s) pair exists, so
		// every MD premise is unsatisfiable and Γ holds trivially.
		return true
	}
	return md.SatisfiesAll(d, p.Master, p.Gamma)
}

// forEachInstance enumerates all instances of k tuples over the active
// domains doms and invokes fn; enumeration stops when fn returns true, and
// the found instance is returned.
func forEachInstance(schema *relation.Schema, doms [][]string, k int, fn func(*relation.Relation) bool) (*relation.Relation, bool) {
	n := schema.Arity()
	vals := make([][]string, k)
	for i := range vals {
		vals[i] = make([]string, n)
	}
	var rec func(tuple, attr int) (*relation.Relation, bool)
	rec = func(tuple, attr int) (*relation.Relation, bool) {
		if tuple == k {
			d := relation.New(schema)
			for _, v := range vals {
				d.Append(v...)
			}
			if fn(d) {
				return d, true
			}
			return nil, false
		}
		if attr == n {
			return rec(tuple+1, 0)
		}
		for _, v := range doms[attr] {
			vals[tuple][attr] = v
			if d, ok := rec(tuple, attr+1); ok {
				return d, true
			}
		}
		return nil, false
	}
	return rec(0, 0)
}

// Consistent reports whether Σ ∪ Γ is consistent: whether some nonempty
// instance satisfies all CFDs and MDs. By the small-model property of
// Theorem 4.1 it suffices to search single-tuple instances over the active
// domains. The witness instance is returned when consistent.
func Consistent(p Problem) (*relation.Relation, bool) {
	doms := p.activeDomains(nil, nil, 1)
	return forEachInstance(p.Schema, doms, 1, p.satisfied)
}

// ImpliesCFD reports whether Σ ∪ Γ implies the CFD ξ. By Theorem 4.2 it
// suffices to search two-tuple counterexamples over the active domains: an
// instance satisfying Σ ∪ Γ but violating ξ. The counterexample is returned
// when implication fails.
func ImpliesCFD(p Problem, xi *cfd.CFD) (counterexample *relation.Relation, implies bool) {
	k := 2
	if xi.IsConstant() {
		k = 1 // a constant CFD is violated by a single tuple
	}
	doms := p.activeDomains([]*cfd.CFD{xi}, nil, k)
	d, found := forEachInstance(p.Schema, doms, k, func(d *relation.Relation) bool {
		return p.satisfied(d) && !cfd.Satisfies(d, xi)
	})
	return d, !found
}

// ImpliesMD reports whether Σ ∪ Γ implies the MD ξ. A single-tuple
// counterexample suffices (proof of Theorem 4.2).
func ImpliesMD(p Problem, xi *md.MD) (counterexample *relation.Relation, implies bool) {
	if p.Master == nil {
		return nil, true // vacuous without master data
	}
	doms := p.activeDomains(nil, []*md.MD{xi}, 1)
	d, found := forEachInstance(p.Schema, doms, 1, func(d *relation.Relation) bool {
		return p.satisfied(d) && !md.Satisfies(d, p.Master, xi)
	})
	return d, !found
}
