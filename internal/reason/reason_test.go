package reason

import (
	"testing"

	"repro/internal/cfd"
	"repro/internal/md"
	"repro/internal/relation"
)

func TestConsistentSimple(t *testing.T) {
	s := relation.NewSchema("r", "A", "B")
	p := Problem{
		Schema: s,
		Sigma:  []*cfd.CFD{cfd.New("c1", s, []string{"A"}, []string{"1"}, "B", "x")},
	}
	w, ok := Consistent(p)
	if !ok {
		t.Fatal("single constant CFD must be consistent")
	}
	if !cfd.SatisfiesAll(w, p.Sigma) {
		t.Error("witness does not satisfy Sigma")
	}
}

func TestInconsistentCFDs(t *testing.T) {
	// Classic inconsistent pair on a schema with a single attribute that
	// both rules force: (A=a -> A=b) with finite-domain style clash:
	// c1: [A=_] -> [B=x], c2: [A=_] -> [B=y] is NOT inconsistent for a
	// wildcard LHS... the canonical inconsistency uses the same constant
	// LHS with different RHS constants on overlapping premises:
	s := relation.NewSchema("r", "A", "B")
	p := Problem{
		Schema: s,
		Sigma: []*cfd.CFD{
			cfd.New("c1", s, []string{"A"}, []string{cfd.Wildcard}, "B", "x"),
			cfd.New("c2", s, []string{"A"}, []string{cfd.Wildcard}, "B", "y"),
		},
	}
	if _, ok := Consistent(p); ok {
		t.Error("B forced to both x and y for every tuple: inconsistent")
	}
}

func TestInconsistentSelfRule(t *testing.T) {
	// (A=a -> A=b): any tuple with A=a must have A=b, impossible; but a
	// tuple with A!=a is fine, so the set IS consistent. In contrast,
	// pairing it with (A=_ -> A=a) forces A=a, a contradiction.
	s := relation.NewSchema("r", "A")
	norm := cfd.New("n", s, []string{"A"}, []string{"a"}, "A", "b")
	if _, ok := Consistent(Problem{Schema: s, Sigma: []*cfd.CFD{norm}}); !ok {
		t.Error("single normalization rule must be consistent")
	}
	force := cfd.New("f", s, []string{"A"}, []string{cfd.Wildcard}, "A", "a")
	if _, ok := Consistent(Problem{Schema: s, Sigma: []*cfd.CFD{norm, force}}); ok {
		t.Error("A forced to a and then to b: inconsistent")
	}
}

func TestMDsAloneAlwaysConsistent(t *testing.T) {
	// Section 4.1: any set of MDs is consistent.
	ds := relation.NewSchema("r", "A", "B")
	ms := relation.NewSchema("m", "A", "B")
	dm := relation.New(ms)
	dm.Append("a", "b")
	p := Problem{
		Schema: ds,
		Gamma: []*md.MD{md.New("m1", ds, ms,
			[]md.ClauseSpec{md.Eq("A", "A")},
			[]md.PairSpec{{Data: "B", Master: "B"}})},
		Master: dm,
	}
	if _, ok := Consistent(p); !ok {
		t.Error("MDs alone must always be consistent")
	}
}

func TestConsistencyInteractionCFDsAndMDs(t *testing.T) {
	// The MD forces t[B] = s[B] = "b" whenever t[A] = "a"; the CFD forces
	// t[B] = "c" whenever t[A] = "a". A tuple with A != a escapes both,
	// so the set is consistent — but combined with (A=_ -> A=a) it is not.
	ds := relation.NewSchema("r", "A", "B")
	ms := relation.NewSchema("m", "A", "B")
	dm := relation.New(ms)
	dm.Append("a", "b")
	gamma := []*md.MD{md.New("m1", ds, ms,
		[]md.ClauseSpec{md.Eq("A", "A")},
		[]md.PairSpec{{Data: "B", Master: "B"}})}
	sigma := []*cfd.CFD{cfd.New("c1", ds, []string{"A"}, []string{"a"}, "B", "c")}
	if _, ok := Consistent(Problem{Schema: ds, Sigma: sigma, Gamma: gamma, Master: dm}); !ok {
		t.Error("escapable clash must be consistent")
	}
	force := cfd.New("f", ds, []string{"A"}, []string{cfd.Wildcard}, "A", "a")
	p := Problem{Schema: ds, Sigma: append(sigma, force), Gamma: gamma, Master: dm}
	if _, ok := Consistent(p); ok {
		t.Error("MD and CFD clash on forced premise: inconsistent")
	}
}

func TestImpliesCFDTransitivity(t *testing.T) {
	// A -> B and B -> C imply A -> C.
	s := relation.NewSchema("r", "A", "B", "C")
	p := Problem{Schema: s, Sigma: []*cfd.CFD{
		cfd.FD("ab", s, []string{"A"}, "B"),
		cfd.FD("bc", s, []string{"B"}, "C"),
	}}
	if _, ok := ImpliesCFD(p, cfd.FD("ac", s, []string{"A"}, "C")); !ok {
		t.Error("A->B, B->C must imply A->C")
	}
	// But they do not imply C -> A.
	if cx, ok := ImpliesCFD(p, cfd.FD("ca", s, []string{"C"}, "A")); ok {
		t.Error("C->A must not be implied")
	} else if cx == nil || !cfd.SatisfiesAll(cx, p.Sigma) {
		t.Error("counterexample must satisfy Sigma")
	}
}

func TestImpliesConstantCFD(t *testing.T) {
	// (A=1 -> B=x) and (B=x -> C=y) imply (A=1 -> C=y).
	s := relation.NewSchema("r", "A", "B", "C")
	p := Problem{Schema: s, Sigma: []*cfd.CFD{
		cfd.New("c1", s, []string{"A"}, []string{"1"}, "B", "x"),
		cfd.New("c2", s, []string{"B"}, []string{"x"}, "C", "y"),
	}}
	if _, ok := ImpliesCFD(p, cfd.New("q", s, []string{"A"}, []string{"1"}, "C", "y")); !ok {
		t.Error("constant chain must be implied")
	}
	if _, ok := ImpliesCFD(p, cfd.New("q2", s, []string{"A"}, []string{"2"}, "C", "y")); ok {
		t.Error("different premise constant must not be implied")
	}
}

func TestImpliesMD(t *testing.T) {
	ds := relation.NewSchema("r", "A", "B", "C")
	ms := relation.NewSchema("m", "A", "B", "C")
	dm := relation.New(ms)
	dm.Append("a", "b", "c")
	// Gamma: A=A -> B<=>B. Sigma: B=b -> C=c.
	// Query MD A=A -> C<=>C: if t[A]=a then t[B]=b (MD), then t[C]=c
	// (CFD), and the master C is c, so the query MD is implied.
	p := Problem{
		Schema: ds,
		Sigma:  []*cfd.CFD{cfd.New("bc", ds, []string{"B"}, []string{"b"}, "C", "c")},
		Gamma: []*md.MD{md.New("ab", ds, ms,
			[]md.ClauseSpec{md.Eq("A", "A")},
			[]md.PairSpec{{Data: "B", Master: "B"}})},
		Master: dm,
	}
	q := md.New("ac", ds, ms,
		[]md.ClauseSpec{md.Eq("A", "A")},
		[]md.PairSpec{{Data: "C", Master: "C"}})
	if cx, ok := ImpliesMD(p, q); !ok {
		t.Errorf("MD must be implied; counterexample %v", cx.Tuples[0])
	}
	// Without the CFD the implication fails.
	p2 := Problem{Schema: ds, Gamma: p.Gamma, Master: dm}
	if _, ok := ImpliesMD(p2, q); ok {
		t.Error("MD must not be implied without the CFD")
	}
}

func TestImpliesMDNoMaster(t *testing.T) {
	ds := relation.NewSchema("r", "A")
	ms := relation.NewSchema("m", "A")
	q := md.New("q", ds, ms, []md.ClauseSpec{md.Eq("A", "A")}, []md.PairSpec{{Data: "A", Master: "A"}})
	if _, ok := ImpliesMD(Problem{Schema: ds}, q); !ok {
		t.Error("MD implication is vacuous without master data")
	}
}

func TestEmptyRuleSetConsistent(t *testing.T) {
	s := relation.NewSchema("r", "A")
	if _, ok := Consistent(Problem{Schema: s}); !ok {
		t.Error("empty rule set must be consistent")
	}
}
