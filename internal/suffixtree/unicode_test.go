package suffixtree

import (
	"reflect"
	"testing"

	"repro/internal/similarity"
)

// TestTreeUnicodeAndEmpty pins the byte-level behavior of the generalized
// suffix tree on multi-byte and empty-string inputs: indexing, substring
// containment and TopL's LCS ranking all operate on bytes, so greek letters
// sharing the UTF-8 lead byte 0xCE produce non-zero common substrings.
func TestTreeUnicodeAndEmpty(t *testing.T) {
	tr := New()
	ids := map[string]int{}
	for _, s := range []string{"αβγ", "βγδ", "abc", ""} {
		ids[s] = tr.Add(s)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}

	containsTests := []struct {
		sub  string
		want bool
	}{
		{"", true}, // tree is non-empty
		{"β", true},
		{"γδ", true},
		{"αβγ", true},
		{"abc", true},
		{"x", false},
		{"δα", false},
		{"\xce", true}, // a bare UTF-8 lead byte is a substring of every greek word
	}
	for _, tc := range containsTests {
		if got := tr.Contains(tc.sub); got != tc.want {
			t.Errorf("Contains(%q) = %v, want %v", tc.sub, got, tc.want)
		}
	}

	stringsTests := []struct {
		sub  string
		want []int
	}{
		{"γ", []int{ids["αβγ"], ids["βγδ"]}},
		{"δ", []int{ids["βγδ"]}},
		{"b", []int{ids["abc"]}},
		{"", []int{0, 1, 2, 3}}, // every id, including the empty string's
		{"zz", nil},
	}
	for _, tc := range stringsTests {
		if got := tr.StringsContaining(tc.sub); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("StringsContaining(%q) = %v, want %v", tc.sub, got, tc.want)
		}
	}

	topLTests := []struct {
		name   string
		query  string
		l      int
		minLen int
		want   []Match
	}{
		{"full multibyte query", "αβ", 8, 1, []Match{
			{ID: ids["αβγ"], LCS: 4}, // the whole query
			{ID: ids["βγδ"], LCS: 2}, // the bytes of β
		}},
		{"minLen prunes short overlaps", "αβ", 8, 3, []Match{
			{ID: ids["αβγ"], LCS: 4},
		}},
		{"l truncates the ranking", "αβ", 1, 1, []Match{
			{ID: ids["αβγ"], LCS: 4},
		}},
		{"ascii query misses greek", "bc", 8, 1, []Match{
			{ID: ids["abc"], LCS: 2},
		}},
		{"empty query", "", 8, 1, nil},
		{"zero l", "αβ", 0, 1, nil},
	}
	for _, tc := range topLTests {
		if got := tr.TopL(tc.query, tc.l, tc.minLen); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: TopL(%q, %d, %d) = %v, want %v", tc.name, tc.query, tc.l, tc.minLen, got, tc.want)
		}
	}

	// An empty indexed string never appears as a candidate.
	for _, q := range []string{"αβγ", "abc", "z"} {
		for _, m := range tr.TopL(q, 8, 1) {
			if m.ID == ids[""] {
				t.Errorf("TopL(%q) returned the empty indexed string", q)
			}
		}
	}
}

// TestTopLMatchesLCSubstringOnUnicode cross-checks TopL's reported lengths
// against the reference LCS implementation over unicode-heavy strings.
func TestTopLMatchesLCSubstringOnUnicode(t *testing.T) {
	indexed := []string{"naïve", "naive", "café", "caffè", "日本語", "語日本", "😀😁"}
	tr := New()
	for _, s := range indexed {
		tr.Add(s)
	}
	queries := []string{"naïve", "café", "日本", "😀", "ïv", ""}
	for _, q := range queries {
		got := make(map[int]int)
		for _, m := range tr.TopL(q, len(indexed), 1) {
			got[m.ID] = m.LCS
		}
		for id, s := range indexed {
			want := similarity.LCSubstring(q, s)
			if got[id] != want {
				t.Errorf("TopL(%q): string %q has LCS %d, want %d", q, s, got[id], want)
			}
		}
	}
}
