package suffixtree

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/similarity"
)

func TestContains(t *testing.T) {
	tr := New()
	tr.Add("banana")
	tr.Add("bandana")
	for _, sub := range []string{"banana", "anana", "nan", "a", "bandana", "ndan", ""} {
		if !tr.Contains(sub) {
			t.Errorf("Contains(%q) = false", sub)
		}
	}
	for _, sub := range []string{"bananas", "xyz", "bb", "aaa"} {
		if tr.Contains(sub) {
			t.Errorf("Contains(%q) = true", sub)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Contains("") {
		t.Error("empty tree contains empty string")
	}
	if got := tr.StringsContaining("x"); got != nil {
		t.Errorf("StringsContaining = %v", got)
	}
	if got := tr.TopL("abc", 3, 1); got != nil {
		t.Errorf("TopL = %v", got)
	}
}

func TestStringsContaining(t *testing.T) {
	tr := New()
	tr.Add("banana")  // 0
	tr.Add("bandana") // 1
	tr.Add("cabana")  // 2
	cases := []struct {
		sub  string
		want []int
	}{
		{"ana", []int{0, 1, 2}},
		{"band", []int{1}},
		{"nan", []int{0}},
		{"cab", []int{2}},
		{"zzz", nil},
		{"", []int{0, 1, 2}},
	}
	for _, c := range cases {
		got := tr.StringsContaining(c.sub)
		if !equalInts(got, c.want) {
			t.Errorf("StringsContaining(%q) = %v, want %v", c.sub, got, c.want)
		}
	}
}

func TestStringAccessor(t *testing.T) {
	tr := New()
	id := tr.Add("hello")
	if tr.String(id) != "hello" || tr.Len() != 1 {
		t.Error("String/Len broken")
	}
}

func TestTopLRanksAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alpha := "abcd"
	randStr := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		return b.String()
	}
	for trial := 0; trial < 30; trial++ {
		tr := New()
		n := 5 + rng.Intn(15)
		seen := make(map[string]bool)
		for i := 0; i < n; i++ {
			s := randStr(3 + rng.Intn(10))
			if seen[s] {
				continue
			}
			seen[s] = true
			tr.Add(s)
		}
		v := randStr(3 + rng.Intn(10))
		got := tr.TopL(v, tr.Len(), 1)
		// Brute force: exact LCS per string.
		for _, m := range got {
			want := similarity.LCSubstring(v, tr.String(m.ID))
			if m.LCS != want {
				t.Fatalf("TopL LCS for %q vs %q = %d, want %d", v, tr.String(m.ID), m.LCS, want)
			}
		}
		// Every string with LCS >= 1 must be reported.
		for id := 0; id < tr.Len(); id++ {
			want := similarity.LCSubstring(v, tr.String(id))
			found := false
			for _, m := range got {
				if m.ID == id {
					found = true
					break
				}
			}
			if want >= 1 && !found {
				t.Fatalf("string %q with LCS %d missing from TopL(%q)", tr.String(id), want, v)
			}
		}
		// Ranking must be by LCS descending.
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].LCS != got[j].LCS {
				return got[i].LCS > got[j].LCS
			}
			return got[i].ID < got[j].ID
		}) {
			t.Fatal("TopL not sorted")
		}
	}
}

func TestTopLMinLenFilters(t *testing.T) {
	tr := New()
	tr.Add("abcdef") // LCS with query = 6
	tr.Add("xbzqzz") // LCS with query = 1 ("b")
	got := tr.TopL("abcdef", 10, 3)
	if len(got) != 1 || got[0].ID != 0 || got[0].LCS != 6 {
		t.Errorf("TopL = %v", got)
	}
}

func TestTopLLimit(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Add("common" + strings.Repeat("x", i+1))
	}
	got := tr.TopL("common", 3, 2)
	if len(got) != 3 {
		t.Errorf("TopL limit = %d results", len(got))
	}
	if got := tr.TopL("common", 0, 2); got != nil {
		t.Errorf("TopL(l=0) = %v", got)
	}
}

func TestTopLBlockingFindsEditNeighbors(t *testing.T) {
	// Strings within edit distance K of the query must appear among the
	// candidates when minLen is set from the blocking bound.
	tr := New()
	master := []string{"3256778", "3887644", "9284773", "EH8 9LE", "WC1H 9SE"}
	for _, s := range master {
		tr.Add(s)
	}
	query := "3887834" // edit distance 2 from 3887644
	k := 2
	minLen := len(query) / (k + 1)
	got := tr.TopL(query, 3, minLen)
	found := false
	for _, m := range got {
		if tr.String(m.ID) == "3887644" {
			found = true
		}
	}
	if !found {
		t.Errorf("edit-neighbor not in candidates: %v", got)
	}
}

func TestRepeatedCharacters(t *testing.T) {
	tr := New()
	tr.Add("aaaa")
	tr.Add("aa")
	if !tr.Contains("aaa") || tr.Contains("aaaaa") {
		t.Error("repeated-char containment wrong")
	}
	ids := tr.StringsContaining("aa")
	if !equalInts(ids, []int{0, 1}) {
		t.Errorf("StringsContaining(aa) = %v", ids)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStringsWithCommonSubstringAgainstBruteForce pins the exact enumeration
// the Checker's blocked certification relies on: for random trees and
// queries, the result must be precisely the ids whose string shares a
// substring of length >= minLen with the query — no ranking, no truncation —
// in ascending id order.
func TestStringsWithCommonSubstringAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	alpha := "abc"
	randStr := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		return b.String()
	}
	for trial := 0; trial < 50; trial++ {
		tr := New()
		seen := make(map[string]bool)
		for i, n := 0, 4+rng.Intn(12); i < n; i++ {
			s := randStr(2 + rng.Intn(9))
			if seen[s] {
				continue
			}
			seen[s] = true
			tr.Add(s)
		}
		v := randStr(2 + rng.Intn(9))
		for minLen := 1; minLen <= 4; minLen++ {
			got := tr.StringsWithCommonSubstring(v, minLen)
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("ids not ascending: %v", got)
			}
			gotSet := make(map[int32]bool, len(got))
			for _, id := range got {
				gotSet[id] = true
			}
			for id := 0; id < tr.Len(); id++ {
				want := similarity.LCSubstring(v, tr.String(id)) >= minLen
				if want != gotSet[int32(id)] {
					t.Fatalf("query %q minLen %d: string %q (id %d) in result = %v, want %v",
						v, minLen, tr.String(id), id, gotSet[int32(id)], want)
				}
			}
		}
	}
}

// TestStringsWithCommonSubstringRejectsVacuousBound: a minLen below 1 would
// silently drop strings within edit distance of the query that share no
// substring at all — the enumeration must refuse instead of being wrong.
func TestStringsWithCommonSubstringRejectsVacuousBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("minLen 0 did not panic")
		}
	}()
	tr := New()
	tr.Add("abc")
	tr.StringsWithCommonSubstring("ab", 0)
}
