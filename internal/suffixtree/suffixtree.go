// Package suffixtree implements the generalized suffix tree used for
// longest-common-substring (LCS) blocking in Section 5.2 of the paper.
//
// The tree indexes the distinct strings of a master-data attribute's active
// domain. Each node corresponds to a common substring and maintains the set
// of indexed strings containing it, exactly as described in the paper. A
// lookup for a query string v extracts the subtree related to v (at most
// |v|^2 node visits) and returns the top-l indexed strings ranked by the
// length of their longest common substring with v, reducing the MD-matching
// search space from |Dm| to a constant l.
package suffixtree

import "sort"

// Tree is a generalized suffix tree over a set of strings.
type Tree struct {
	strings []string
	root    *node
}

type node struct {
	children map[byte]*edge
	// ids lists, in increasing order, the indexed strings whose suffixes
	// pass through this node, i.e. the strings containing the substring
	// this node spells.
	ids []int32
}

type edge struct {
	label string
	to    *node
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{children: make(map[byte]*edge)}}
}

// Len returns the number of indexed strings.
func (t *Tree) Len() int { return len(t.strings) }

// String returns the indexed string with the given id.
func (t *Tree) String(id int) string { return t.strings[id] }

// Add indexes s and returns its id. Duplicate strings receive distinct ids;
// callers indexing an active domain should deduplicate first.
func (t *Tree) Add(s string) int {
	id := int32(len(t.strings))
	t.strings = append(t.strings, s)
	for j := 0; j < len(s); j++ {
		t.insertSuffix(s[j:], id)
	}
	return int(id)
}

func (n *node) addID(id int32) {
	if k := len(n.ids); k > 0 && n.ids[k-1] == id {
		return
	}
	n.ids = append(n.ids, id)
}

func (t *Tree) insertSuffix(suf string, id int32) {
	cur := t.root
	i := 0
	for i < len(suf) {
		e, ok := cur.children[suf[i]]
		if !ok {
			leaf := &node{children: make(map[byte]*edge), ids: []int32{id}}
			cur.children[suf[i]] = &edge{label: suf[i:], to: leaf}
			return
		}
		j := 0
		for j < len(e.label) && i+j < len(suf) && e.label[j] == suf[i+j] {
			j++
		}
		if j == len(e.label) {
			cur = e.to
			cur.addID(id)
			i += j
			continue
		}
		// Split the edge at offset j. The new middle node inherits the
		// id set of the old subtree; since ids are inserted in
		// increasing order, appending id keeps the set sorted.
		mid := &node{
			children: map[byte]*edge{e.label[j]: {label: e.label[j:], to: e.to}},
			ids:      append([]int32(nil), e.to.ids...),
		}
		e.label = e.label[:j]
		e.to = mid
		mid.addID(id)
		if i+j == len(suf) {
			return
		}
		leaf := &node{children: make(map[byte]*edge), ids: []int32{id}}
		mid.children[suf[i+j]] = &edge{label: suf[i+j:], to: leaf}
		return
	}
}

// locate walks sub from the root and returns the deepest reached edge target
// whose path spells a prefix extending sub, or nil when sub is not a
// substring of any indexed string.
func (t *Tree) locate(sub string) *node {
	cur := t.root
	i := 0
	for i < len(sub) {
		e, ok := cur.children[sub[i]]
		if !ok {
			return nil
		}
		j := 0
		for j < len(e.label) && i+j < len(sub) {
			if e.label[j] != sub[i+j] {
				return nil
			}
			j++
		}
		i += j
		cur = e.to
	}
	return cur
}

// Contains reports whether sub is a substring of some indexed string.
func (t *Tree) Contains(sub string) bool {
	if sub == "" {
		return t.Len() > 0
	}
	return t.locate(sub) != nil
}

// StringsContaining returns the ids of all indexed strings that contain sub,
// in increasing order.
func (t *Tree) StringsContaining(sub string) []int {
	if sub == "" {
		out := make([]int, t.Len())
		for i := range out {
			out[i] = i
		}
		return out
	}
	n := t.locate(sub)
	if n == nil {
		return nil
	}
	out := make([]int, len(n.ids))
	for i, id := range n.ids {
		out[i] = int(id)
	}
	return out
}

// StringsWithCommonSubstring returns the ids of every indexed string sharing
// with v a common substring of length at least minLen, in ascending id order.
// Unlike TopL it neither ranks nor truncates: with minLen chosen as the LCS
// blocking bound max(1, |v|/(K+1)), the result is the *exact* superset of the
// indexed strings within edit distance K of v — every string closer than K
// shares an unedited piece of v at least that long — which is what lets the
// Checker certify an edit-clause MD from the tree instead of scanning the
// whole master relation. A minLen < 1 would make the bound vacuous (strings
// sharing no substring with v can still be within distance K); callers must
// handle that case themselves, so it panics here.
func (t *Tree) StringsWithCommonSubstring(v string, minLen int) []int32 {
	if minLen < 1 {
		panic("suffixtree: StringsWithCommonSubstring needs minLen >= 1")
	}
	if len(v) < minLen {
		return nil
	}
	best := make(map[int32]int)
	for i := 0; i+minLen <= len(v); i++ {
		t.walkFrom(v[i:], minLen, best)
	}
	if len(best) == 0 {
		return nil
	}
	out := make([]int32, 0, len(best))
	for id := range best {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Match is a blocking candidate: an indexed string and the length of its
// longest common substring with the query.
type Match struct {
	ID  int
	LCS int
}

// TopL returns up to l indexed strings ranked by LCS length with v
// (descending, ties broken by id), considering only common substrings of
// length at least minLen. minLen implements the blocking bound of Section
// 5.2: strings within edit distance K of v share a common substring of
// length at least max(|u|,|v|)/(K+1), so candidates below that bound can be
// skipped. A minLen < 1 is treated as 1.
func (t *Tree) TopL(v string, l, minLen int) []Match {
	if l <= 0 || len(v) == 0 {
		return nil
	}
	if minLen < 1 {
		minLen = 1
	}
	best := make(map[int32]int)
	for i := 0; i < len(v); i++ {
		t.walkFrom(v[i:], minLen, best)
	}
	if len(best) == 0 {
		return nil
	}
	out := make([]Match, 0, len(best))
	for id, lcs := range best {
		out = append(out, Match{ID: int(id), LCS: lcs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LCS != out[j].LCS {
			return out[i].LCS > out[j].LCS
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > l {
		out = out[:l]
	}
	return out
}

// walkFrom matches suf greedily from the root and records, for every string
// under each visited locus at depth >= minLen, the matched depth.
func (t *Tree) walkFrom(suf string, minLen int, best map[int32]int) {
	cur := t.root
	depth := 0
	for depth < len(suf) {
		e, ok := cur.children[suf[depth]]
		if !ok {
			return
		}
		j := 0
		for j < len(e.label) && depth+j < len(suf) && e.label[j] == suf[depth+j] {
			j++
		}
		depth += j
		if depth >= minLen {
			for _, id := range e.to.ids {
				if depth > best[id] {
					best[id] = depth
				}
			}
		}
		if j < len(e.label) {
			return // stopped mid-edge
		}
		cur = e.to
	}
}
