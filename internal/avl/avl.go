// Package avl implements the self-balancing AVL tree backing the "2-in-1"
// structure of Section 6.3 of the paper. Keys are (entropy, id) pairs:
// eRepair repeatedly needs the equivalence-class group with minimum entropy,
// and groups are removed or re-keyed as conflicts are resolved.
package avl

// Key orders tree entries by entropy, breaking ties by id so that distinct
// groups with equal entropy coexist.
type Key struct {
	Entropy float64
	ID      string
}

func (k Key) less(o Key) bool {
	if k.Entropy != o.Entropy {
		return k.Entropy < o.Entropy
	}
	return k.ID < o.ID
}

type node struct {
	key         Key
	left, right *node
	height      int
}

// Tree is an AVL tree of Keys. The zero value is an empty tree ready to use.
type Tree struct {
	root *node
	size int
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.size }

// Insert adds k to the tree. Inserting a key already present is a no-op.
func (t *Tree) Insert(k Key) {
	var added bool
	t.root, added = insert(t.root, k)
	if added {
		t.size++
	}
}

// Delete removes k, reporting whether it was present.
func (t *Tree) Delete(k Key) bool {
	var removed bool
	t.root, removed = remove(t.root, k)
	if removed {
		t.size--
	}
	return removed
}

// Contains reports whether k is in the tree.
func (t *Tree) Contains(k Key) bool {
	n := t.root
	for n != nil {
		switch {
		case k.less(n.key):
			n = n.left
		case n.key.less(k):
			n = n.right
		default:
			return true
		}
	}
	return false
}

// Min returns the smallest key, or ok=false when the tree is empty.
func (t *Tree) Min() (k Key, ok bool) {
	n := t.root
	if n == nil {
		return Key{}, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, true
}

// InOrder visits keys in ascending order until fn returns false.
func (t *Tree) InOrder(fn func(Key) bool) {
	inorder(t.root, fn)
}

func inorder(n *node, fn func(Key) bool) bool {
	if n == nil {
		return true
	}
	if !inorder(n.left, fn) {
		return false
	}
	if !fn(n.key) {
		return false
	}
	return inorder(n.right, fn)
}

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func update(n *node) *node {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
	return n
}

func balanceFactor(n *node) int { return height(n.left) - height(n.right) }

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = update(n)
	return update(l)
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = update(n)
	return update(r)
}

func rebalance(n *node) *node {
	update(n)
	switch bf := balanceFactor(n); {
	case bf > 1:
		if balanceFactor(n.left) < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if balanceFactor(n.right) > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func insert(n *node, k Key) (*node, bool) {
	if n == nil {
		return &node{key: k, height: 1}, true
	}
	var added bool
	switch {
	case k.less(n.key):
		n.left, added = insert(n.left, k)
	case n.key.less(k):
		n.right, added = insert(n.right, k)
	default:
		return n, false
	}
	return rebalance(n), added
}

func remove(n *node, k Key) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case k.less(n.key):
		n.left, removed = remove(n.left, k)
	case n.key.less(k):
		n.right, removed = remove(n.right, k)
	default:
		removed = true
		switch {
		case n.left == nil:
			return n.right, true
		case n.right == nil:
			return n.left, true
		default:
			succ := n.right
			for succ.left != nil {
				succ = succ.left
			}
			n.key = succ.key
			n.right, _ = remove(n.right, succ.key)
		}
	}
	return rebalance(n), removed
}
