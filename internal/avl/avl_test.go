package avl

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 {
		t.Error("empty Len != 0")
	}
	if _, ok := tr.Min(); ok {
		t.Error("empty Min ok")
	}
	if tr.Delete(Key{1, "x"}) {
		t.Error("Delete on empty returned true")
	}
	if tr.Contains(Key{1, "x"}) {
		t.Error("Contains on empty")
	}
}

func TestInsertDeleteMin(t *testing.T) {
	var tr Tree
	tr.Insert(Key{0.8, "a"})
	tr.Insert(Key{0.2, "b"})
	tr.Insert(Key{0.5, "c"})
	tr.Insert(Key{0.2, "a"}) // same entropy, different id
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if k, _ := tr.Min(); k != (Key{0.2, "a"}) {
		t.Errorf("Min = %v", k)
	}
	if !tr.Delete(Key{0.2, "a"}) {
		t.Error("Delete failed")
	}
	if k, _ := tr.Min(); k != (Key{0.2, "b"}) {
		t.Errorf("Min after delete = %v", k)
	}
	if tr.Delete(Key{0.2, "a"}) {
		t.Error("double Delete returned true")
	}
	tr.Insert(Key{0.5, "c"}) // duplicate insert is a no-op
	if tr.Len() != 3 {
		t.Errorf("Len after dup insert = %d", tr.Len())
	}
}

func TestInOrderSortedAndStoppable(t *testing.T) {
	var tr Tree
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		tr.Insert(Key{rng.Float64(), fmt.Sprintf("k%d", i)})
	}
	var got []Key
	tr.InOrder(func(k Key) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 200 {
		t.Fatalf("visited %d", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].less(got[j]) }) {
		t.Error("InOrder not sorted")
	}
	count := 0
	tr.InOrder(func(Key) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestBalancedHeight(t *testing.T) {
	var tr Tree
	// Sorted insertion order: a naive BST would degenerate to height n.
	for i := 0; i < 1024; i++ {
		tr.Insert(Key{float64(i), ""})
	}
	h := height(tr.root)
	if h > 15 { // 1.44*log2(1024) ~ 14.4
		t.Errorf("height = %d for 1024 sorted inserts", h)
	}
	if !checkAVL(tr.root) {
		t.Error("AVL invariant violated")
	}
}

func TestRandomOpsAgainstMap(t *testing.T) {
	var tr Tree
	ref := make(map[Key]bool)
	rng := rand.New(rand.NewSource(9))
	keys := make([]Key, 300)
	for i := range keys {
		keys[i] = Key{float64(rng.Intn(50)) / 10, fmt.Sprintf("id%d", rng.Intn(40))}
	}
	for step := 0; step < 5000; step++ {
		k := keys[rng.Intn(len(keys))]
		if rng.Intn(2) == 0 {
			tr.Insert(k)
			ref[k] = true
		} else {
			got := tr.Delete(k)
			want := ref[k]
			if got != want {
				t.Fatalf("step %d: Delete(%v) = %v, want %v", step, k, got, want)
			}
			delete(ref, k)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, tr.Len(), len(ref))
		}
		if !checkAVL(tr.root) {
			t.Fatalf("step %d: AVL invariant violated", step)
		}
	}
	for k := range ref {
		if !tr.Contains(k) {
			t.Errorf("missing key %v", k)
		}
	}
	// Min must match the reference minimum.
	if len(ref) > 0 {
		var want Key
		first := true
		for k := range ref {
			if first || k.less(want) {
				want, first = k, false
			}
		}
		if got, _ := tr.Min(); got != want {
			t.Errorf("Min = %v, want %v", got, want)
		}
	}
}

func TestInsertContainsProperty(t *testing.T) {
	f := func(es []float64, ids []string) bool {
		var tr Tree
		n := len(es)
		if len(ids) < n {
			n = len(ids)
		}
		for i := 0; i < n; i++ {
			tr.Insert(Key{es[i], ids[i]})
		}
		for i := 0; i < n; i++ {
			if !tr.Contains(Key{es[i], ids[i]}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func checkAVL(n *node) bool {
	if n == nil {
		return true
	}
	bf := balanceFactor(n)
	if bf < -1 || bf > 1 {
		return false
	}
	h := height(n.left)
	if hr := height(n.right); hr > h {
		h = hr
	}
	if n.height != h+1 {
		return false
	}
	if n.left != nil && !n.left.key.less(n.key) {
		return false
	}
	if n.right != nil && !n.key.less(n.right.key) {
		return false
	}
	return checkAVL(n.left) && checkAVL(n.right)
}
