package fault

import (
	"sync"
	"testing"
)

// TestAtDeterministic: the decision at a hook point depends only on (seed,
// site, kind, coordinates) — repeated calls and fresh injectors with the
// same seed agree exactly.
func TestAtDeterministic(t *testing.T) {
	decide := func(seed int64) []bool {
		in := New(seed, Rule{Site: SiteApply, Kind: Panic, Rate: 0.25})
		var out []bool
		for a := 0; a < 8; a++ {
			for b := 0; b < 64; b++ {
				fired := false
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(*Injected); !ok {
								panic(r)
							}
							fired = true
						}
					}()
					in.At(SiteApply, a, b)
				}()
				out = append(out, fired)
			}
		}
		return out
	}
	a, b := decide(7), decide(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical injectors", i)
		}
	}
	n := 0
	for _, f := range a {
		if f {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Fatalf("rate 0.25 fired %d/%d times; the hash draw is degenerate", n, len(a))
	}
	c := decide(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical decisions")
	}
}

// TestNilInjectorInert: production call sites hook through a nil receiver.
func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	in.At(SiteApply, 0, 0) // must not panic
}

// TestCancelFiresOnce: concurrent Cancel faults invoke the registered
// function exactly once.
func TestCancelFiresOnce(t *testing.T) {
	in := New(1, Rule{Site: SiteSched, Kind: Cancel, Rate: 1})
	var mu sync.Mutex
	calls := 0
	in.OnCancel(func() { mu.Lock(); calls++; mu.Unlock() })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) { //det:ok poolonly test exercises the injector's own once-only cancel under contention; no engine state involved
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.At(SiteSched, w, i)
			}
		}(w)
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("cancel fired %d times, want exactly 1", calls)
	}
	if in.Fired(Cancel) < 1 {
		t.Fatal("Fired(Cancel) did not count")
	}
}

// TestRateOneAlwaysFires pins the boundary: rate 1 fires at every visit,
// rate 0 never does.
func TestRateOneAlwaysFires(t *testing.T) {
	in := New(3, Rule{Site: SiteProbe, Kind: Delay, Rate: 1}, Rule{Site: SiteSeed, Kind: Delay, Rate: 0})
	in.delayDur = 0
	for i := 0; i < 10; i++ {
		in.At(SiteProbe, i, i)
		in.At(SiteSeed, i, i)
	}
	if got := in.Fired(Delay); got != 10 {
		t.Fatalf("Fired(Delay) = %d, want 10", got)
	}
}
