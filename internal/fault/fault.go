// Package fault is a seed-deterministic fault injector for the cleaning
// engine's robustness property suite. The engine's hot paths carry hook
// points (Injector.At) naming a site and the deterministic coordinates of
// the work being done — rule index, worklist position — and the injector
// decides, purely from (seed, site, kind, coordinates), whether to inject a
// panic, a scheduling delay, or a context cancellation at that point.
//
// Determinism is the whole design: the decision function is a pure hash of
// values that do not depend on goroutine scheduling, so the same seed and
// rates fire the same faults at the same logical points in every run — under
// any worker count, with or without -race — which is what lets the property
// suite compare a faulted run against the fault-free baseline byte for byte.
//
// A nil *Injector is inert: every hook site calls through a nil receiver in
// production, costing one predictable branch, so the hooks stay compiled in
// without measurable overhead (the bench gate pins this).
package fault

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one class of hook point in the engine.
type Site string

const (
	// SiteApply fires per applier work item: (rule index, worklist index).
	SiteApply Site = "apply"
	// SiteProbe fires per MD matcher probe: (rule index, tuple index).
	SiteProbe Site = "probe"
	// SiteSched fires in the pool's claim/steal scheduling loop:
	// (rule index, batch start index).
	SiteSched Site = "sched"
	// SiteSeed fires per eRepair seeding task: (task index, 0).
	SiteSeed Site = "seed"
	// SiteCertify fires per Checker certification task: (rule index, shard lo).
	SiteCertify Site = "certify"
)

// Kind is the effect an armed rule injects.
type Kind uint8

const (
	// Panic makes the hook panic with an *Injected value.
	Panic Kind = iota
	// Delay makes the hook sleep briefly, perturbing pool scheduling and
	// steal patterns without changing any decision.
	Delay
	// Cancel makes the hook invoke the cancel function registered with
	// OnCancel (typically the run context's CancelFunc), at most once.
	Cancel
	numKinds
)

// String names the kind for error messages and test output.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Cancel:
		return "cancel"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Rule arms one (site, kind) pair at the given rate in [0, 1]: the fraction
// of hook firings at that site that inject the effect. Rate 1 fires on every
// visit; small rates pick a deterministic pseudo-random subset.
type Rule struct {
	Site Site
	Kind Kind
	Rate float64
}

// Injected is the value carried by an injected panic, so containment code
// and tests can tell injected faults from genuine bugs.
type Injected struct {
	Site Site
	A, B int
}

// Error renders the injected fault; implementing error makes the value
// readable when it surfaces inside a WorkerError.
func (p *Injected) Error() string {
	return fmt.Sprintf("fault: injected panic at %s(%d,%d)", p.Site, p.A, p.B)
}

// Injector decides at every hook point whether to inject a fault. Safe for
// concurrent use: the decision path is pure, and the counters are atomic.
type Injector struct {
	seed  int64
	rules []Rule

	delayDur   time.Duration
	cancel     func()
	cancelOnce sync.Once

	fired [numKinds]atomic.Int64
}

// New builds an injector from a seed and the armed rules.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{seed: seed, rules: rules, delayDur: 100 * time.Microsecond}
}

// OnCancel registers the function Cancel faults invoke — typically the
// context.CancelFunc of the run under test. Only the first firing calls it.
func (in *Injector) OnCancel(fn func()) { in.cancel = fn }

// Fired returns how many faults of the kind have fired so far. Tests use it
// to assert a configuration actually exercised the path under test; it is
// not part of the deterministic contract (a canceled run stops early, so
// later hook points never fire).
func (in *Injector) Fired(k Kind) int64 { return in.fired[k].Load() }

// At is the hook point: deterministically decides from (seed, site, kind,
// a, b) whether each armed rule fires, and injects the effect. A nil
// injector is inert, so call sites need no guard.
func (in *Injector) At(site Site, a, b int) {
	if in == nil || len(in.rules) == 0 {
		return
	}
	for _, r := range in.rules {
		if r.Site != site || r.Rate <= 0 {
			continue
		}
		if !in.hit(site, r.Kind, a, b, r.Rate) {
			continue
		}
		in.fired[r.Kind].Add(1)
		switch r.Kind {
		case Delay:
			time.Sleep(in.delayDur)
		case Cancel:
			in.cancelOnce.Do(func() {
				if in.cancel != nil {
					in.cancel()
				}
			})
		case Panic:
			panic(&Injected{Site: site, A: a, B: b})
		}
	}
}

// hit maps (seed, site, kind, a, b) to a uniform draw in [0, 1) and compares
// it against rate. The mix is a 64-bit FNV-1a over the inputs followed by a
// splitmix64 finalizer — cheap, stateless, and well distributed enough that
// rates behave as fractions over the hook population.
func (in *Injector) hit(site Site, kind Kind, a, b int, rate float64) bool {
	if rate >= 1 {
		return true
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(in.seed))
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= prime64
	}
	mix(uint64(kind))
	mix(uint64(a))
	mix(uint64(b))
	// splitmix64 finalizer: FNV alone is weak in the high bits.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	u := float64(h>>11) / float64(1<<53)
	return u < rate
}
