package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestTreeIsClean runs the full suite over the repo from inside the test
// binary. This is the in-test form of the CI gate: the working tree must
// carry zero unsuppressed findings at all times.
func TestTreeIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", "../..", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("unilint exit %d on the repo tree, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestDirtyModule points the driver at a module seeded with exactly two
// violations: a bare `go` statement outside parallel.go, and a reasonless
// //det:ok suppression. The map range in the same file must NOT fire —
// dirtymod is outside maporder's package scope.
func TestDirtyModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", "testdata/dirtymod", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "poolonly: go statement outside parallel.go") {
		t.Errorf("missing the poolonly finding:\n%s", out)
	}
	if !strings.Contains(out, "detok: ") || !strings.Contains(out, "carries no reason") {
		t.Errorf("missing the reasonless-suppression finding:\n%s", out)
	}
	if strings.Contains(out, "maporder") {
		t.Errorf("maporder fired outside its package scope:\n%s", out)
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"maporder", "poolonly", "sinkwrite", "floateq", "ctxflow", "errcontract", "detokstale"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d on a bad flag, want 2", code)
	}
}

func TestLoadError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// t.TempDir() sits outside any Go module, so the loader cannot find a
	// go.mod walking up and must fail with a usage/load error.
	if code := run([]string{"-dir", t.TempDir(), "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d outside a module, want 2", code)
	}
	if stderr.Len() == 0 {
		t.Error("load error printed nothing to stderr")
	}
}
