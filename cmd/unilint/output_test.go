package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestGoldenOutput pins the machine-readable formats byte-for-byte over the
// dirty fixture module: the finding order is RunAll's position sort, the
// paths are module-root-relative, and any change to either shape must be a
// deliberate golden update (regenerate with
// `go run . -json -dir testdata/dirtymod ./... > testdata/dirty.json` and
// the -sarif sibling).
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		flag   string
		golden string
	}{
		{"-json", "testdata/dirty.json"},
		{"-sarif", "testdata/dirty.sarif"},
	}
	for _, c := range cases {
		t.Run(c.flag, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run([]string{c.flag, "-dir", "testdata/dirtymod", "./..."}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
			}
			want, err := os.ReadFile(c.golden)
			if err != nil {
				t.Fatal(err)
			}
			if got := stdout.String(); got != string(want) {
				t.Errorf("%s output diverged from %s:\ngot:\n%s\nwant:\n%s", c.flag, c.golden, got, want)
			}
		})
	}
}

// TestExitCodeTable asserts the 0/1/2 contract holds identically in every
// output format: clean module, dirty module, and usage/load errors.
func TestExitCodeTable(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"text clean", []string{"-dir", "testdata/cleanmod", "./..."}, 0},
		{"json clean", []string{"-json", "-dir", "testdata/cleanmod", "./..."}, 0},
		{"sarif clean", []string{"-sarif", "-dir", "testdata/cleanmod", "./..."}, 0},
		{"text dirty", []string{"-dir", "testdata/dirtymod", "./..."}, 1},
		{"json dirty", []string{"-json", "-dir", "testdata/dirtymod", "./..."}, 1},
		{"sarif dirty", []string{"-sarif", "-dir", "testdata/dirtymod", "./..."}, 1},
		{"both formats", []string{"-json", "-sarif", "./..."}, 2},
		{"json load error", []string{"-json", "-dir", os.TempDir(), "./..."}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(c.args, &stdout, &stderr); code != c.want {
				t.Fatalf("exit %d, want %d\nstdout:\n%s\nstderr:\n%s", code, c.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestCleanJSONShape: a clean run still prints a complete document — an
// empty findings array, not null, so consumers need no special case.
func TestCleanJSONShape(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-dir", "testdata/cleanmod", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	var doc struct {
		Findings []any `json:"findings"`
		Count    int   `json:"count"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("clean -json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if doc.Findings == nil || len(doc.Findings) != 0 || doc.Count != 0 {
		t.Errorf("clean run: findings=%v count=%d, want empty array and 0", doc.Findings, doc.Count)
	}
	if !strings.Contains(stdout.String(), `"findings": []`) {
		t.Errorf("findings must serialize as [] on a clean run:\n%s", stdout.String())
	}
}

// TestCleanSARIFShape: a clean SARIF log still carries the full rule table
// (so rule metadata resolves) and an empty results array.
func TestCleanSARIFShape(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-sarif", "-dir", "testdata/cleanmod", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	var doc sarifLog
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("clean -sarif output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version %q with %d runs, want 2.1.0 with 1", doc.Version, len(doc.Runs))
	}
	run0 := doc.Runs[0]
	if run0.Tool.Driver.Name != "unilint" {
		t.Errorf("driver name %q, want unilint", run0.Tool.Driver.Name)
	}
	if len(run0.Results) != 0 || run0.Results == nil {
		t.Errorf("clean run: %d results (nil=%v), want empty non-nil array", len(run0.Results), run0.Results == nil)
	}
	names := make(map[string]bool)
	for _, r := range run0.Tool.Driver.Rules {
		names[r.ID] = true
	}
	for _, want := range []string{"maporder", "poolonly", "sinkwrite", "floateq", "panicfree", "ctxflow", "errcontract", "detokstale", "detok"} {
		if !names[want] {
			t.Errorf("rule table missing %q", want)
		}
	}
}
