// Machine-readable output: -json for scripting, -sarif for CI annotation
// (SARIF 2.1.0, the format GitHub code scanning ingests). Both render the
// same sorted finding list the plain-text mode prints, with paths
// relativized to the module root so output is stable across checkouts.
package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// relPath renders a finding path relative to the module root (slash-
// separated); paths outside the root pass through unchanged.
func relPath(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON renders findings as one indented JSON object. The findings
// array is always present (empty on a clean run), in RunAll's sorted order.
func writeJSON(w io.Writer, root string, findings []lint.Finding) error {
	out := struct {
		Findings []jsonFinding `json:"findings"`
		Count    int           `json:"count"`
	}{Findings: []jsonFinding{}, Count: len(findings)}
	for _, f := range findings {
		out.Findings = append(out.Findings, jsonFinding{
			File:     relPath(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// The subset of SARIF 2.1.0 the GitHub upload-sarif action consumes.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders findings as a single-run SARIF log. Every analyzer is
// listed as a rule — plus the detok pseudo-rule, under which annotation
// grammar findings report — so rule metadata resolves even on clean runs.
func writeSARIF(w io.Writer, root string, analyzers []*lint.Analyzer, findings []lint.Finding) error {
	driver := sarifDriver{Name: "unilint", Rules: []sarifRule{}}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               lint.SuppressionsAnalyzer,
		ShortDescription: sarifText{Text: "malformed //det:ok suppression annotation"},
	})
	results := []sarifResult{}
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relPath(root, f.Pos.Filename), URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
