module cleanmod

go 1.24
