// Package clean is a deliberately finding-free module: the exit-code and
// machine-readable-output tests point unilint at it to pin the clean-run
// shape of every format (exit 0, empty findings array, empty SARIF results).
package clean

func Add(a, b int) int { return a + b }
