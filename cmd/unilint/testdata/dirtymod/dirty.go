// Package dirty is a deliberately failing module the driver tests point
// unilint at: one unsuppressed poolonly violation plus one reasonless
// suppression, so the run must exit 1 with exactly two findings. The
// maporder loop below does NOT count — dirtymod's import path is outside
// the deterministic-output packages, so the driver's AppliesTo filter
// drops that analyzer here.
package dirty

var m = map[string]int{}

func sum() int {
	n := 0
	for _, v := range m { // outside maporder's package scope: no finding
		n += v
	}
	return n
}

func spawn(fn func()) {
	go fn() // poolonly finding: not in a file named parallel.go
}

func reasonless(fn func()) {
	//det:ok poolonly
	go fn() // suppressed — but the reasonless annotation is a detok finding
}
