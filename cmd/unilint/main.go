// Command unilint runs the repo's determinism & concurrency analyzer suite
// (internal/lint) over the module and fails on any unsuppressed finding:
//
//	go run ./cmd/unilint ./...
//
// Findings print one per line as "file:line:col: analyzer: message". A
// finding is suppressed by annotating the offending line (trailing, or the
// line directly above) with
//
//	//det:ok <analyzer> <reason>
//
// where the reason is mandatory — a reasonless or unknown-analyzer
// suppression is itself a finding, and a suppression that no longer
// suppresses anything is one too (detokstale).
//
// -json renders the findings as one JSON object, -sarif as a SARIF 2.1.0
// log for CI annotation (GitHub code scanning); the two are mutually
// exclusive, and both relativize paths to the module root. The exit status
// is the same in every output mode: 0 clean, 1 findings, 2 usage or load
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("unilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("dir", ".", "directory whose module is analyzed")
	asJSON := fs.Bool("json", false, "print findings as JSON")
	asSARIF := fs.Bool("sarif", false, "print findings as a SARIF 2.1.0 log")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: unilint [-dir root] [-json|-sarif] [packages]\n\nAnalyzes the module's packages (default ./...) and exits nonzero on findings.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(stderr, "unilint: -json and -sarif are mutually exclusive")
		fs.Usage()
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "unilint: %v\n", err)
		return 2
	}
	findings := lint.RunAll(analyzers, pkgs)
	switch {
	case *asJSON, *asSARIF:
		// Load succeeded, so the module root resolves; relativized paths
		// keep machine-readable output stable across checkouts.
		root, err := lint.ModuleRoot(*dir)
		if err != nil {
			fmt.Fprintf(stderr, "unilint: %v\n", err)
			return 2
		}
		if *asJSON {
			err = writeJSON(stdout, root, findings)
		} else {
			err = writeSARIF(stdout, root, analyzers, findings)
		}
		if err != nil {
			fmt.Fprintf(stderr, "unilint: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "unilint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
