package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"time"

	"repro/internal/clean"
	"repro/internal/gen"
)

// benchReport is the JSON record one -bench run emits. Visits are the
// deterministic work measure (rule-applier tuple visits, see
// clean.ApplyStats); the nanosecond timings are recorded for the perf
// trajectory but are machine-dependent, so the regression gate compares
// visits, not wall-clock.
type benchReport struct {
	Config            gen.Config
	RescanNs          int64
	IncrementalNs     int64
	Speedup           float64 // RescanNs / IncrementalNs, same process and machine
	RescanVisits      int
	IncrementalVisits int
	VisitRatio        float64 // RescanVisits / IncrementalVisits
	Fixes             int
	Asserts           int
	Conflicts         int
	Unresolved        int
}

// maxVisitRegression is the CI gate: the run fails when the incremental
// engine's visit count grows more than 20% over the committed baseline, or
// its advantage over the rescan engine shrinks by more than 20%.
const maxVisitRegression = 1.20

// runBench generates the configured synthetic instance, runs the full
// pipeline once per scheduler mode, writes the JSON report, and enforces the
// baseline gate when one is given.
func runBench(cfg gen.Config, outPath, baselinePath string, stderr io.Writer) error {
	inst := gen.Generate(cfg)
	opts := clean.DefaultOptions()

	opts.Rescan = true
	t0 := time.Now()
	ref := clean.Run(inst.Data, inst.Master, inst.Rules, opts)
	rescanNs := time.Since(t0).Nanoseconds()

	opts.Rescan = false
	t0 = time.Now()
	inc := clean.Run(inst.Data, inst.Master, inst.Rules, opts)
	incrementalNs := time.Since(t0).Nanoseconds()

	// The two schedulers must agree fix-for-fix; a benchmark that measures
	// two different computations is worthless, so this is a hard failure.
	// The comparison is deep — full fix records in order, conflicts, the
	// certified report, and the repaired cells — because this workload (MDs
	// plus master data) is exactly the shape the nil-master property corpus
	// does not cover.
	if !reflect.DeepEqual(inc.Fixes, ref.Fixes) || inc.Asserts != ref.Asserts ||
		!reflect.DeepEqual(inc.Conflicts, ref.Conflicts) ||
		inc.Report.String() != ref.Report.String() ||
		inc.Data.DiffCells(ref.Data) != 0 {
		return fmt.Errorf("bench: incremental and rescan engines disagree (%d vs %d fixes, %d vs %d asserts, %d differing cells)",
			len(inc.Fixes), len(ref.Fixes), inc.Asserts, ref.Asserts, inc.Data.DiffCells(ref.Data))
	}

	rep := benchReport{
		Config:            cfg,
		RescanNs:          rescanNs,
		IncrementalNs:     incrementalNs,
		Speedup:           float64(rescanNs) / float64(incrementalNs),
		RescanVisits:      ref.TotalVisits(),
		IncrementalVisits: inc.TotalVisits(),
		Fixes:             len(inc.Fixes),
		Asserts:           inc.Asserts,
		Conflicts:         len(inc.Conflicts),
		Unresolved:        len(inc.Unresolved),
	}
	rep.VisitRatio = float64(rep.RescanVisits) / float64(rep.IncrementalVisits)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "bench: %d tuples, %d dirtied cells, %d fixes\n",
		cfg.Tuples, inst.Dirtied, rep.Fixes)
	fmt.Fprintf(stderr, "bench: rescan      %8.1fms  %9d visits\n",
		float64(rescanNs)/1e6, rep.RescanVisits)
	fmt.Fprintf(stderr, "bench: incremental %8.1fms  %9d visits\n",
		float64(incrementalNs)/1e6, rep.IncrementalVisits)
	fmt.Fprintf(stderr, "bench: speedup %.2fx, visit ratio %.2fx, report written to %s\n",
		rep.Speedup, rep.VisitRatio, outPath)

	if baselinePath == "" {
		return nil
	}
	base, err := readBaseline(baselinePath)
	if err != nil {
		return err
	}
	return checkBaseline(rep, base, stderr)
}

func readBaseline(path string) (benchReport, error) {
	var base benchReport
	buf, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(buf, &base); err != nil {
		return base, fmt.Errorf("%s: %w", path, err)
	}
	return base, nil
}

// checkBaseline fails the run when the deterministic work counters regress
// more than 20% against the committed baseline. Wall-clock is only sanity-
// checked (the incremental engine must not be slower than the rescan one in
// the same process); CI runners are too noisy for an absolute time gate.
func checkBaseline(rep, base benchReport, stderr io.Writer) error {
	if base.IncrementalVisits <= 0 || base.VisitRatio <= 0 {
		return fmt.Errorf("bench: baseline has no visit counts; regenerate it with -bench")
	}
	if got, limit := rep.IncrementalVisits, float64(base.IncrementalVisits)*maxVisitRegression; float64(got) > limit {
		return fmt.Errorf("bench: incremental visits regressed: %d > %.0f (baseline %d +20%%)",
			got, limit, base.IncrementalVisits)
	}
	if got, floor := rep.VisitRatio, base.VisitRatio/maxVisitRegression; got < floor {
		return fmt.Errorf("bench: visit ratio regressed: %.2f < %.2f (baseline %.2f -20%%)",
			got, floor, base.VisitRatio)
	}
	if rep.Speedup < 1 {
		return fmt.Errorf("bench: incremental engine slower than rescan (%.2fx)", rep.Speedup)
	}
	fmt.Fprintf(stderr, "bench: within baseline (visits %d <= %d +20%%, ratio %.2f >= %.2f -20%%)\n",
		rep.IncrementalVisits, base.IncrementalVisits, rep.VisitRatio, base.VisitRatio)
	return nil
}

// benchSHA picks the label embedded in the default output file name.
func benchSHA(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	if sha := os.Getenv("GITHUB_SHA"); len(sha) >= 8 {
		return sha[:8]
	}
	return "local"
}
