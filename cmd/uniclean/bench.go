package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/clean"
	"repro/internal/gen"
)

// benchReport is the JSON record one -bench run emits. Visits are the
// deterministic work measure (rule-applier tuple visits, see
// clean.ApplyStats); the nanosecond timings are recorded for the perf
// trajectory but are machine-dependent, so the regression gate compares
// visits, not wall-clock. The parallel run must agree with the sequential
// incremental run down to the visit counters (a hard failure otherwise);
// only the per-worker split of those visits is scheduling-dependent, so
// WorkerVisits is reported and never gated.
type benchReport struct {
	Config            gen.Config
	RescanNs          int64
	IncrementalNs     int64
	Speedup           float64 // RescanNs / IncrementalNs, same process and machine
	RescanVisits      int
	IncrementalVisits int
	VisitRatio        float64 // RescanVisits / IncrementalVisits
	Workers           int     // effective worker count of the parallel run
	ParallelNs        int64
	ParallelSpeedup   float64 // IncrementalNs / ParallelNs, same process and machine
	ParallelVisits    int     // must equal IncrementalVisits
	WorkerVisits      []int64 // per-worker propose visits; nondeterministic split
	Fixes             int
	Asserts           int
	Conflicts         int
	Unresolved        int
}

// maxVisitRegression is the CI gate: the run fails when the incremental
// engine's visit count grows more than 20% over the committed baseline, or
// its advantage over the rescan engine shrinks by more than 20%.
const maxVisitRegression = 1.20

// runBench generates the configured synthetic instance, runs the full
// pipeline once per engine mode — full-rescan reference, sequential
// incremental, parallel incremental with the requested worker count —
// writes the JSON report, and enforces the baseline gate when one is given.
func runBench(cfg gen.Config, workers int, outPath, baselinePath string, stderr io.Writer) error {
	inst := gen.Generate(cfg)
	opts := clean.DefaultOptions()

	opts.Rescan, opts.Workers = true, 1
	t0 := time.Now()
	ref := clean.Run(inst.Data, inst.Master, inst.Rules, opts)
	rescanNs := time.Since(t0).Nanoseconds()

	opts.Rescan = false
	t0 = time.Now()
	inc := clean.Run(inst.Data, inst.Master, inst.Rules, opts)
	incrementalNs := time.Since(t0).Nanoseconds()

	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opts.Workers = workers
	t0 = time.Now()
	par := clean.Run(inst.Data, inst.Master, inst.Rules, opts)
	parallelNs := time.Since(t0).Nanoseconds()

	// The engines must agree fix-for-fix; a benchmark that measures
	// different computations is worthless, so disagreement is a hard
	// failure. The comparison is deep — full fix records in order,
	// conflicts, the certified report, and the repaired cells — because
	// this workload (MDs plus master data) is exactly the shape the
	// nil-master property corpus does not cover.
	if err := diffRuns("incremental", "rescan", inc, ref); err != nil {
		return err
	}
	// The parallel engine additionally must match the sequential visit
	// counters exactly: it shards the same worklists, so any drift means
	// the merge replayed different work, not just scheduled it elsewhere.
	if err := diffRuns("parallel", "incremental", par, inc); err != nil {
		return err
	}
	if par.TotalVisits() != inc.TotalVisits() {
		return fmt.Errorf("bench: parallel visits %d != incremental visits %d",
			par.TotalVisits(), inc.TotalVisits())
	}

	rep := benchReport{
		Config:            cfg,
		RescanNs:          rescanNs,
		IncrementalNs:     incrementalNs,
		Speedup:           float64(rescanNs) / float64(incrementalNs),
		RescanVisits:      ref.TotalVisits(),
		IncrementalVisits: inc.TotalVisits(),
		Workers:           workers,
		ParallelNs:        parallelNs,
		ParallelSpeedup:   float64(incrementalNs) / float64(parallelNs),
		ParallelVisits:    par.TotalVisits(),
		WorkerVisits:      par.WorkerVisits,
		Fixes:             len(inc.Fixes),
		Asserts:           inc.Asserts,
		Conflicts:         len(inc.Conflicts),
		Unresolved:        len(inc.Unresolved),
	}
	rep.VisitRatio = float64(rep.RescanVisits) / float64(rep.IncrementalVisits)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "bench: %d tuples, %d dirtied cells, %d fixes\n",
		cfg.Tuples, inst.Dirtied, rep.Fixes)
	fmt.Fprintf(stderr, "bench: rescan        %8.1fms  %9d visits\n",
		float64(rescanNs)/1e6, rep.RescanVisits)
	fmt.Fprintf(stderr, "bench: incremental   %8.1fms  %9d visits\n",
		float64(incrementalNs)/1e6, rep.IncrementalVisits)
	fmt.Fprintf(stderr, "bench: parallel(%2d)  %8.1fms  %9d visits %v\n",
		workers, float64(parallelNs)/1e6, rep.ParallelVisits, rep.WorkerVisits)
	fmt.Fprintf(stderr, "bench: speedup %.2fx, visit ratio %.2fx, parallel speedup %.2fx, report written to %s\n",
		rep.Speedup, rep.VisitRatio, rep.ParallelSpeedup, outPath)

	if baselinePath == "" {
		return nil
	}
	base, err := readBaseline(baselinePath)
	if err != nil {
		return err
	}
	return checkBaseline(rep, base, stderr)
}

// diffRuns fails when two engine runs over the same instance differ in any
// observable way: fixes, asserts, conflicts, certified report, or repaired
// cells.
func diffRuns(got, want string, a, b *clean.Result) error {
	if !reflect.DeepEqual(a.Fixes, b.Fixes) || a.Asserts != b.Asserts ||
		!reflect.DeepEqual(a.Conflicts, b.Conflicts) ||
		a.Report.String() != b.Report.String() ||
		a.Data.DiffCells(b.Data) != 0 {
		return fmt.Errorf("bench: %s and %s engines disagree (%d vs %d fixes, %d vs %d asserts, %d differing cells)",
			got, want, len(a.Fixes), len(b.Fixes), a.Asserts, b.Asserts, a.Data.DiffCells(b.Data))
	}
	return nil
}

func readBaseline(path string) (benchReport, error) {
	var base benchReport
	buf, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(buf, &base); err != nil {
		return base, fmt.Errorf("%s: %w", path, err)
	}
	return base, nil
}

// checkBaseline fails the run when the deterministic work counters regress
// more than 20% against the committed baseline. Wall-clock is only sanity-
// checked (the incremental engine must not be slower than the rescan one in
// the same process); CI runners are too noisy for an absolute time gate.
func checkBaseline(rep, base benchReport, stderr io.Writer) error {
	if base.IncrementalVisits <= 0 || base.VisitRatio <= 0 {
		return fmt.Errorf("bench: baseline has no visit counts; regenerate it with -bench")
	}
	if got, limit := rep.IncrementalVisits, float64(base.IncrementalVisits)*maxVisitRegression; float64(got) > limit {
		return fmt.Errorf("bench: incremental visits regressed: %d > %.0f (baseline %d +20%%)",
			got, limit, base.IncrementalVisits)
	}
	if got, floor := rep.VisitRatio, base.VisitRatio/maxVisitRegression; got < floor {
		return fmt.Errorf("bench: visit ratio regressed: %.2f < %.2f (baseline %.2f -20%%)",
			got, floor, base.VisitRatio)
	}
	if rep.Speedup < 1 {
		return fmt.Errorf("bench: incremental engine slower than rescan (%.2fx)", rep.Speedup)
	}
	fmt.Fprintf(stderr, "bench: within baseline (visits %d <= %d +20%%, ratio %.2f >= %.2f -20%%)\n",
		rep.IncrementalVisits, base.IncrementalVisits, rep.VisitRatio, base.VisitRatio)
	return nil
}

// benchSHA picks the label embedded in the default output file name.
func benchSHA(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	if sha := os.Getenv("GITHUB_SHA"); len(sha) >= 8 {
		return sha[:8]
	}
	return "local"
}
