package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"repro/internal/clean"
	"repro/internal/gen"
)

// benchReport is the JSON record one -bench run emits. Visits are the
// deterministic work measure (rule-applier tuple visits, see
// clean.ApplyStats); the nanosecond timings are recorded for the perf
// trajectory but are machine-dependent, so the regression gate compares
// visits, not wall-clock. The parallel run must agree with the sequential
// incremental run down to the visit counters (a hard failure otherwise);
// only the per-worker split of those visits is scheduling-dependent, so
// WorkerVisits is reported and never gated, while MaxWorkerShare condenses
// the split into the one balance number worth watching — 1.0 is a perfect
// split, Workers means one worker did everything — and is soft-gated
// against the multicore baseline only.
type benchReport struct {
	Config            gen.Config
	RescanNs          int64
	IncrementalNs     int64
	Speedup           float64 // RescanNs / IncrementalNs, same process and machine
	RescanVisits      int
	IncrementalVisits int
	VisitRatio        float64 // RescanVisits / IncrementalVisits
	CertifyVisits     int     // MD certification pairs verified; naive is |D|·|Dm| per MD rule
	Workers           int     // effective worker count of the parallel run
	ParallelNs        int64
	ParallelSpeedup   float64 // IncrementalNs / ParallelNs, same process and machine
	ParallelVisits    int     // must equal IncrementalVisits
	WorkerVisits      []int64 // per-worker propose visits; nondeterministic split
	MaxWorkerShare    float64 // max/mean over WorkerVisits; 0 when no worker proposed
	Fixes             int
	Asserts           int
	Conflicts         int
	Unresolved        int

	// Update-replay mode (-bench.updates > 0): a generated upsert/delete
	// stream is replayed through a streaming engine (clean.NewStream) in
	// sequential and parallel mode. UpdateVisits sums the applier tuple
	// visits of every update's re-run — the deterministic work measure,
	// hard-checked equal across worker counts and gated ±20% against the
	// baseline in both directions (a collapse to zero means the replay
	// stopped doing measured work). UpdatePatched counts rule
	// certifications served from the incremental cache across the stream;
	// UpdateNs and UpdatesPerSec are the recorded (never gated) wall side.
	UpdateCount   int
	UpdateVisits  int
	UpdatePatched int
	UpdateNs      int64
	UpdatesPerSec float64
}

// maxVisitRegression is the CI gate: the run fails when the incremental
// engine's visit count grows more than 20% over the committed baseline, or
// its advantage over the rescan engine shrinks by more than 20%.
const maxVisitRegression = 1.20

// pairedSpeedupSlack is the paired-run wall-clock gate (ROADMAP (e)): the
// incremental engine must beat the rescan engine in the same process, and
// its measured speedup may fall at most this factor below the committed
// baseline's. Paired runs cancel machine speed but not scheduler noise, so
// the slack is generous — only losing half the advantage fails; the visit
// gates stay the precise instrument.
const pairedSpeedupSlack = 2.0

// parallelWallFloor is the absolute floor of the parallel-vs-sequential
// paired run: ParallelSpeedup must stay at or above it on every machine,
// including single-core, where the fast path makes Workers: 4 degrade to
// the sequential computation plus noise. The floor sits a tolerance below
// 1.0 because a paired run cancels machine speed but not clock jitter; a
// genuine "parallel is slower" regression lands well under it.
const parallelWallFloor = 0.90

// benchRounds is how many interleaved timing samples -bench takes of each
// engine mode; the fastest sample is the reported duration.
const benchRounds = 3

// maxWorkerShareLimit is the soft balance gate: on a multicore baseline,
// MaxWorkerShare beyond it — the busiest worker proposing more than twice
// the mean — signals the stealing layer has stopped spreading work, but
// only warns, because the split is scheduling noise on quiet and loaded
// runners alike.
const maxWorkerShareLimit = 2.0

// ratio returns num/den, or 0 when den is zero: a zero-duration timing on a
// coarse clock, or an empty visit counter, must not put +Inf or NaN into the
// report — json.Marshal rejects non-finite floats with an
// UnsupportedValueError, which used to kill the whole -bench run.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// deriveRatios fills the report's derived ratio fields from the measured
// ones, guarding every division.
func (r *benchReport) deriveRatios() {
	r.Speedup = ratio(float64(r.RescanNs), float64(r.IncrementalNs))
	r.VisitRatio = ratio(float64(r.RescanVisits), float64(r.IncrementalVisits))
	r.ParallelSpeedup = ratio(float64(r.IncrementalNs), float64(r.ParallelNs))
	var sum, max int64
	for _, v := range r.WorkerVisits {
		sum += v
		if v > max {
			max = v
		}
	}
	mean := ratio(float64(sum), float64(len(r.WorkerVisits)))
	r.MaxWorkerShare = ratio(float64(max), mean)
}

// runBench generates the configured synthetic instance, runs the full
// pipeline once per engine mode — full-rescan reference, sequential
// incremental, parallel incremental with the requested worker count —
// writes the JSON report, and enforces the baseline gate when one is given.
func runBench(cfg gen.Config, workers, updates int, outPath, baselinePath string, stderr io.Writer) error {
	inst := gen.Generate(cfg)
	opts := clean.DefaultOptions()

	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Each engine mode is timed benchRounds times, interleaved — rescan,
	// incremental, parallel, then again — and the fastest sample wins. The
	// pipeline is deterministic, so repeated runs compute identical
	// results; interleaving matters because the jitter on shared runners
	// (GC pauses, container CPU throttling) is epoch-correlated, and
	// back-to-back same-mode samples used to swing the paired wall ratios
	// ±15% and flake the wall gates.
	modes := make([]clean.Options, 3)
	modes[0] = opts
	modes[0].Rescan, modes[0].Workers = true, 1
	modes[1] = opts
	modes[1].Rescan, modes[1].Workers = false, 1
	modes[2] = opts
	modes[2].Rescan, modes[2].Workers = false, workers
	results := make([]*clean.Result, len(modes))
	best := make([]int64, len(modes))
	for round := 0; round < benchRounds; round++ {
		for m, o := range modes {
			t0 := time.Now()
			res := clean.Run(inst.Data, inst.Master, inst.Rules, o)
			if ns := time.Since(t0).Nanoseconds(); round == 0 || ns < best[m] {
				best[m] = ns
			}
			if round == 0 {
				results[m] = res
			}
		}
	}
	ref, rescanNs := results[0], best[0]
	inc, incrementalNs := results[1], best[1]
	par, parallelNs := results[2], best[2]

	// The engines must agree fix-for-fix; a benchmark that measures
	// different computations is worthless, so disagreement is a hard
	// failure. The comparison is deep — full fix records in order,
	// conflicts, the certified report, and the repaired cells — because
	// this workload (MDs plus master data) is exactly the shape the
	// nil-master property corpus does not cover.
	if err := diffRuns("incremental", "rescan", inc, ref); err != nil {
		return err
	}
	// The parallel engine additionally must match the sequential visit
	// counters exactly: it shards the same worklists, so any drift means
	// the merge replayed different work, not just scheduled it elsewhere.
	if err := diffRuns("parallel", "incremental", par, inc); err != nil {
		return err
	}
	if par.TotalVisits() != inc.TotalVisits() {
		return fmt.Errorf("bench: parallel visits %d != incremental visits %d",
			par.TotalVisits(), inc.TotalVisits())
	}
	// Certification work is deterministic too: all three engines certify
	// the same repaired relation through the same blocked enumeration, and
	// the parallel checker merges per-rule passes — so the counter must not
	// depend on engine mode or worker count.
	if ref.Report.CertVisits != inc.Report.CertVisits || par.Report.CertVisits != inc.Report.CertVisits {
		return fmt.Errorf("bench: certify visits disagree: rescan %d, incremental %d, parallel %d",
			ref.Report.CertVisits, inc.Report.CertVisits, par.Report.CertVisits)
	}

	rep := benchReport{
		Config:            cfg,
		RescanNs:          rescanNs,
		IncrementalNs:     incrementalNs,
		RescanVisits:      ref.TotalVisits(),
		IncrementalVisits: inc.TotalVisits(),
		CertifyVisits:     inc.Report.CertVisits,
		Workers:           workers,
		ParallelNs:        parallelNs,
		ParallelVisits:    par.TotalVisits(),
		WorkerVisits:      par.WorkerVisits,
		Fixes:             len(inc.Fixes),
		Asserts:           inc.Asserts,
		Conflicts:         len(inc.Conflicts),
		Unresolved:        len(inc.Unresolved),
	}
	rep.deriveRatios()

	if updates > 0 {
		if err := runUpdateBench(inst, updates, workers, opts, &rep, stderr); err != nil {
			return err
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "bench: %d tuples, %d dirtied cells, %d fixes\n",
		cfg.Tuples, inst.Dirtied, rep.Fixes)
	fmt.Fprintf(stderr, "bench: rescan        %8.1fms  %9d visits\n",
		float64(rescanNs)/1e6, rep.RescanVisits)
	fmt.Fprintf(stderr, "bench: incremental   %8.1fms  %9d visits\n",
		float64(incrementalNs)/1e6, rep.IncrementalVisits)
	fmt.Fprintf(stderr, "bench: parallel(%2d)  %8.1fms  %9d visits %v (max/mean %.2f)\n",
		workers, float64(parallelNs)/1e6, rep.ParallelVisits, rep.WorkerVisits, rep.MaxWorkerShare)
	fmt.Fprintf(stderr, "bench: certify       %9d pairs verified (naive scan: %d per MD rule)\n",
		rep.CertifyVisits, cfg.Tuples*cfg.MasterSize)
	fmt.Fprintf(stderr, "bench: speedup %.2fx, visit ratio %.2fx, parallel speedup %.2fx, report written to %s\n",
		rep.Speedup, rep.VisitRatio, rep.ParallelSpeedup, outPath)

	if baselinePath == "" {
		return nil
	}
	path, err := resolveBaseline(baselinePath)
	if err != nil {
		return err
	}
	if path != baselinePath {
		fmt.Fprintf(stderr, "bench: %d effective CPUs, gating against %s\n", runtime.GOMAXPROCS(0), path)
	}
	base, err := readBaseline(path)
	if err != nil {
		return err
	}
	return checkBaseline(rep, base, stderr)
}

// runUpdateBench replays a generated update stream through streaming
// engines in sequential and parallel mode and fills the report's Update*
// fields. The two replays must agree on every final observable and on the
// summed applier visit counters — the streaming analogue of the
// parallel-vs-sequential hard check of the batch bench.
func runUpdateBench(inst *gen.Instance, updates, workers int, opts clean.Options, rep *benchReport, stderr io.Writer) error {
	stream := gen.GenerateUpdates(inst, gen.UpdateConfig{
		Updates:      updates,
		DeleteRate:   0.15,
		AppendRate:   0.25,
		HotGroupRate: 0.2,
		Seed:         inst.Config.Seed,
	})

	type replay struct {
		res     *clean.Result
		visits  int
		patched int
		ns      int64
	}
	run := func(w int) (replay, error) {
		o := opts
		o.Workers = w
		e, err := clean.NewStream(inst.Data, inst.Master, inst.Rules, o)
		if err != nil {
			return replay{}, fmt.Errorf("bench: stream setup: %w", err)
		}
		var out replay
		t0 := time.Now()
		for i, u := range stream {
			var res *clean.Result
			if u.Delete {
				res, err = e.Delete(u.ID)
			} else {
				res, err = e.Upsert(u.ID, u.Values, u.Conf)
			}
			if err != nil {
				return replay{}, fmt.Errorf("bench: update %d: %w", i, err)
			}
			out.visits += res.TotalVisits()
			out.patched += res.Report.Patched
		}
		out.ns = time.Since(t0).Nanoseconds()
		out.res = e.Result()
		return out, nil
	}

	seq, err := run(1)
	if err != nil {
		return err
	}
	par, err := run(workers)
	if err != nil {
		return err
	}
	if err := diffRuns("parallel update replay", "sequential update replay", par.res, seq.res); err != nil {
		return err
	}
	if par.visits != seq.visits {
		return fmt.Errorf("bench: update replay visits disagree: parallel %d != sequential %d",
			par.visits, seq.visits)
	}
	if par.patched != seq.patched {
		return fmt.Errorf("bench: update replay patched counts disagree: parallel %d != sequential %d",
			par.patched, seq.patched)
	}

	rep.UpdateCount = len(stream)
	rep.UpdateVisits = seq.visits
	rep.UpdatePatched = seq.patched
	rep.UpdateNs = par.ns
	rep.UpdatesPerSec = ratio(float64(len(stream)), float64(par.ns)/1e9)
	fmt.Fprintf(stderr, "bench: updates(%2d)   %8.1fms  %9d visits, %d certifications patched, %.1f updates/sec\n",
		workers, float64(par.ns)/1e6, rep.UpdateVisits, rep.UpdatePatched, rep.UpdatesPerSec)
	return nil
}

// resolveBaseline maps the -bench.baseline argument to a concrete file:
// given a directory, it picks baseline-multicore.json when the process has
// more than one effective CPU and baseline.json otherwise, so one CI
// invocation gates every runner class against the numbers a machine of its
// shape can actually reproduce — wall ratios measured on a multicore box
// are unreachable on a single-core container and vice versa.
func resolveBaseline(path string) (string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if !info.IsDir() {
		return path, nil
	}
	name := "baseline.json"
	if runtime.GOMAXPROCS(0) > 1 {
		name = "baseline-multicore.json"
	}
	return filepath.Join(path, name), nil
}

// diffRuns fails when two engine runs over the same instance differ in any
// observable way: fixes, asserts, conflicts, certified report, or repaired
// cells.
func diffRuns(got, want string, a, b *clean.Result) error {
	if !reflect.DeepEqual(a.Fixes, b.Fixes) || a.Asserts != b.Asserts ||
		!reflect.DeepEqual(a.Conflicts, b.Conflicts) ||
		a.Report.String() != b.Report.String() ||
		a.Data.DiffCells(b.Data) != 0 {
		return fmt.Errorf("bench: %s and %s engines disagree (%d vs %d fixes, %d vs %d asserts, %d differing cells)",
			got, want, len(a.Fixes), len(b.Fixes), a.Asserts, b.Asserts, a.Data.DiffCells(b.Data))
	}
	return nil
}

func readBaseline(path string) (benchReport, error) {
	var base benchReport
	buf, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(buf, &base); err != nil {
		return base, fmt.Errorf("%s: %w", path, err)
	}
	return base, nil
}

// checkBaseline fails the run when the deterministic work counters regress
// more than 20% against the committed baseline, or when the paired-run
// wall-clock advantage collapses. Absolute time is never gated — CI runners
// are too noisy — but a paired run (rescan and incremental in the same
// process, same machine) cancels machine speed, so the incremental engine
// must beat the rescan engine outright and must keep at least half the
// baseline's measured speedup (pairedSpeedupSlack). The wall gates are
// skipped when a coarse clock zeroed a measured duration: the ratios are
// then 0 by construction and meaningless.
func checkBaseline(rep, base benchReport, stderr io.Writer) error {
	if base.IncrementalVisits <= 0 || base.VisitRatio <= 0 {
		return fmt.Errorf("bench: baseline has no visit counts; regenerate it with -bench")
	}
	if got, limit := rep.IncrementalVisits, float64(base.IncrementalVisits)*maxVisitRegression; float64(got) > limit {
		return fmt.Errorf("bench: incremental visits regressed: %d > %.0f (baseline %d +20%%)",
			got, limit, base.IncrementalVisits)
	}
	if got, floor := rep.VisitRatio, base.VisitRatio/maxVisitRegression; got < floor {
		return fmt.Errorf("bench: visit ratio regressed: %.2f < %.2f (baseline %.2f -20%%)",
			got, floor, base.VisitRatio)
	}
	if base.CertifyVisits > 0 {
		if got, limit := rep.CertifyVisits, float64(base.CertifyVisits)*maxVisitRegression; float64(got) > limit {
			return fmt.Errorf("bench: certify visits regressed: %d > %.0f (baseline %d +20%%)",
				got, limit, base.CertifyVisits)
		}
	}
	// The update-replay gate is symmetric: visits above the band mean the
	// streaming layer started re-doing work (index rebuilds, dead caching),
	// below it that the replay stopped measuring real work — both are
	// regressions of what the baseline certifies. It arms only when both
	// sides actually replayed a stream.
	if base.UpdateVisits > 0 && rep.UpdateCount > 0 {
		if got, limit := rep.UpdateVisits, float64(base.UpdateVisits)*maxVisitRegression; float64(got) > limit {
			return fmt.Errorf("bench: update-replay visits regressed: %d > %.0f (baseline %d +20%%)",
				got, limit, base.UpdateVisits)
		}
		if got, floor := rep.UpdateVisits, float64(base.UpdateVisits)/maxVisitRegression; float64(got) < floor {
			return fmt.Errorf("bench: update-replay visits collapsed: %d < %.0f (baseline %d -20%%); if the streaming layer genuinely got cheaper, regenerate the baseline",
				got, floor, base.UpdateVisits)
		}
	}
	if rep.RescanNs > 0 && rep.IncrementalNs > 0 {
		if rep.Speedup < 1 {
			return fmt.Errorf("bench: incremental engine slower than rescan (%.2fx)", rep.Speedup)
		}
		if base.Speedup > 0 && rep.Speedup*pairedSpeedupSlack < base.Speedup {
			return fmt.Errorf("bench: paired-run speedup collapsed: %.2fx < baseline %.2fx / %.1f",
				rep.Speedup, base.Speedup, pairedSpeedupSlack)
		}
	}
	// The parallel paired run gates on every machine: Workers > 1 must
	// never lose to the sequential engine beyond clock tolerance — the
	// fast path routes small rounds inline, so even a single core has
	// nothing to lose — and on a runner whose baseline recorded a real
	// parallel advantage (a multicore box), losing more than half of it
	// fails like the rescan-vs-incremental gate does.
	if rep.Workers > 1 && rep.IncrementalNs > 0 && rep.ParallelNs > 0 {
		if rep.ParallelSpeedup < parallelWallFloor {
			return fmt.Errorf("bench: parallel engine slower than sequential: %.2fx < %.2f floor",
				rep.ParallelSpeedup, parallelWallFloor)
		}
		if base.ParallelSpeedup >= 1 && rep.ParallelSpeedup*pairedSpeedupSlack < base.ParallelSpeedup {
			return fmt.Errorf("bench: parallel speedup collapsed: %.2fx < baseline %.2fx / %.1f",
				rep.ParallelSpeedup, base.ParallelSpeedup, pairedSpeedupSlack)
		}
	}
	// Worker balance is scheduling-dependent, so it only warns — and only
	// when the baseline itself recorded a balanced multicore split, i.e.
	// there is a meaningful expectation to drift from.
	if base.MaxWorkerShare > 0 && rep.MaxWorkerShare > maxWorkerShareLimit {
		fmt.Fprintf(stderr, "bench: WARNING: worker balance degraded: max/mean %.2f > %.1f (baseline %.2f); propose visits %v\n",
			rep.MaxWorkerShare, maxWorkerShareLimit, base.MaxWorkerShare, rep.WorkerVisits)
	}
	// The success line reports only the gates that actually ran: a baseline
	// without certify counts or a coarse clock skips a gate, and the log
	// must not claim a comparison that never happened.
	certGate := "certify gate skipped (no baseline count)"
	if base.CertifyVisits > 0 {
		certGate = fmt.Sprintf("certify %d <= %d +20%%", rep.CertifyVisits, base.CertifyVisits)
	}
	wallGate := "wall gate skipped (zeroed clock)"
	if rep.RescanNs > 0 && rep.IncrementalNs > 0 {
		wallGate = fmt.Sprintf("paired speedup %.2fx", rep.Speedup)
	}
	parGate := "parallel gate skipped (1 worker or zeroed clock)"
	if rep.Workers > 1 && rep.IncrementalNs > 0 && rep.ParallelNs > 0 {
		parGate = fmt.Sprintf("parallel speedup %.2fx >= %.2f", rep.ParallelSpeedup, parallelWallFloor)
	}
	updGate := "update gate skipped (no replay or no baseline count)"
	if base.UpdateVisits > 0 && rep.UpdateCount > 0 {
		updGate = fmt.Sprintf("update visits %d within %d +-20%%", rep.UpdateVisits, base.UpdateVisits)
	}
	fmt.Fprintf(stderr, "bench: within baseline (visits %d <= %d +20%%, ratio %.2f >= %.2f -20%%, %s, %s, %s, %s)\n",
		rep.IncrementalVisits, base.IncrementalVisits, rep.VisitRatio, base.VisitRatio,
		certGate, wallGate, parGate, updGate)
	return nil
}

// benchSHA picks the label embedded in the default output file name.
func benchSHA(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	if sha := os.Getenv("GITHUB_SHA"); len(sha) >= 8 {
		return sha[:8]
	}
	return "local"
}
