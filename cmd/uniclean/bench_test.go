package main

import (
	"encoding/json"
	"io"
	"math"
	"strings"
	"testing"
)

// TestRatioGuardsZeroDenominator pins the division guard: a zero denominator
// — a zero-duration timing on a coarse clock, or an empty visit counter —
// must yield 0, never +Inf or NaN.
func TestRatioGuardsZeroDenominator(t *testing.T) {
	cases := []struct {
		num, den, want float64
	}{
		{10, 2, 5},
		{10, 0, 0},
		{0, 0, 0},
		{0, 7, 0},
	}
	for _, c := range cases {
		got := ratio(c.num, c.den)
		if got != c.want || math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("ratio(%v, %v) = %v, want %v", c.num, c.den, got, c.want)
		}
	}
}

// TestBenchReportMarshalsWithZeroDenominators is the regression test for the
// -bench crash: Speedup, VisitRatio and ParallelSpeedup used to divide by
// measured values that can legitimately be zero, and the resulting +Inf/NaN
// made json.Marshal of BENCH_<sha>.json fail with an UnsupportedValueError,
// killing the whole run after the benchmark had already completed.
func TestBenchReportMarshalsWithZeroDenominators(t *testing.T) {
	reports := []benchReport{
		{},                     // everything zero: the coarse-clock worst case
		{RescanNs: 12345},      // incremental timed at 0
		{IncrementalNs: 12345}, // parallel timed at 0
		{RescanVisits: 99},     // zero-visit incremental report
		{RescanNs: 5, IncrementalNs: 2, ParallelNs: 1, RescanVisits: 10, IncrementalVisits: 4},
	}
	for i, rep := range reports {
		rep.deriveRatios()
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Errorf("report %d: json.Marshal failed: %v", i, err)
			continue
		}
		if strings.Contains(string(buf), "Inf") || strings.Contains(string(buf), "NaN") {
			t.Errorf("report %d: non-finite value leaked into JSON: %s", i, buf)
		}
	}
	// The fully measured case must still compute the real ratios.
	rep := reports[len(reports)-1]
	rep.deriveRatios()
	if rep.Speedup != 2.5 || rep.VisitRatio != 2.5 || rep.ParallelSpeedup != 2 {
		t.Errorf("derived ratios = %v/%v/%v, want 2.5/2.5/2",
			rep.Speedup, rep.VisitRatio, rep.ParallelSpeedup)
	}
}

// TestCheckBaselineSkipsWallGateOnCoarseClock: when a measured duration is
// zero the paired-run wall-clock gates are meaningless (the guarded ratios
// are 0) and must be skipped rather than fail the run; the visit gates still
// apply.
func TestCheckBaselineSkipsWallGateOnCoarseClock(t *testing.T) {
	base := benchReport{RescanVisits: 100, IncrementalVisits: 20, RescanNs: 400, IncrementalNs: 100}
	base.deriveRatios()                                          // baseline speedup 4x
	rep := benchReport{RescanVisits: 100, IncrementalVisits: 20} // all timings 0
	rep.deriveRatios()
	if err := checkBaseline(rep, base, io.Discard); err != nil {
		t.Errorf("zero-clock report failed the gate: %v", err)
	}

	// With real timings the paired gates bite: slower than rescan fails...
	rep.RescanNs, rep.IncrementalNs = 100, 200
	rep.deriveRatios()
	if err := checkBaseline(rep, base, io.Discard); err == nil {
		t.Error("incremental slower than rescan passed the gate")
	}
	// ...as does keeping less than 1/pairedSpeedupSlack of the baseline speedup.
	rep.RescanNs, rep.IncrementalNs = 110, 100
	rep.deriveRatios()
	if err := checkBaseline(rep, base, io.Discard); err == nil {
		t.Error("collapsed paired speedup passed the gate")
	}
	// A healthy paired run passes.
	rep.RescanNs, rep.IncrementalNs = 300, 100
	rep.deriveRatios()
	if err := checkBaseline(rep, base, io.Discard); err != nil {
		t.Errorf("healthy paired run failed the gate: %v", err)
	}
}
