package main

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestRatioGuardsZeroDenominator pins the division guard: a zero denominator
// — a zero-duration timing on a coarse clock, or an empty visit counter —
// must yield 0, never +Inf or NaN.
func TestRatioGuardsZeroDenominator(t *testing.T) {
	cases := []struct {
		num, den, want float64
	}{
		{10, 2, 5},
		{10, 0, 0},
		{0, 0, 0},
		{0, 7, 0},
	}
	for _, c := range cases {
		got := ratio(c.num, c.den)
		if got != c.want || math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("ratio(%v, %v) = %v, want %v", c.num, c.den, got, c.want)
		}
	}
}

// TestBenchReportMarshalsWithZeroDenominators is the regression test for the
// -bench crash: Speedup, VisitRatio and ParallelSpeedup used to divide by
// measured values that can legitimately be zero, and the resulting +Inf/NaN
// made json.Marshal of BENCH_<sha>.json fail with an UnsupportedValueError,
// killing the whole run after the benchmark had already completed.
func TestBenchReportMarshalsWithZeroDenominators(t *testing.T) {
	reports := []benchReport{
		{},                     // everything zero: the coarse-clock worst case
		{RescanNs: 12345},      // incremental timed at 0
		{IncrementalNs: 12345}, // parallel timed at 0
		{RescanVisits: 99},     // zero-visit incremental report
		{RescanNs: 5, IncrementalNs: 2, ParallelNs: 1, RescanVisits: 10, IncrementalVisits: 4},
	}
	for i, rep := range reports {
		rep.deriveRatios()
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Errorf("report %d: json.Marshal failed: %v", i, err)
			continue
		}
		if strings.Contains(string(buf), "Inf") || strings.Contains(string(buf), "NaN") {
			t.Errorf("report %d: non-finite value leaked into JSON: %s", i, buf)
		}
	}
	// The fully measured case must still compute the real ratios.
	rep := reports[len(reports)-1]
	rep.deriveRatios()
	if rep.Speedup != 2.5 || rep.VisitRatio != 2.5 || rep.ParallelSpeedup != 2 {
		t.Errorf("derived ratios = %v/%v/%v, want 2.5/2.5/2",
			rep.Speedup, rep.VisitRatio, rep.ParallelSpeedup)
	}
}

// TestCheckBaselineSkipsWallGateOnCoarseClock: when a measured duration is
// zero the paired-run wall-clock gates are meaningless (the guarded ratios
// are 0) and must be skipped rather than fail the run; the visit gates still
// apply.
func TestCheckBaselineSkipsWallGateOnCoarseClock(t *testing.T) {
	base := benchReport{RescanVisits: 100, IncrementalVisits: 20, RescanNs: 400, IncrementalNs: 100}
	base.deriveRatios()                                          // baseline speedup 4x
	rep := benchReport{RescanVisits: 100, IncrementalVisits: 20} // all timings 0
	rep.deriveRatios()
	if err := checkBaseline(rep, base, io.Discard); err != nil {
		t.Errorf("zero-clock report failed the gate: %v", err)
	}

	// With real timings the paired gates bite: slower than rescan fails...
	rep.RescanNs, rep.IncrementalNs = 100, 200
	rep.deriveRatios()
	if err := checkBaseline(rep, base, io.Discard); err == nil {
		t.Error("incremental slower than rescan passed the gate")
	}
	// ...as does keeping less than 1/pairedSpeedupSlack of the baseline speedup.
	rep.RescanNs, rep.IncrementalNs = 110, 100
	rep.deriveRatios()
	if err := checkBaseline(rep, base, io.Discard); err == nil {
		t.Error("collapsed paired speedup passed the gate")
	}
	// A healthy paired run passes.
	rep.RescanNs, rep.IncrementalNs = 300, 100
	rep.deriveRatios()
	if err := checkBaseline(rep, base, io.Discard); err != nil {
		t.Errorf("healthy paired run failed the gate: %v", err)
	}
}

// TestMaxWorkerShareDerivation pins the balance metric: max over mean of the
// per-worker propose visits, 1.0 for a perfect split, the worker count when
// one worker did everything, and 0 whenever nothing was attributed (pool off
// or every worklist inline), so an idle pool can never trip the soft gate.
func TestMaxWorkerShareDerivation(t *testing.T) {
	cases := []struct {
		visits []int64
		want   float64
	}{
		{nil, 0},
		{[]int64{0, 0, 0, 0}, 0},
		{[]int64{10, 10, 10, 10}, 1},
		{[]int64{0, 0, 0, 200}, 4},
		{[]int64{30, 10}, 1.5},
	}
	for _, c := range cases {
		rep := benchReport{WorkerVisits: c.visits}
		rep.deriveRatios()
		if rep.MaxWorkerShare != c.want {
			t.Errorf("MaxWorkerShare(%v) = %v, want %v", c.visits, rep.MaxWorkerShare, c.want)
		}
	}
}

// TestCheckBaselineParallelGates covers the parallel paired-run gates: the
// absolute floor (parallel must not lose to sequential beyond clock
// tolerance, on any machine), the relative gate (a baseline that recorded a
// real multicore advantage must not see it halve), and the skip conditions
// — one worker, or a zeroed clock.
func TestCheckBaselineParallelGates(t *testing.T) {
	base := benchReport{RescanVisits: 100, IncrementalVisits: 20}
	base.deriveRatios()

	// Parallel slower than sequential beyond the floor fails even with no
	// parallel baseline numbers at all.
	rep := benchReport{RescanVisits: 100, IncrementalVisits: 20,
		Workers: 4, IncrementalNs: 100, ParallelNs: 200}
	rep.deriveRatios()
	if err := checkBaseline(rep, base, io.Discard); err == nil {
		t.Error("parallel at 0.5x sequential passed the gate")
	}
	// Within clock tolerance of 1.0 passes.
	rep.ParallelNs = 105
	rep.deriveRatios()
	if err := checkBaseline(rep, base, io.Discard); err != nil {
		t.Errorf("parallel within the floor failed the gate: %v", err)
	}
	// One worker, or a zeroed clock, skips the gate entirely.
	rep.ParallelNs = 400
	rep.Workers = 1
	rep.deriveRatios()
	if err := checkBaseline(rep, base, io.Discard); err != nil {
		t.Errorf("1-worker run hit the parallel gate: %v", err)
	}
	rep.Workers, rep.ParallelNs = 4, 0
	rep.deriveRatios()
	if err := checkBaseline(rep, base, io.Discard); err != nil {
		t.Errorf("zero-clock run hit the parallel gate: %v", err)
	}

	// A multicore baseline with a real advantage arms the relative gate.
	base.Workers, base.IncrementalNs, base.ParallelNs = 4, 300, 100
	base.deriveRatios() // baseline parallel speedup 3x
	rep.Workers, rep.IncrementalNs, rep.ParallelNs = 4, 120, 100
	rep.deriveRatios() // 1.2x: above the floor, but under 3x / 2
	if err := checkBaseline(rep, base, io.Discard); err == nil {
		t.Error("collapsed parallel speedup passed the relative gate")
	}
	rep.IncrementalNs = 160
	rep.deriveRatios() // 1.6x: keeps more than half the baseline advantage
	if err := checkBaseline(rep, base, io.Discard); err != nil {
		t.Errorf("healthy parallel run failed the relative gate: %v", err)
	}
}

// TestResolveBaseline pins the CPU-count baseline selection: a file path
// passes through untouched, a directory resolves to the single-core or
// multicore baseline by the machine's effective CPU count, and a missing
// path errors instead of silently skipping the gate.
func TestResolveBaseline(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "some.json")
	if err := os.WriteFile(file, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := resolveBaseline(file); err != nil || got != file {
		t.Errorf("resolveBaseline(file) = %q, %v; want the file itself", got, err)
	}
	want := filepath.Join(dir, "baseline.json")
	if runtime.GOMAXPROCS(0) > 1 {
		want = filepath.Join(dir, "baseline-multicore.json")
	}
	if got, err := resolveBaseline(dir); err != nil || got != want {
		t.Errorf("resolveBaseline(dir) = %q, %v; want %q", got, err, want)
	}
	if _, err := resolveBaseline(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing baseline path resolved without error")
	}
}
