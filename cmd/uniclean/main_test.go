package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/clean"
)

const (
	exampleDir = "../../examples/transactions"
	lowconfDir = "../../examples/lowconf"
)

// TestRunExample drives the CLI end-to-end on the bundled example dataset
// and checks the repaired CSV and the report.
func TestRunExample(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "repaired.csv")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-data", filepath.Join(exampleDir, "data.csv"),
		"-conf", filepath.Join(exampleDir, "conf.csv"),
		"-master", filepath.Join(exampleDir, "master.csv"),
		"-rules", filepath.Join(exampleDir, "rules.txt"),
		"-out", outPath,
		"-v",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	want := `FN,LN,St,city,AC,post,phn
Robert,Brady,501 Elm Row,Edi,131,EH7 4AH,3887644
Robert,Brady,501 Elm Row,Edi,131,EH7 4AH,3887644
Robert,Brady,501 Elm Row,Edi,131,EH7 4AH,3887644
Mary,Smith,20 Baker St,Ldn,020,NW1 6XE,7654321
Robert,Brady,501 Elm Row,Edi,131,EH7 4AH,3887644
`
	if got := strings.ReplaceAll(string(out), "\r\n", "\n"); got != want {
		t.Errorf("repaired CSV:\n%s\nwant:\n%s", got, want)
	}
	report := stderr.String()
	if !strings.Contains(report, "unresolved: -") {
		t.Errorf("report leaves rules unresolved:\n%s", report)
	}
	if !strings.Contains(report, "match md1.1:") || strings.Contains(report, "full scans) over |Dm|=0") {
		t.Errorf("report missing matcher statistics:\n%s", report)
	}
}

// TestRunCertifyExample: the full tri-level pipeline leaves the bundled
// example certified clean, so -certify succeeds (exit status 0).
func TestRunCertifyExample(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-data", filepath.Join(exampleDir, "data.csv"),
		"-conf", filepath.Join(exampleDir, "conf.csv"),
		"-master", filepath.Join(exampleDir, "master.csv"),
		"-rules", filepath.Join(exampleDir, "rules.txt"),
		"-certify",
		"-out", filepath.Join(t.TempDir(), "repaired.csv"),
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("certify on the clean example failed: %v\nstderr:\n%s", err, stderr.String())
	}
	if got := exitCode(err); got != 0 {
		t.Errorf("exitCode = %d, want 0", got)
	}
}

// TestRunLowconfExample drives the hRepair showcase: with every confidence
// below eta, the city repair must come from hRepair as a possible fix, and
// the output must still certify clean.
func TestRunLowconfExample(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-data", filepath.Join(lowconfDir, "data.csv"),
		"-rules", filepath.Join(lowconfDir, "rules.txt"),
		"-defaultconf", "0.5",
		"-certify",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	report := stderr.String()
	if !strings.Contains(report, "1 possible fixes") {
		t.Errorf("report missing the hRepair possible fix:\n%s", report)
	}
	if !strings.Contains(report, "unresolved: -") {
		t.Errorf("lowconf example not fully resolved:\n%s", report)
	}
	if !strings.Contains(stdout.String(), "131,Edi,EH7 4AH,501 Elm Row") {
		t.Errorf("repaired CSV missing the hRepair city fix:\n%s", stdout.String())
	}
}

// TestExitStatusDirtyVsIO: a run that completes but leaves violations must
// be distinguishable (exit 2) from a run that cannot start (exit 1). With
// all confidences at zero, the MD premise never reaches eta, so the MD
// rules stay unresolved while hRepair still clears every CFD.
func TestExitStatusDirtyVsIO(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-data", filepath.Join(exampleDir, "data.csv"),
		"-master", filepath.Join(exampleDir, "master.csv"),
		"-rules", filepath.Join(exampleDir, "rules.txt"),
		"-defaultconf", "0",
		"-certify",
		"-out", filepath.Join(t.TempDir(), "repaired.csv"),
	}, &stdout, &stderr)
	if !errors.Is(err, errDirty) {
		t.Fatalf("dirty run error = %v, want errDirty", err)
	}
	if got := exitCode(err); got != 2 {
		t.Errorf("dirty exitCode = %d, want 2", got)
	}
	report := stderr.String()
	if !strings.Contains(report, "MD violations") || !strings.Contains(report, "violation: md") {
		t.Errorf("-certify did not print the violation report:\n%s", report)
	}
	if strings.Contains(report, "CFD violations") && !strings.Contains(report, "0 CFD violations") {
		t.Errorf("hRepair left CFD violations:\n%s", report)
	}

	err = run(context.Background(), []string{
		"-data", filepath.Join(exampleDir, "no-such-file.csv"),
		"-rules", filepath.Join(exampleDir, "rules.txt"),
	}, &stdout, &stderr)
	if err == nil || errors.Is(err, errDirty) {
		t.Fatalf("I/O error = %v, must be non-nil and distinct from errDirty", err)
	}
	if got := exitCode(err); got != 1 {
		t.Errorf("I/O exitCode = %d, want 1", got)
	}
	if got := exitCode(nil); got != 0 {
		t.Errorf("exitCode(nil) = %d, want 0", got)
	}
}

// TestRunCanceled is the CLI cancellation regression test: a canceled
// context — what SIGINT/SIGTERM or an expired -timeout produce — aborts the
// run with the typed cancellation error, exit status 3, and no repaired CSV
// on stdout.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	err := run(ctx, []string{
		"-data", filepath.Join(exampleDir, "data.csv"),
		"-master", filepath.Join(exampleDir, "master.csv"),
		"-rules", filepath.Join(exampleDir, "rules.txt"),
	}, &stdout, &stderr)
	if !errors.Is(err, clean.ErrCanceled) {
		t.Fatalf("err = %v, want clean.ErrCanceled", err)
	}
	if got := exitCode(err); got != 3 {
		t.Errorf("exitCode = %d, want 3", got)
	}
	if stdout.Len() != 0 {
		t.Errorf("canceled run wrote output:\n%s", stdout.String())
	}
}

// TestExitCodeTable pins the documented exit-status contract: 0 clean,
// 1 usage/IO error, 2 dirty, 3 cancelled/deadline.
func TestExitCodeTable(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want int
	}{
		{"clean", nil, 0},
		{"io", os.ErrNotExist, 1},
		{"usage", errors.New("-data and -rules are required"), 1},
		{"dirty", fmt.Errorf("3 rules unresolved: %w", errDirty), 2},
		{"canceled", clean.ErrCanceled, 3},
		{"deadline", clean.ErrDeadline, 3},
		{"wrapped-canceled", fmt.Errorf("cleaning: %w", clean.ErrCanceled), 3},
	} {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%s) = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestRunDegradedBudget: the soft -maxfixes budget must complete (not abort)
// with the degraded marker in the report.
func TestRunDegradedBudget(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-data", filepath.Join(exampleDir, "data.csv"),
		"-conf", filepath.Join(exampleDir, "conf.csv"),
		"-master", filepath.Join(exampleDir, "master.csv"),
		"-rules", filepath.Join(exampleDir, "rules.txt"),
		"-maxfixes", "1",
		"-out", filepath.Join(t.TempDir(), "repaired.csv"),
	}, &stdout, &stderr)
	if err != nil && !errors.Is(err, errDirty) {
		t.Fatalf("degraded run must complete (clean or dirty), got: %v", err)
	}
	if !strings.Contains(stderr.String(), "degraded: max-fixes") {
		t.Errorf("report missing the degraded marker:\n%s", stderr.String())
	}
}

// TestRunUpdatesReplay drives the -updates streaming replay: an append, a
// delete and an overwrite are accepted, invalid records are rejected with a
// message but do not abort, and the repaired output reflects the final
// instance (appended row present, deleted row tombstoned to nulls).
func TestRunUpdatesReplay(t *testing.T) {
	dir := t.TempDir()
	updates := filepath.Join(dir, "updates.csv")
	stream := "upsert,5,Mary,Smith,20 Baker St,Ldn,020,NW1 6XE,7654321\n" +
		"delete,2\n" +
		"delete,99\n" +
		"badop,1\n"
	if err := os.WriteFile(updates, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "repaired.csv")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-data", filepath.Join(exampleDir, "data.csv"),
		"-conf", filepath.Join(exampleDir, "conf.csv"),
		"-master", filepath.Join(exampleDir, "master.csv"),
		"-rules", filepath.Join(exampleDir, "rules.txt"),
		"-updates", updates,
		"-out", outPath,
	}, &stdout, &stderr)
	if err != nil && !errors.Is(err, errDirty) {
		t.Fatalf("replay run: %v\nstderr:\n%s", err, stderr.String())
	}
	report := stderr.String()
	if !strings.Contains(report, "replayed 2 updates (2 rejected)") {
		t.Errorf("missing replay summary:\n%s", report)
	}
	if !strings.Contains(report, "7 rules over 6 tuples") {
		t.Errorf("report does not reflect the appended tuple:\n%s", report)
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(strings.ReplaceAll(string(out), "\r\n", "\n")), "\n")
	if len(lines) != 7 {
		t.Fatalf("repaired CSV has %d lines, want 7 (header + 6 tuples):\n%s", len(lines), out)
	}
	if lines[3] != "null,null,null,null,null,null,null" {
		t.Errorf("deleted tuple not tombstoned: %q", lines[3])
	}
	if !strings.HasPrefix(lines[6], "Mary,Smith") {
		t.Errorf("appended tuple missing: %q", lines[6])
	}
}

func TestRunMissingFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), nil, &stdout, &stderr); err == nil {
		t.Fatal("run without -data/-rules should fail")
	}
}

func TestRunStdoutOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-data", filepath.Join(exampleDir, "data.csv"),
		"-rules", filepath.Join(exampleDir, "rules.txt"),
		"-master", filepath.Join(exampleDir, "master.csv"),
		"-defaultconf", "0.9",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "FN,LN,St,city,AC,post,phn\n") {
		t.Errorf("stdout is not the repaired CSV:\n%s", stdout.String())
	}
}

// TestRunBenchMode drives the -bench path on a small config: the JSON report
// must land at -bench.out with sane counters, a matching baseline must pass
// the gate, and a baseline demanding fewer visits must fail it.
func TestRunBenchMode(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_test.json")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-bench",
		"-bench.tuples", "500", "-bench.master", "100",
		"-bench.dirty", "0.05", "-bench.seed", "7",
		"-bench.out", out,
	}
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("bench run: %v\nstderr:\n%s", err, stderr.String())
	}
	rep, err := readBaseline(out)
	if err != nil {
		t.Fatalf("report unreadable: %v", err)
	}
	if rep.IncrementalVisits <= 0 || rep.RescanVisits <= rep.IncrementalVisits {
		t.Fatalf("implausible visit counters: %+v", rep)
	}
	if rep.Fixes == 0 {
		t.Fatal("bench workload produced no fixes")
	}

	// Gate against the just-written report: identical counters must pass.
	if err := run(context.Background(), append(args, "-bench.baseline", out), &stdout, &stderr); err != nil {
		t.Fatalf("gate against own report failed: %v", err)
	}

	// A baseline claiming far fewer visits must trip the gate.
	rep.IncrementalVisits /= 2
	buf, _ := json.Marshal(rep)
	tight := filepath.Join(dir, "tight.json")
	if err := os.WriteFile(tight, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(context.Background(), append(args, "-bench.baseline", tight), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("gate did not catch a visit regression: %v", err)
	}
}
