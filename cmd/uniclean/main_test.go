package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const exampleDir = "../../examples/transactions"

// TestRunExample drives the CLI end-to-end on the bundled example dataset
// and checks the repaired CSV and the report.
func TestRunExample(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "repaired.csv")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-data", filepath.Join(exampleDir, "data.csv"),
		"-conf", filepath.Join(exampleDir, "conf.csv"),
		"-master", filepath.Join(exampleDir, "master.csv"),
		"-rules", filepath.Join(exampleDir, "rules.txt"),
		"-out", outPath,
		"-v",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	want := `FN,LN,St,city,AC,post,phn
Robert,Brady,501 Elm Row,Edi,131,EH7 4AH,3887644
Robert,Brady,501 Elm Row,Edi,131,EH7 4AH,3887644
Robert,Brady,501 Elm Row,Edi,131,EH7 4AH,3887644
Mary,Smith,20 Baker St,Ldn,020,NW1 6XE,7654321
Robert,Brady,501 Elm Row,Edi,131,EH7 4AH,3887644
`
	if got := strings.ReplaceAll(string(out), "\r\n", "\n"); got != want {
		t.Errorf("repaired CSV:\n%s\nwant:\n%s", got, want)
	}
	report := stderr.String()
	if !strings.Contains(report, "unresolved: -") {
		t.Errorf("report leaves rules unresolved:\n%s", report)
	}
	if !strings.Contains(report, "match md1.1:") || strings.Contains(report, "full scans) over |Dm|=0") {
		t.Errorf("report missing matcher statistics:\n%s", report)
	}
}

func TestRunMissingFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Fatal("run without -data/-rules should fail")
	}
}

func TestRunStdoutOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-data", filepath.Join(exampleDir, "data.csv"),
		"-rules", filepath.Join(exampleDir, "rules.txt"),
		"-master", filepath.Join(exampleDir, "master.csv"),
		"-defaultconf", "0.9",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "FN,LN,St,city,AC,post,phn\n") {
		t.Errorf("stdout is not the repaired CSV:\n%s", stdout.String())
	}
}
