// Command uniclean runs the unified data-cleaning pipeline of the paper
// over CSV inputs: cRepair (confidence-based deterministic fixes) followed
// by eRepair (entropy-based reliable fixes).
//
// Usage:
//
//	uniclean -data data.csv [-conf conf.csv] [-master master.csv] -rules rules.txt [-out repaired.csv]
//
// The repaired relation is written as CSV to -out ("-" for stdout); the
// cleaning report — fix counts, matcher statistics, conflicts and the
// resolution status of every rule — goes to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/clean"
	"repro/internal/relation"
	"repro/internal/rule"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "uniclean:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uniclean", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataPath := fs.String("data", "", "data relation CSV (required)")
	confPath := fs.String("conf", "", "per-cell confidence CSV, same shape as -data (optional)")
	masterPath := fs.String("master", "", "master relation CSV (optional)")
	rulesPath := fs.String("rules", "", "cleaning rules file (required)")
	outPath := fs.String("out", "-", "repaired relation CSV output, '-' for stdout")
	eta := fs.Float64("eta", 0.8, "confidence threshold for deterministic fixes")
	topL := fs.Int("topl", 32, "blocking candidates per suffix-tree lookup")
	defaultConf := fs.Float64("defaultconf", 0, "cell confidence assumed when -conf is not given")
	verbose := fs.Bool("v", false, "list every fix in the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" || *rulesPath == "" {
		fs.Usage()
		return fmt.Errorf("-data and -rules are required")
	}

	data, err := readRelation(*dataPath)
	if err != nil {
		return err
	}
	if *confPath != "" {
		f, err := os.Open(*confPath)
		if err != nil {
			return err
		}
		err = relation.ReadConfCSV(data, f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		data.SetAllConf(*defaultConf)
	}

	var master *relation.Relation
	var masterSchema *relation.Schema
	if *masterPath != "" {
		if master, err = readRelation(*masterPath); err != nil {
			return err
		}
		master.SetAllConf(1) // master data is clean by assumption
		masterSchema = master.Schema
	}

	text, err := os.ReadFile(*rulesPath)
	if err != nil {
		return err
	}
	cfds, mds, err := rule.ParseRules(data.Schema, masterSchema, string(text))
	if err != nil {
		return fmt.Errorf("%s: %w", *rulesPath, err)
	}
	rules := rule.Derive(cfds, mds)
	if len(rules) == 0 {
		return fmt.Errorf("%s: no rules", *rulesPath)
	}

	res := clean.Run(data, master, rules, clean.Options{Eta: *eta, TopL: *topL})

	out := stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := res.Data.WriteCSV(out); err != nil {
		return err
	}
	report(stderr, data, master, rules, res, *verbose)
	return nil
}

func readRelation(path string) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return relation.ReadCSV(name, f)
}

func report(w io.Writer, data, master *relation.Relation, rules []rule.Rule, res *clean.Result, verbose bool) {
	masterLen := 0
	if master != nil {
		masterLen = master.Len()
	}
	det := res.DeterministicFixes()
	fmt.Fprintf(w, "uniclean: %d rules over %d tuples (master: %d tuples)\n",
		len(rules), data.Len(), masterLen)
	fmt.Fprintf(w, "cRepair: %d rounds, %d deterministic fixes, %d cells asserted\n",
		res.Rounds, len(det), res.Asserts)
	fmt.Fprintf(w, "eRepair: %d groups resolved, %d reliable fixes\n",
		res.GroupsResolved, len(res.Fixes)-len(det))
	names := make([]string, 0, len(res.Match))
	for name := range res.Match {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := res.Match[name]
		fmt.Fprintf(w, "match %s: %d lookups, %d candidates (%d verified, %d full scans) over |Dm|=%d\n",
			name, st.Lookups, st.Candidates, st.Verified, st.FullScans, st.MasterSize)
	}
	if verbose {
		for _, f := range res.Fixes {
			fmt.Fprintf(w, "fix %s\n", f)
		}
	}
	for _, c := range res.Conflicts {
		fmt.Fprintf(w, "conflict: %s\n", c)
	}
	fmt.Fprintf(w, "resolved: %s\n", orDash(res.Resolved))
	fmt.Fprintf(w, "unresolved: %s\n", orDash(res.Unresolved))
}

func orDash(names []string) string {
	if len(names) == 0 {
		return "-"
	}
	return strings.Join(names, ", ")
}
