// Command uniclean runs the unified data-cleaning pipeline of the paper
// over CSV inputs: cRepair (confidence-based deterministic fixes), eRepair
// (entropy-based reliable fixes) and hRepair (heuristic possible fixes).
//
// Usage:
//
//	uniclean -data data.csv [-conf conf.csv] [-master master.csv] -rules rules.txt [-out repaired.csv] [-certify] [-workers N]
//	uniclean ... -updates updates.csv   # replay a streaming update file after the initial clean
//	uniclean -bench [-bench.tuples N] [-bench.dirty R] [-bench.seed S] [-bench.updates N] [-workers N] [-bench.baseline bench/baseline.json]
//
// The repaired relation is written as CSV to -out ("-" for stdout); the
// cleaning report — fix counts, matcher statistics, conflicts and the
// resolution status of every rule — goes to stderr. With -certify, the
// Checker's full violation report is printed when the output is still
// dirty. Certification honors -workers too: its per-rule passes fan out
// across the same pool as the repair appliers, and the report is identical
// for any worker count.
//
// With -updates, the initial clean is followed by a streaming replay
// (docs/streaming.md): each CSV record is either "upsert,<id>,v1,...,vN"
// (overwrite tuple id, or append when id equals the current length; cell
// confidences come from -defaultconf) or "delete,<id>" (tombstone the
// tuple). Every accepted update leaves the instance and its certification
// report exactly as a from-scratch run on the updated input would; invalid
// records are reported to stderr and skipped.
//
// With -bench, the tool instead generates a synthetic dirty instance
// (internal/gen), runs the pipeline with the full-rescan reference
// scheduler, the sequential delta-driven one, and the parallel applier
// pool (-workers, default GOMAXPROCS), writes a BENCH_<sha>.json report
// with timings, deterministic visit counters and the per-worker visit
// split, and — when -bench.baseline is given — fails if the visit
// counters regressed more than 20% against the committed baseline. The
// three runs must agree fix-for-fix, and the parallel run must reproduce
// the sequential visit counters exactly; either mismatch is a hard error.
// With -bench.updates N, the report additionally replays a generated
// N-operation update stream through the streaming engine, sequentially and
// with -workers, records update visit counters and updates/sec, and gates
// UpdateVisits against the baseline the same way.
//
// Exit status distinguishes failure modes: 0 when the output satisfies
// every rule, 1 on usage, I/O or rule-parsing errors, 2 when cleaning
// completed but violations remain unresolved, and 3 when the run was
// cancelled (SIGINT/SIGTERM) or hit the -timeout deadline before finishing.
// A status-3 run writes no output: the engine guarantees its input was
// never mutated and no partial round escaped.
//
// -timeout is a hard budget: the run aborts with status 3. The soft budgets
// -deadline and -maxfixes degrade instead: the engine stops proposing fixes,
// certifies what it reached, and reports the remaining violations with a
// "degraded" marker — a truthful partial answer, exiting 0 or 2 as usual.
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/clean"
	"repro/internal/gen"
	"repro/internal/relation"
	"repro/internal/rule"
)

// errDirty marks a run that completed but left rule violations in the
// output. main maps it to exit status 2, distinct from I/O and usage errors
// (status 1), so scripts can tell "the data could not be fully cleaned"
// from "the tool could not run".
var errDirty = errors.New("violations remain in the output")

// exitCode maps a run error to the process exit status.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errDirty):
		return 2
	case errors.Is(err, clean.ErrCanceled), errors.Is(err, clean.ErrDeadline):
		return 3
	default:
		return 1
	}
}

func main() {
	// SIGINT/SIGTERM cancel the run's context; the engine stops at the next
	// round boundary with its state rewound, and the process exits 3. A
	// second signal kills the process via the restored default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "uniclean:", err)
	}
	os.Exit(exitCode(err))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uniclean", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataPath := fs.String("data", "", "data relation CSV (required)")
	confPath := fs.String("conf", "", "per-cell confidence CSV, same shape as -data (optional)")
	masterPath := fs.String("master", "", "master relation CSV (optional)")
	rulesPath := fs.String("rules", "", "cleaning rules file (required)")
	outPath := fs.String("out", "-", "repaired relation CSV output, '-' for stdout")
	eta := fs.Float64("eta", 0.8, "confidence threshold for deterministic fixes")
	topL := fs.Int("topl", 32, "blocking candidates per suffix-tree lookup")
	hBudget := fs.Int("hbudget", clean.DefaultHBudget, "per-cell change budget of hRepair")
	defaultConf := fs.Float64("defaultconf", 0, "cell confidence assumed when -conf is not given")
	certify := fs.Bool("certify", false, "print the checker's violation report when the output is still dirty")
	verbose := fs.Bool("v", false, "list every fix in the report")
	rescan := fs.Bool("rescan", false, "use the full-rescan reference scheduler instead of the delta-driven one")
	workers := fs.Int("workers", 0, "parallel applier and certification workers (0 = GOMAXPROCS, 1 = sequential); any value yields identical fixes, repaired output and -certify report")
	timeout := fs.Duration("timeout", 0, "hard wall-clock limit; on expiry the run aborts with exit status 3 and writes no output (0 = none)")
	deadline := fs.Duration("deadline", 0, "soft wall-clock budget; on expiry the engine stops proposing fixes and reports a degraded but truthful result (0 = none)")
	maxFixes := fs.Int("maxfixes", 0, "soft fix budget; reaching it degrades the run like -deadline (0 = none)")
	updatesPath := fs.String("updates", "", "CSV update stream to replay through the streaming engine after the initial clean: 'upsert,<id>,v1,...,vN' or 'delete,<id>' per record")
	bench := fs.Bool("bench", false, "run the synthetic benchmark instead of cleaning CSV input")
	benchTuples := fs.Int("bench.tuples", 10000, "bench: data relation size")
	benchMaster := fs.Int("bench.master", 1000, "bench: master relation size")
	benchDirty := fs.Float64("bench.dirty", 0.05, "bench: per-cell error rate")
	benchFanout := fs.Int("bench.fanout", 3, "bench: constant-CFD fanout")
	benchSeed := fs.Int64("bench.seed", 1, "bench: generator seed")
	benchUpdates := fs.Int("bench.updates", 0, "bench: also replay this many generated upserts/deletes through the streaming engine, sequential and parallel (0 = off)")
	benchOut := fs.String("bench.out", "", "bench: JSON report path (default BENCH_<sha>.json)")
	benchBaseline := fs.String("bench.baseline", "", "bench: baseline JSON to gate regressions against; a directory picks baseline-multicore.json or baseline.json by effective CPU count")
	benchSha := fs.String("bench.sha", "", "bench: label for the default report name (default $GITHUB_SHA or 'local')")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *bench {
		cfg := gen.DefaultConfig()
		cfg.Tuples = *benchTuples
		cfg.MasterSize = *benchMaster
		cfg.ErrorRate = *benchDirty
		cfg.RuleFanout = *benchFanout
		cfg.Seed = *benchSeed
		out := *benchOut
		if out == "" {
			out = fmt.Sprintf("BENCH_%s.json", benchSHA(*benchSha))
		}
		return runBench(cfg, *workers, *benchUpdates, out, *benchBaseline, stderr)
	}
	if *dataPath == "" || *rulesPath == "" {
		fs.Usage()
		return fmt.Errorf("-data and -rules are required")
	}

	data, err := readRelation(*dataPath)
	if err != nil {
		return err
	}
	if *confPath != "" {
		f, err := os.Open(*confPath)
		if err != nil {
			return err
		}
		err = relation.ReadConfCSV(data, f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		data.SetAllConf(*defaultConf)
	}

	var master *relation.Relation
	var masterSchema *relation.Schema
	if *masterPath != "" {
		if master, err = readRelation(*masterPath); err != nil {
			return err
		}
		master.SetAllConf(1) // master data is clean by assumption
		masterSchema = master.Schema
	}

	text, err := os.ReadFile(*rulesPath)
	if err != nil {
		return err
	}
	cfds, mds, err := rule.ParseRules(data.Schema, masterSchema, string(text))
	if err != nil {
		return fmt.Errorf("%s: %w", *rulesPath, err)
	}
	rules := rule.Derive(cfds, mds)
	if len(rules) == 0 {
		return fmt.Errorf("%s: no rules", *rulesPath)
	}

	opts := clean.Options{Eta: *eta, TopL: *topL, HBudget: *hBudget, Rescan: *rescan, Workers: *workers,
		Deadline: *deadline, MaxFixes: *maxFixes}
	var res *clean.Result
	if *updatesPath != "" {
		// Replay mode: clean once, then stream the update file through
		// Upsert/Delete. Each accepted update leaves the engine exactly as
		// a from-scratch run on the updated input would; a rejected update
		// (bad id, wrong arity) is reported and skipped, and a canceled or
		// failed one aborts with the engine's typed error.
		e, err := clean.NewStreamContext(ctx, data, master, rules, opts)
		if err != nil {
			return err
		}
		applied, rejected, err := replayUpdates(ctx, e, *updatesPath, *defaultConf, stderr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "uniclean: replayed %d updates (%d rejected)\n", applied, rejected)
		res = e.Result()
	} else {
		var err error
		res, err = clean.RunContext(ctx, data, master, rules, opts)
		if err != nil {
			return err
		}
	}

	out := stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := res.Data.WriteCSV(out); err != nil {
		return err
	}
	report(stderr, master, rules, res, *verbose)
	if !res.Report.Clean() {
		if *certify {
			fmt.Fprint(stderr, res.Report)
		}
		return fmt.Errorf("%d rules unresolved: %w", len(res.Unresolved), errDirty)
	}
	return nil
}

// replayUpdates streams the CSV update file through the engine: records
// "upsert,<id>,v1,...,vN" (cells take -defaultconf confidence) and
// "delete,<id>". A malformed record or an update the engine rejects
// (clean.ErrBadUpdate) is reported to stderr and skipped; any other error
// — cancellation, deadline, a contained worker failure — aborts the replay
// with the engine guaranteed unchanged by the failed update.
func replayUpdates(ctx context.Context, e *clean.Engine, path string, defaultConf float64, stderr io.Writer) (applied, rejected int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	reject := func(line int, why string) {
		rejected++
		fmt.Fprintf(stderr, "uniclean: update %d rejected: %s\n", line, why)
	}
	for line := 1; ; line++ {
		rec, rerr := r.Read()
		if rerr == io.EOF {
			return applied, rejected, nil
		}
		if rerr != nil {
			return applied, rejected, fmt.Errorf("%s: %w", path, rerr)
		}
		if len(rec) < 2 {
			reject(line, "want 'upsert,<id>,v1,...' or 'delete,<id>'")
			continue
		}
		id, aerr := strconv.Atoi(rec[1])
		if aerr != nil {
			reject(line, fmt.Sprintf("bad id %q", rec[1]))
			continue
		}
		var uerr error
		switch rec[0] {
		case "delete":
			_, uerr = e.DeleteContext(ctx, id)
		case "upsert":
			values := rec[2:]
			conf := make([]float64, len(values))
			for i := range conf {
				conf[i] = defaultConf
			}
			_, uerr = e.UpsertContext(ctx, id, values, conf)
		default:
			reject(line, fmt.Sprintf("unknown op %q", rec[0]))
			continue
		}
		switch {
		case uerr == nil:
			applied++
		case errors.Is(uerr, clean.ErrBadUpdate):
			reject(line, uerr.Error())
		default:
			return applied, rejected, uerr
		}
	}
}

func readRelation(path string) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return relation.ReadCSV(name, f)
}

func report(w io.Writer, master *relation.Relation, rules []rule.Rule, res *clean.Result, verbose bool) {
	masterLen := 0
	if master != nil {
		masterLen = master.Len()
	}
	fmt.Fprintf(w, "uniclean: %d rules over %d tuples (master: %d tuples)\n",
		len(rules), res.Data.Len(), masterLen)
	if res.Degraded {
		fmt.Fprintf(w, "degraded: %s budget exhausted before the fixpoint; counts below are exact for the state reached\n",
			res.DegradeReason)
	}
	fmt.Fprintf(w, "cRepair: %d rounds, %d deterministic fixes, %d cells asserted\n",
		res.Rounds, len(res.DeterministicFixes()), res.Asserts)
	fmt.Fprintf(w, "eRepair: %d groups resolved, %d reliable fixes\n",
		res.GroupsResolved, len(res.ReliableFixes()))
	fmt.Fprintf(w, "hRepair: %d rounds, %d possible fixes\n",
		res.HRounds, len(res.PossibleFixes()))
	marks := res.Data.MarkCounts()
	fmt.Fprintf(w, "cells: %d untouched, %d deterministic, %d reliable, %d possible\n",
		marks[relation.FixNone], marks[relation.FixDeterministic],
		marks[relation.FixReliable], marks[relation.FixPossible])
	fmt.Fprintf(w, "scheduler: %d applier tuple visits\n", res.TotalVisits())
	if len(res.WorkerVisits) > 0 {
		fmt.Fprintf(w, "parallel: %d workers, propose visits %v\n",
			len(res.WorkerVisits), res.WorkerVisits)
	}
	names := make([]string, 0, len(res.Match))
	for name := range res.Match {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := res.Match[name]
		fmt.Fprintf(w, "match %s: %d lookups, %d candidates (%d verified, %d full scans) over |Dm|=%d\n",
			name, st.Lookups, st.Candidates, st.Verified, st.FullScans, st.MasterSize)
	}
	if verbose {
		for _, f := range res.Fixes {
			fmt.Fprintf(w, "fix %s\n", f)
		}
	}
	for _, c := range res.Conflicts {
		fmt.Fprintf(w, "conflict: %s\n", c)
	}
	fmt.Fprintf(w, "resolved: %s\n", orDash(res.Resolved))
	fmt.Fprintf(w, "unresolved: %s\n", orDash(res.Unresolved))
}

func orDash(names []string) string {
	if len(names) == 0 {
		return "-"
	}
	return strings.Join(names, ", ")
}
